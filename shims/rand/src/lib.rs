//! Offline stand-in for `rand`.
//!
//! Provides a deterministic [`rngs::StdRng`] (SplitMix64) plus the small
//! slice of the `Rng`/`SeedableRng` API the workspace uses:
//! `StdRng::seed_from_u64`, `gen::<T>()`, and `gen_range` over integer
//! ranges. Not cryptographically secure — simulation/test use only.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable via [`Rng::gen`].
pub trait SampleValue: Sized {
    /// Draw one value from the RNG.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleValue for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleValue for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleValue for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high-quality bits -> [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleValue for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::sample(rng) as f32
    }
}

impl SampleValue for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T`.
    fn gen<T: SampleValue>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood) — tiny, uniform, deterministic.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10u64);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
        }
    }
}
