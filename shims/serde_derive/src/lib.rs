//! Derive macros for the in-repo `serde` stand-in.
//!
//! Generates value-based `Serialize`/`Deserialize` impls following real
//! serde's external-tagging conventions:
//!
//! - named struct      → JSON object keyed by field name
//! - newtype struct    → the inner value
//! - tuple struct (n>1)→ JSON array
//! - unit variant      → `"Variant"`
//! - newtype variant   → `{"Variant": value}`
//! - tuple variant     → `{"Variant": [..]}`
//! - struct variant    → `{"Variant": {..}}`
//!
//! Supported attribute: `#[serde(default)]` on named fields (missing key
//! deserializes via `Default::default()`). Generic types are not
//! supported — the workspace derives only on concrete types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

struct Field {
    name: String,  // field name, or tuple index as a string
    default: bool, // #[serde(default)]
}

enum Shape {
    Unit,
    Newtype,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let code = match mode {
                Mode::Serialize => gen_serialize(&item),
                Mode::Deserialize => gen_deserialize(&item),
            };
            code.parse().expect("generated impl parses")
        }
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("compile_error! invocation parses as a token stream"),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic type `{name}`"
            ));
        }
    }
    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                None => Shape::Unit,
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let n = count_tuple_fields(g.stream());
                    if n == 1 {
                        Shape::Newtype
                    } else {
                        Shape::Tuple(n)
                    }
                }
                other => return Err(format!("unexpected struct body: {other:?}")),
            };
            Ok(Item::Struct { name, shape })
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, got {other:?}")),
            };
            Ok(Item::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // [...]
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Does the attribute group at `tokens[i]` (the group after '#') contain
/// `serde(default)`?
fn attr_is_serde_default(group: &proc_macro::Group) -> bool {
    let mut toks = group.stream().into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match toks.next() {
        Some(TokenTree::Group(inner)) => inner
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    }
}

/// Split a token list at top-level commas, tracking `<...>` nesting so
/// commas inside generic arguments don't split fields.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle: i32 = 0;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                cur.push(t);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                cur.push(t);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            _ => cur.push(t),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    for piece in split_top_level(stream) {
        let mut i = 0;
        let mut default = false;
        // attributes
        while let Some(TokenTree::Punct(p)) = piece.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 1;
            if let Some(TokenTree::Group(g)) = piece.get(i) {
                if attr_is_serde_default(g) {
                    default = true;
                }
                i += 1;
            }
        }
        // visibility
        if let Some(TokenTree::Ident(id)) = piece.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = piece.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match piece.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for piece in split_top_level(stream) {
        let mut i = 0;
        // attributes (e.g. #[default] from derive(Default), doc comments)
        while let Some(TokenTree::Punct(p)) = piece.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 1;
            if matches!(piece.get(i), Some(TokenTree::Group(_))) {
                i += 1;
            }
        }
        let name = match piece.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => continue,
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let shape = match piece.get(i) {
            None => Shape::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                if n == 1 {
                    Shape::Newtype
                } else {
                    Shape::Tuple(n)
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "serde shim derive does not support explicit discriminants (variant `{name}`)"
                ));
            }
            other => return Err(format!("unexpected variant body: {other:?}")),
        };
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "serde::Value::Null".to_string(),
                Shape::Newtype => "serde::Serialize::serialize_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Serialize::serialize_value(&self.{i})"))
                        .collect();
                    format!("serde::Value::Array(vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => named_to_object(fields, "self."),
            };
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vn} => serde::Value::String(\"{vn}\".to_string()),\n"
                        ));
                    }
                    Shape::Newtype => {
                        arms.push_str(&format!(
                            "{name}::{vn}(__x0) => {{\n\
                               let mut __m = serde::Map::new();\n\
                               __m.insert(\"{vn}\".to_string(), serde::Serialize::serialize_value(__x0));\n\
                               serde::Value::Object(__m)\n\
                             }},\n"
                        ));
                    }
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__x{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::serialize_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => {{\n\
                               let mut __m = serde::Map::new();\n\
                               __m.insert(\"{vn}\".to_string(), serde::Value::Array(vec![{}]));\n\
                               serde::Value::Object(__m)\n\
                             }},\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let obj = named_to_object(fields, "");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n\
                               let mut __m = serde::Map::new();\n\
                               __m.insert(\"{vn}\".to_string(), {obj});\n\
                               serde::Value::Object(__m)\n\
                             }},\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize_value(&self) -> serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// `{"f1": ..., "f2": ...}` construction. `prefix` is "self." for struct
/// fields or "" for match-bound variant fields.
fn named_to_object(fields: &[Field], prefix: &str) -> String {
    let mut s = String::from("{ let mut __m = serde::Map::new();\n");
    for f in fields {
        let fname = &f.name;
        let access = if prefix.is_empty() {
            fname.clone()
        } else {
            format!("{prefix}{fname}")
        };
        s.push_str(&format!(
            "__m.insert(\"{fname}\".to_string(), serde::Serialize::serialize_value(&{access}));\n"
        ));
    }
    s.push_str("serde::Value::Object(__m) }");
    s
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!(
                    "match __v {{ serde::Value::Null => Ok({name}), \
                       _ => Err(serde::Error::msg(\"{name}: expected null\")) }}"
                ),
                Shape::Newtype => {
                    format!("Ok({name}(serde::Deserialize::deserialize_value(__v)?))")
                }
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Deserialize::deserialize_value(&__a[{i}])?"))
                        .collect();
                    format!(
                        "{{ let __a = serde::__expect_array(__v, \"{name}\", {n})?;\n\
                           Ok({name}({})) }}",
                        items.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    format!(
                        "{{ let __m = serde::__expect_object(__v, \"{name}\")?;\n\
                           Ok({name} {{ {} }}) }}",
                        named_from_object(fields, name)
                    )
                }
            };
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn deserialize_value(__v: &serde::Value) -> std::result::Result<Self, serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                        // serde also accepts {"Variant": null}? no — unit
                        // variants are strings only under external tagging.
                    }
                    Shape::Newtype => {
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::deserialize_value(__payload)?)),\n"
                        ));
                    }
                    Shape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::deserialize_value(&__a[{i}])?"))
                            .collect();
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __a = serde::__expect_array(__payload, \"{name}::{vn}\", {n})?;\n\
                               Ok({name}::{vn}({})) }},\n",
                            items.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __m = serde::__expect_object(__payload, \"{name}::{vn}\")?;\n\
                               Ok({name}::{vn} {{ {} }}) }},\n",
                            named_from_object(fields, &format!("{name}::{vn}"))
                        ));
                    }
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                     fn deserialize_value(__v: &serde::Value) -> std::result::Result<Self, serde::Error> {{\n\
                         match __v {{\n\
                             serde::Value::String(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\
                                 __other => Err(serde::Error::msg(format!(\"{name}: unknown variant {{__other}}\"))),\n\
                             }},\n\
                             serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                                 let (__k, __payload) = __m.iter().next().unwrap();\n\
                                 match __k.as_str() {{\n\
                                     {keyed_arms}\
                                     __other => Err(serde::Error::msg(format!(\"{name}: unknown variant {{__other}}\"))),\n\
                                 }}\n\
                             }},\n\
                             __other => Err(serde::Error::msg(format!(\"{name}: expected variant, got {{__other}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn named_from_object(fields: &[Field], ty: &str) -> String {
    let mut s = String::new();
    for f in fields {
        let fname = &f.name;
        let getter = if f.default {
            "__get_field_or_default"
        } else {
            "__get_field"
        };
        s.push_str(&format!(
            "{fname}: serde::{getter}(__m, \"{ty}\", \"{fname}\")?,\n"
        ));
    }
    s
}
