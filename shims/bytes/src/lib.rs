//! Offline stand-in for `bytes`, reduced to what this workspace uses:
//! [`Bytes`], an immutable reference-counted byte buffer whose `clone` is a
//! pointer copy, not a data copy. Payload encodings are computed once and
//! shared between every message/capsule holder through this type.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer (`Arc<[u8]>` underneath).
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Buffer over a static slice (copied once; the real crate borrows, but
    /// callers only rely on the sharing semantics).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Buffer holding a copy of `bytes`.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes { data: bytes.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// View as a byte slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Whether two handles share the same underlying allocation (sharing
    /// observability for tests; not part of the real crate's API).
    pub fn ptr_eq(a: &Bytes, b: &Bytes) -> bool {
        Arc::ptr_eq(&a.data, &b.data)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes {
            data: s.into_bytes().into(),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_allocation() {
        let a = Bytes::from("hello payload".to_string());
        let b = a.clone();
        assert!(Bytes::ptr_eq(&a, &b));
        assert_eq!(&a[..], b"hello payload");
        assert_eq!(a.len(), 13);
    }

    #[test]
    fn conversions_round_trip() {
        let from_vec = Bytes::from(vec![1u8, 2, 3]);
        let from_slice = Bytes::from(&[1u8, 2, 3][..]);
        assert_eq!(from_vec, from_slice);
        assert!(!Bytes::ptr_eq(&from_vec, &from_slice));
        assert!(Bytes::new().is_empty());
    }
}
