//! Offline stand-in for `crossbeam`, providing the `channel` module the
//! workspace uses (unbounded MPSC) over `std::sync::mpsc`.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half of an unbounded channel (clonable).
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a value; errors if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// Receiving half of an unbounded channel.
    ///
    /// Unlike `std::sync::mpsc::Receiver`, crossbeam receivers are `Sync`
    /// and clonable; we wrap in `Arc<Mutex<..>>` so either shape works
    /// (receives still see every message exactly once).
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.lock().unwrap_or_else(|p| p.into_inner()).recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .try_recv()
        }

        /// Receive with a timeout.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.inner
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .recv_timeout(timeout)
        }

        /// Drain all currently queued values.
        pub fn try_iter(&self) -> Vec<T> {
            let guard = self.inner.lock().unwrap_or_else(|p| p.into_inner());
            let mut out = Vec::new();
            while let Ok(v) = guard.try_recv() {
                out.push(v);
            }
            out
        }
    }

    /// Create an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_receive_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            let h = std::thread::spawn(move || {
                tx2.send(7).unwrap();
            });
            tx.send(1).unwrap();
            h.join().unwrap();
            drop(tx);
            let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
            got.sort_unstable();
            assert_eq!(got, vec![1, 7]);
            assert!(rx.recv().is_err());
        }
    }
}
