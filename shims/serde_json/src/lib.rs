//! Offline stand-in for `serde_json`, backed by the in-repo `serde` shim's
//! [`Value`] tree. Supports the subset this workspace uses: `json!`,
//! `to_value`/`from_value`, `to_string`/`to_vec`, `from_str`/`from_slice`.

pub use serde::{Error, Map, Number, Value};

pub type Result<T> = std::result::Result<T, Error>;

/// Convert any `Serialize` type into a [`Value`].
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    Ok(value.serialize_value())
}

/// Interpret a [`Value`] as a `Deserialize` type.
pub fn from_value<T: serde::de::DeserializeOwned>(value: Value) -> Result<T> {
    T::deserialize_value(&value)
}

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    Ok(value.serialize_value().to_string())
}

/// Serialize to a pretty JSON string (compact in this shim — callers only
/// rely on round-tripping, not layout).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    to_string(value)
}

/// Serialize to JSON bytes.
pub fn to_vec<T: serde::Serialize>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string(value)?.into_bytes())
}

/// Parse a JSON string into a `Deserialize` type.
pub fn from_str<T: serde::de::DeserializeOwned>(text: &str) -> Result<T> {
    let value = serde::value::parse(text)?;
    T::deserialize_value(&value)
}

/// Parse JSON bytes into a `Deserialize` type.
pub fn from_slice<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| Error::msg(format!("invalid utf-8 in JSON input: {e}")))?;
    from_str(text)
}

/// Build a [`Value`] from a JSON-like literal.
///
/// Object and array entries are token-munched so values may be arbitrary
/// Rust expressions (`f.market.0`, `helper(x).unwrap()`), nested JSON
/// literals, or the keywords `null`/`true`/`false`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => {{
        #[allow(clippy::vec_init_then_push)]
        let __vec: ::std::vec::Vec<$crate::Value> = {
            #[allow(unused_mut)]
            let mut __vec = ::std::vec::Vec::new();
            $crate::__json_array!(__vec () $($tt)*);
            __vec
        };
        $crate::Value::Array(__vec)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __map = $crate::Map::new();
        $crate::__json_object!(__map $($tt)*);
        $crate::Value::Object(__map)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serializes")
    };
}

/// Array-element muncher for [`json!`]. Accumulates tokens for one element
/// until a top-level comma, then recurses into `json!`.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_array {
    // end of input, nothing accumulated (empty array or trailing comma)
    ($vec:ident ()) => {};
    // end of input with a pending element
    ($vec:ident ($($val:tt)+)) => {
        $vec.push($crate::json!($($val)+));
    };
    // top-level comma: flush the pending element
    ($vec:ident ($($val:tt)+) , $($rest:tt)*) => {
        $vec.push($crate::json!($($val)+));
        $crate::__json_array!($vec () $($rest)*)
    };
    // munch one token into the pending element
    ($vec:ident ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::__json_array!($vec ($($val)* $next) $($rest)*)
    };
}

/// Object-entry muncher for [`json!`]. Keys are string literals; values are
/// token-munched until a top-level comma, then recursed into `json!`.
#[doc(hidden)]
#[macro_export]
macro_rules! __json_object {
    // end of input (empty object or after trailing comma)
    ($map:ident) => {};
    // `key:` — start munching the value
    ($map:ident $key:tt : $($rest:tt)*) => {
        $crate::__json_object!(@val $map $key () $($rest)*)
    };
    // top-level comma: flush the entry
    (@val $map:ident $key:tt ($($val:tt)+) , $($rest:tt)*) => {
        $map.insert(($key).to_string(), $crate::json!($($val)+));
        $crate::__json_object!($map $($rest)*)
    };
    // end of input with a pending entry
    (@val $map:ident $key:tt ($($val:tt)+)) => {
        $map.insert(($key).to_string(), $crate::json!($($val)+));
    };
    // munch one token into the pending value
    (@val $map:ident $key:tt ($($val:tt)*) $next:tt $($rest:tt)*) => {
        $crate::__json_object!(@val $map $key ($($val)* $next) $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let v = json!({
            "name": "abc",
            "n": 3,
            "ok": true,
            "items": [1, 2, {"x": null}],
        });
        assert_eq!(v["name"].as_str(), Some("abc"));
        assert_eq!(v["n"].as_u64(), Some(3));
        assert_eq!(v["items"][2]["x"], Value::Null);
    }

    #[test]
    fn string_round_trip() {
        let v = json!({"a": [1.5, -2, "s\""], "b": {"c": false}});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }
}
