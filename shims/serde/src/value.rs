//! The JSON value model plus text parsing/printing.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;

/// JSON object map (sorted keys, like serde_json's default `Map`).
pub type Map = BTreeMap<String, Value>;

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy)]
pub struct Number(N);

#[derive(Debug, Clone, Copy)]
enum N {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    /// From an unsigned integer.
    pub fn from_u64(n: u64) -> Self {
        Number(N::U(n))
    }

    /// From a signed integer (normalized to unsigned when non-negative).
    pub fn from_i64(n: i64) -> Self {
        if n >= 0 {
            Number(N::U(n as u64))
        } else {
            Number(N::I(n))
        }
    }

    /// From a float (kept as a float even when integral).
    pub fn from_f64(f: f64) -> Self {
        Number(N::F(f))
    }

    /// As `u64` if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::U(n) => Some(n),
            N::I(n) => u64::try_from(n).ok(),
            N::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            N::F(_) => None,
        }
    }

    /// As `i64` if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::U(n) => i64::try_from(n).ok(),
            N::I(n) => Some(n),
            N::F(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            N::F(_) => None,
        }
    }

    /// As `f64` (always possible, may lose precision for huge ints).
    pub fn as_f64(&self) -> f64 {
        match self.0 {
            N::U(n) => n as f64,
            N::I(n) => n as f64,
            N::F(f) => f,
        }
    }

    /// True if stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.0, N::F(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.0, other.0) {
            (N::U(a), N::U(b)) => a == b,
            (N::I(a), N::I(b)) => a == b,
            // cross-representation: compare numerically
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

macro_rules! number_eq_prim {
    ($($t:ty => $ctor:ident),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if *n == Number::$ctor(*other as _))
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

number_eq_prim!(
    u8 => from_u64, u16 => from_u64, u32 => from_u64, u64 => from_u64, usize => from_u64,
    i8 => from_i64, i16 => from_i64, i32 => from_i64, i64 => from_i64, isize => from_i64,
    f32 => from_f64, f64 => from_f64
);

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self == *other
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self == other.as_str()
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::U(n) => write!(f, "{n}"),
            N::I(n) => write!(f, "{n}"),
            N::F(x) => {
                if !x.is_finite() {
                    // JSON has no NaN/Inf; serde_json emits null
                    write!(f, "null")
                } else if x == x.trunc() && x.abs() < 1e15 {
                    write!(f, "{x:.1}") // keep the ".0" so floats stay floats
                } else {
                    write!(f, "{x}")
                }
            }
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with sorted keys.
    Object(Map),
}

impl Value {
    /// Member of an object by key, or element of an array by decimal
    /// index-in-a-string — mirroring `serde_json::Value::get`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            Value::Array(a) => key.parse::<usize>().ok().and_then(|i| a.get(i)),
            _ => None,
        }
    }

    /// As a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As `u64`, if an unsigned-representable number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As `i64`, if an integer-representable number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As `f64`, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// As `bool`, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As an array, if one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As an object, if one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// True if `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_escaped(f, s),
            Value::Array(a) => {
                write!(f, "[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Object(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            '\u{08}' => write!(f, "\\b")?,
            '\u{0C}' => write!(f, "\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

// ---------------------------------------------------------------------------
// Text parsing.
// ---------------------------------------------------------------------------

/// Parse JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, crate::Error> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(crate::Error(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, msg: &str) -> Result<T, crate::Error> {
        Err(crate::Error(format!("{msg} at byte {}", self.pos)))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), crate::Error> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", c as char))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, crate::Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err(&format!("expected `{lit}`"))
        }
    }

    fn value(&mut self) -> Result<Value, crate::Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn array(&mut self) -> Result<Value, crate::Error> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, crate::Error> {
        self.eat(b'{')?;
        let mut out = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, crate::Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(mut code) = hex else {
                                return self.err("bad \\u escape");
                            };
                            self.pos += 4;
                            // surrogate pair
                            if (0xD800..0xDC00).contains(&code)
                                && self.bytes.get(self.pos + 1..self.pos + 3) == Some(b"\\u")
                            {
                                let lo = self
                                    .bytes
                                    .get(self.pos + 3..self.pos + 7)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok());
                                if let Some(lo) = lo {
                                    code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                    self.pos += 6;
                                }
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume a maximal unescaped run in one shot: `"` and
                    // `\` are ASCII, so byte-level scanning can never split
                    // a multi-byte UTF-8 character, and each byte of input
                    // is validated exactly once (a per-char `from_utf8` of
                    // the whole tail would be quadratic)
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| crate::Error("invalid UTF-8".into()))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, crate::Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| crate::Error("invalid UTF-8 in number".into()))?;
        if float {
            let f: f64 = text
                .parse()
                .map_err(|_| crate::Error(format!("bad number {text}")))?;
            Ok(Value::Number(Number::from_f64(f)))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::Number(Number::from_u64(u)))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Number(Number::from_i64(i)))
        } else {
            let f: f64 = text
                .parse()
                .map_err(|_| crate::Error(format!("bad number {text}")))?;
            Ok(Value::Number(Number::from_f64(f)))
        }
    }
}
