//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships a minimal value-based serialization framework under the same
//! crate name. [`Serialize`] converts a type into a JSON [`Value`];
//! [`Deserialize`] converts back. The `serde_derive` proc-macro crate
//! generates both impls for plain structs and enums following serde's
//! external tagging conventions, so data serialized here has the same
//! JSON shape real serde would produce for the types in this repository.
//!
//! Supported surface (deliberately only what the workspace uses):
//! - `#[derive(Serialize, Deserialize)]` on non-generic structs (named,
//!   tuple, unit) and enums (unit / newtype / tuple / struct variants)
//! - `#[serde(default)]` on named struct fields
//! - std impls: integers, floats, `bool`, `char`, `String`, `&str`,
//!   `Option`, `Box`, `Vec`, slices, tuples (≤6), `BTreeMap`/`HashMap`
//!   (integer or string keys), `BTreeSet`/`HashSet`, `()`

pub mod value;

pub use value::{Map, Number, Value};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a [`Value`].
pub trait Serialize {
    /// Convert `self` into a JSON value.
    fn serialize_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct from a JSON value.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

/// Compatibility alias module mirroring `serde::de`.
pub mod de {
    /// Owned deserialization marker — identical to [`crate::Deserialize`]
    /// here since the value model has no borrowed variants.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Compatibility alias module mirroring `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Derive-support helpers (referenced by generated code; not public API).
// ---------------------------------------------------------------------------

#[doc(hidden)]
pub fn __expect_object<'v>(v: &'v Value, ty: &str) -> Result<&'v Map, Error> {
    match v {
        Value::Object(m) => Ok(m),
        other => Err(Error(format!("{ty}: expected object, got {other}"))),
    }
}

#[doc(hidden)]
pub fn __get_field<T: Deserialize>(m: &Map, ty: &str, name: &str) -> Result<T, Error> {
    match m.get(name) {
        Some(v) => T::deserialize_value(v).map_err(|e| Error(format!("{ty}.{name}: {e}"))),
        None => Err(Error(format!("{ty}: missing field `{name}`"))),
    }
}

#[doc(hidden)]
pub fn __get_field_or_default<T: Deserialize + Default>(
    m: &Map,
    ty: &str,
    name: &str,
) -> Result<T, Error> {
    match m.get(name) {
        Some(v) => T::deserialize_value(v).map_err(|e| Error(format!("{ty}.{name}: {e}"))),
        None => Ok(T::default()),
    }
}

#[doc(hidden)]
pub fn __expect_array<'v>(v: &'v Value, ty: &str, len: usize) -> Result<&'v [Value], Error> {
    match v {
        Value::Array(a) if a.len() == len => Ok(a),
        Value::Array(a) => Err(Error(format!(
            "{ty}: expected array of {len}, got {}",
            a.len()
        ))),
        other => Err(Error(format!("{ty}: expected array, got {other}"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------------

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error(format!("expected unsigned integer, got {v}")))?;
                <$t>::try_from(n).map_err(|_| Error(format!("integer out of range: {n}")))
            }
        }
    )*};
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 {
                    Value::Number(Number::from_u64(i as u64))
                } else {
                    Value::Number(Number::from_i64(i))
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error(format!("expected integer, got {v}")))?;
                <$t>::try_from(n).map_err(|_| Error(format!("integer out of range: {n}")))
            }
        }
    )*};
}

ser_uint!(u8, u16, u32, u64, usize);
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error(format!("expected number, got {v}")))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::deserialize_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {other}"))),
        }
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => match (s.chars().next(), s.chars().count()) {
                (Some(c), 1) => Ok(c),
                _ => Err(Error::msg("expected a single-character string")),
            },
            other => Err(Error(format!("expected single-char string, got {other}"))),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {other}"))),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn serialize_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(Error(format!("expected null, got {other}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::deserialize_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(t) => t.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::deserialize_value).collect(),
            other => Err(Error(format!("expected array, got {other}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::deserialize_value).collect(),
            other => Err(Error(format!("expected array, got {other}"))),
        }
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for HashSet<T> {
    fn serialize_value(&self) -> Value {
        // stable output: sort by serialized text
        let mut items: Vec<Value> = self.iter().map(Serialize::serialize_value).collect();
        items.sort_by_key(|a| a.to_string());
        Value::Array(items)
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::deserialize_value).collect(),
            other => Err(Error(format!("expected array, got {other}"))),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = [$($n),+].len();
                let a = __expect_array(v, "tuple", LEN)?;
                Ok(($($t::deserialize_value(&a[$n])?,)+))
            }
        }
    )*};
}

ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Render a map key: anything serializing to a string or integer works,
/// matching serde_json's stringify-integer-keys behaviour (and covering
/// integer newtype keys like `ItemId(u64)`).
// An unsupported key shape is a programming error in the caller, not a
// runtime condition — the shim's API has no Result channel to carry it.
#[allow(clippy::panic)]
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.serialize_value() {
        Value::String(s) => s,
        Value::Number(n) => n.to_string(),
        other => panic!("unsupported JSON map key shape: {other}"),
    }
}

/// Reconstruct a map key from an object key string by offering it to the
/// key type first as a string value, then as a number.
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    if let Ok(k) = K::deserialize_value(&Value::String(s.to_string())) {
        return Ok(k);
    }
    if let Ok(u) = s.parse::<u64>() {
        if let Ok(k) = K::deserialize_value(&Value::Number(Number::from_u64(u))) {
            return Ok(k);
        }
    }
    if let Ok(i) = s.parse::<i64>() {
        if let Ok(k) = K::deserialize_value(&Value::Number(Number::from_i64(i))) {
            return Ok(k);
        }
    }
    Err(Error(format!(
        "cannot interpret object key {s:?} as map key"
    )))
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.serialize_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize_value(v)?)))
                .collect(),
            other => Err(Error(format!("expected object, got {other}"))),
        }
    }
}

impl<K: Serialize + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k), v.serialize_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::deserialize_value(v)?)))
                .collect(),
            other => Err(Error(format!("expected object, got {other}"))),
        }
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
