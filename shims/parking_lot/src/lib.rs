//! Offline stand-in for `parking_lot`, wrapping `std::sync` primitives with
//! parking_lot's panic-free-on-poison API shape (`lock()` returns the guard
//! directly; a poisoned lock just hands back the inner guard).

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Mutual exclusion lock mirroring `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, returning the guard directly (poison-transparent).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// Reader-writer lock mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
