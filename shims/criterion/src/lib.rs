//! Offline stand-in for `criterion`.
//!
//! Mirrors the API shape this workspace's benches use (`benchmark_group`,
//! `sample_size`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `criterion_group!`/`criterion_main!`) over a simple
//! wall-clock harness: each benchmark is warmed up, then timed for a fixed
//! number of samples, and the per-iteration mean/min are printed.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Render the display name.
    fn into_text(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_text(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_text(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_text(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Collected per-iteration durations (one per sample).
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Run `f` repeatedly, recording one timed sample per configured batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run a few iterations untimed and size the batch so one
        // sample takes ~1ms (bounded to keep total runtime sane).
        let warmup_start = Instant::now();
        black_box(f());
        let once = warmup_start.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..2 {
            black_box(f());
        }
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().unwrap();
        println!(
            "{name:<50} time: [mean {mean:>12.3?}  min {min:>12.3?}  samples {}]",
            self.samples.len()
        );
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_count: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim's batch sizing is automatic.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into_text());
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_count,
        };
        f(&mut b);
        b.report(&name);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I, In, F>(&mut self, id: I, input: &In, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        In: ?Sized,
        F: FnMut(&mut Bencher, &In),
    {
        let name = format!("{}/{}", self.name, id.into_text());
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_count,
        };
        f(&mut b, input);
        b.report(&name);
        self
    }

    /// Finish the group (marker for API compatibility).
    pub fn finish(self) {}
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group: {name}");
        BenchmarkGroup {
            name,
            sample_count: 10,
            _criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let name = id.into_text();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: 10,
        };
        f(&mut b);
        b.report(&name);
        self
    }
}

/// Bundle benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = 0;
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        ran += 1;
        group.finish();
        assert_eq!(ran, 1);
    }
}
