//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, strategies for ranges, simple
//! character-class regex string literals (`"[a-f]{1,4}"`), tuples, and
//! `collection::vec`, plus the `proptest!`/`prop_assert!`/`prop_assert_eq!`
//! macros. Cases are randomly sampled from a per-test deterministic seed;
//! there is no shrinking — a failing case reports its inputs via the
//! assertion message instead.

// A test harness reports failures by panicking; that is its API.
#![allow(clippy::panic)]

use std::ops::Range;

/// Number of cases each `proptest!` test runs.
pub const NUM_CASES: u32 = 128;

/// Failure raised by `prop_assert!`-style macros inside a case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(msg: impl std::fmt::Display) -> Self {
        TestCaseError(msg.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Deterministic RNG driving case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed directly.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Derive a per-test seed from the test's name (FNV-1a).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below: zero bound");
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

// ---------------------------------------------------------------------------
// Range strategies.
// ---------------------------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

// ---------------------------------------------------------------------------
// Regex-literal string strategies: "[class]{m}" / "[class]{m,n}".
// ---------------------------------------------------------------------------

fn parse_char_class(pattern: &str) -> (Vec<char>, usize, usize) {
    let bad = |why: &str| -> ! {
        panic!("proptest shim: unsupported string pattern {pattern:?} ({why}); expected \"[class]{{m}}\" or \"[class]{{m,n}}\"")
    };
    let rest = pattern
        .strip_prefix('[')
        .unwrap_or_else(|| bad("missing '['"));
    let close = rest.find(']').unwrap_or_else(|| bad("missing ']'"));
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            if lo > hi {
                bad("descending char range");
            }
            for c in lo..=hi {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        bad("empty character class");
    }
    let reps = &rest[close + 1..];
    let reps = reps
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| bad("missing repetition {m} or {m,n}"));
    let (min, max) = match reps.split_once(',') {
        Some((m, n)) => (
            m.trim()
                .parse()
                .unwrap_or_else(|_| bad("bad min repetition")),
            n.trim()
                .parse()
                .unwrap_or_else(|_| bad("bad max repetition")),
        ),
        None => {
            let m: usize = reps
                .trim()
                .parse()
                .unwrap_or_else(|_| bad("bad repetition"));
            (m, m)
        }
    };
    if min > max {
        bad("min repetition exceeds max");
    }
    (chars, min, max)
}

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_char_class(self);
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[rng.below(chars.len() as u64) as usize])
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies.
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vector of values from `element`, length in `len` (exclusive end).
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "collection::vec: empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything tests import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Define property tests. Each case draws fresh inputs from the listed
/// strategies; assertion macros abort the case with the inputs echoed.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __rng = $crate::TestRng::for_test(stringify!($name));
            for __case in 0..$crate::NUM_CASES {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)*),
                    $(&$arg,)*
                );
                let __result = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        __case + 1,
                        $crate::NUM_CASES,
                        e,
                        __inputs,
                    );
                }
            }
        }
    )*};
}

/// Assert a condition inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n  right: {:?}",
                format!($($fmt)+),
                __l,
                __r,
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn strings_match_class_and_length(s in "[a-f]{1,4}") {
            prop_assert!((1..=4).contains(&s.len()));
            prop_assert!(s.chars().all(|c| ('a'..='f').contains(&c)));
        }

        #[test]
        fn tuples_and_vecs_compose(
            items in crate::collection::vec(("[x-z]{1}", 0.5f64..2.0), 0..6)
        ) {
            prop_assert!(items.len() < 6);
            for (s, w) in &items {
                prop_assert!(s.len() == 1);
                prop_assert!((0.5..2.0).contains(w));
            }
        }
    }

    #[test]
    fn prop_map_transforms() {
        let strat = (0u64..10).prop_map(|n| n * 2);
        let mut rng = crate::TestRng::for_test("prop_map_transforms");
        for _ in 0..64 {
            let v = strat.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }
}
