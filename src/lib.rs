//! # abcrm — An Agent-Based Consumer Recommendation Mechanism
//!
//! Umbrella crate for the reproduction of *"An Agent-Based Consumer
//! Recommendation Mechanism"* (Wang, Hwang & Wang, AINA 2004). It
//! re-exports the workspace crates under one roof and hosts the runnable
//! examples (`examples/`) and cross-crate integration tests (`tests/`).
//!
//! * [`agentsim`] — Aglet-style mobile-agent platform (lifecycle,
//!   messaging, migration, travel-permit security, simulated network).
//! * [`simdb`] — UserDB / BSMDB storage substrate (tables, indexes, WAL).
//! * [`ecp`] — e-commerce platform: coordinator, marketplaces with query /
//!   negotiation / auction services, seller servers, merchandise model.
//! * [`core`] — the paper's contribution: profiles (Fig 4.4), the
//!   learning-rate profile update and similarity algorithm (Fig 4.5),
//!   IF / CF / hybrid recommenders, and the Buyer Agent Server with its
//!   BSMA / HttpA / PA / BRA / MBA agents and figure-exact workflows.
//! * [`workload`] — synthetic consumers, catalogs and shopping sessions.
//! * [`eval`] — metrics and the experiment harness behind EXPERIMENTS.md.
//!
//! See the repository README for a guided tour and `DESIGN.md` for the
//! system inventory and experiment index.

pub use abcrm_core as core;
pub use agentsim;
pub use ecp;
pub use eval;
pub use simdb;
pub use workload;
