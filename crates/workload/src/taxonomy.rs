//! Synthetic category taxonomy and vocabulary.
//!
//! The paper gives no dataset; workloads are generated over a two-level
//! taxonomy matching the profile presentation of Fig 4.4. Category,
//! sub-category and term names are deterministic (`cat03`,
//! `cat03-sub1`, `t-c3-s1-k7`), so experiments are reproducible and
//! failures are readable.

use serde::{Deserialize, Serialize};

/// Shape of the generated taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaxonomySpec {
    /// Number of main categories.
    pub categories: usize,
    /// Sub-categories per category.
    pub subs_per_category: usize,
    /// Vocabulary terms per sub-category.
    pub terms_per_sub: usize,
}

impl Default for TaxonomySpec {
    fn default() -> Self {
        TaxonomySpec {
            categories: 5,
            subs_per_category: 3,
            terms_per_sub: 12,
        }
    }
}

/// One sub-category with its vocabulary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubCategoryDef {
    /// Sub-category name.
    pub name: String,
    /// Terms items in this sub-category draw from.
    pub vocabulary: Vec<String>,
}

/// One main category.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CategoryDef {
    /// Category name.
    pub name: String,
    /// Its sub-categories.
    pub subs: Vec<SubCategoryDef>,
}

/// A generated taxonomy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Taxonomy {
    /// Categories in index order.
    pub categories: Vec<CategoryDef>,
}

impl Taxonomy {
    /// Generate the deterministic taxonomy for `spec`.
    pub fn generate(spec: TaxonomySpec) -> Self {
        let categories = (0..spec.categories)
            .map(|c| CategoryDef {
                name: format!("cat{c:02}"),
                subs: (0..spec.subs_per_category)
                    .map(|s| SubCategoryDef {
                        name: format!("cat{c:02}-sub{s}"),
                        vocabulary: (0..spec.terms_per_sub)
                            .map(|k| format!("t-c{c}-s{s}-k{k}"))
                            .collect(),
                    })
                    .collect(),
            })
            .collect();
        Taxonomy { categories }
    }

    /// Total number of `(category, sub)` leaf positions.
    pub fn leaf_count(&self) -> usize {
        self.categories.iter().map(|c| c.subs.len()).sum()
    }

    /// The `i`-th leaf as `(category, sub)` definitions, row-major.
    pub fn leaf(&self, i: usize) -> (&CategoryDef, &SubCategoryDef) {
        let mut idx = i;
        for c in &self.categories {
            if idx < c.subs.len() {
                return (c, &c.subs[idx]);
            }
            idx -= c.subs.len();
        }
        panic!("leaf index {i} out of range ({} leaves)", self.leaf_count());
    }

    /// Full category path of leaf `i`.
    pub fn leaf_path(&self, i: usize) -> ecp::merchandise::CategoryPath {
        let (c, s) = self.leaf(i);
        ecp::merchandise::CategoryPath::new(c.name.clone(), s.name.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_matches_spec_shape() {
        let t = Taxonomy::generate(TaxonomySpec {
            categories: 3,
            subs_per_category: 2,
            terms_per_sub: 4,
        });
        assert_eq!(t.categories.len(), 3);
        assert_eq!(t.leaf_count(), 6);
        assert_eq!(t.categories[1].subs[0].vocabulary.len(), 4);
    }

    #[test]
    fn names_are_unique_across_taxonomy() {
        let t = Taxonomy::generate(TaxonomySpec::default());
        let mut terms: Vec<&String> = t
            .categories
            .iter()
            .flat_map(|c| c.subs.iter())
            .flat_map(|s| s.vocabulary.iter())
            .collect();
        let before = terms.len();
        terms.sort();
        terms.dedup();
        assert_eq!(before, terms.len());
    }

    #[test]
    fn leaf_indexing_is_row_major() {
        let t = Taxonomy::generate(TaxonomySpec {
            categories: 2,
            subs_per_category: 2,
            terms_per_sub: 1,
        });
        assert_eq!(t.leaf(0).0.name, "cat00");
        assert_eq!(t.leaf(0).1.name, "cat00-sub0");
        assert_eq!(t.leaf(3).0.name, "cat01");
        assert_eq!(t.leaf(3).1.name, "cat01-sub1");
        assert_eq!(t.leaf_path(3).as_key(), "cat01/cat01-sub1");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn leaf_out_of_range_panics() {
        let t = Taxonomy::generate(TaxonomySpec {
            categories: 1,
            subs_per_category: 1,
            terms_per_sub: 1,
        });
        t.leaf(1);
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = TaxonomySpec::default();
        assert_eq!(Taxonomy::generate(spec), Taxonomy::generate(spec));
    }
}
