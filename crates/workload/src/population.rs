//! Synthetic consumer populations with latent taste clusters.
//!
//! Each cluster is a prototype preference over taxonomy leaves and terms;
//! consumers are noisy copies of their cluster's prototype. The
//! prototype is the **ground truth** experiments evaluate against: an
//! item is *relevant* to a consumer when its true affinity ranks in the
//! consumer's top fraction of the catalog. Behaviour histories (queries,
//! purchases …) are sampled from the ground truth with a controllable
//! density, which is how experiment E6 sweeps the §2.3 sparsity axis.

use crate::catalog::zipf_index;
use abcrm_core::learning::BehaviorKind;
use abcrm_core::profile::ConsumerId;
use ecp::merchandise::{ItemId, Merchandise};
use ecp::protocol::Listing;
use ecp::terms::TermVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Shape of a generated population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationSpec {
    /// Number of consumers.
    pub consumers: usize,
    /// Number of latent taste clusters.
    pub clusters: usize,
    /// Taxonomy leaves each cluster favours.
    pub leaves_per_cluster: usize,
    /// Noise amplitude on individual preferences (0 = clones).
    pub noise: f64,
}

impl Default for PopulationSpec {
    fn default() -> Self {
        PopulationSpec {
            consumers: 30,
            clusters: 3,
            leaves_per_cluster: 2,
            noise: 0.15,
        }
    }
}

/// Ground truth for one consumer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsumerTruth {
    /// Consumer id.
    pub id: ConsumerId,
    /// Cluster index.
    pub cluster: usize,
    /// True preference over namespaced terms (`category/sub/term`).
    pub preference: TermVector,
    /// Favoured `(category, sub)` keys.
    pub favoured_leaves: Vec<String>,
}

impl ConsumerTruth {
    /// True affinity of this consumer for an item: preference weight of
    /// the item's leaf plus term overlap.
    pub fn affinity(&self, item: &Merchandise) -> f64 {
        let leaf_key = item.category.as_key();
        let leaf_bonus = if self.favoured_leaves.contains(&leaf_key) {
            1.0
        } else {
            0.0
        };
        let mut term_score = 0.0;
        for (t, w) in item.terms.iter() {
            let namespaced = format!(
                "{}/{}/{}",
                item.category.category, item.category.sub_category, t
            );
            term_score += w * self.preference.weight(&namespaced);
        }
        leaf_bonus + term_score
    }

    /// A query keyword this consumer would plausibly type: a term from a
    /// favoured leaf's vocabulary.
    pub fn sample_keyword(&self, rng: &mut StdRng) -> Option<String> {
        let terms: Vec<&str> = self.preference.iter().map(|(t, _)| t).collect();
        if terms.is_empty() {
            return None;
        }
        let namespaced = terms[rng.gen_range(0..terms.len())];
        // strip the "category/sub/" namespace to get the raw term
        namespaced.rsplit('/').next().map(|s| s.to_string())
    }
}

/// A generated population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Population {
    /// All consumers' ground truth.
    pub consumers: Vec<ConsumerTruth>,
}

/// Distinct taxonomy leaves present in `listings`, each with its term
/// vocabulary — the raw material both [`Population::generate`] and
/// [`PopulationStream`] build cluster prototypes from.
fn catalog_leaves(listings: &[Listing]) -> Vec<(String, Vec<String>)> {
    let mut leaves: Vec<(String, Vec<String>)> = Vec::new();
    for l in listings {
        let key = l.item.category.as_key();
        match leaves.iter_mut().find(|(k, _)| *k == key) {
            Some((_, vocab)) => {
                for (t, _) in l.item.terms.iter() {
                    if !vocab.iter().any(|v| v == t) {
                        vocab.push(t.to_string());
                    }
                }
            }
            None => {
                leaves.push((
                    key,
                    l.item.terms.iter().map(|(t, _)| t.to_string()).collect(),
                ));
            }
        }
    }
    assert!(!leaves.is_empty(), "population needs a non-empty catalog");
    leaves
}

/// Cluster prototypes over `leaves`: each cluster favours a spread-out
/// anchor leaf plus zipf-sampled extras, with a preference vector over
/// the favoured leaves' vocabularies.
fn cluster_prototypes(
    spec: &PopulationSpec,
    leaves: &[(String, Vec<String>)],
    rng: &mut StdRng,
) -> Vec<(Vec<usize>, TermVector)> {
    let mut prototypes: Vec<(Vec<usize>, TermVector)> = Vec::new();
    for c in 0..spec.clusters.max(1) {
        let mut chosen = BTreeSet::new();
        // deterministic spread: cluster c starts at a distinct leaf,
        // then adds zipf-sampled extras
        chosen.insert(c * leaves.len() / spec.clusters.max(1) % leaves.len());
        while chosen.len() < spec.leaves_per_cluster.min(leaves.len()) {
            chosen.insert(zipf_index(rng, leaves.len(), 0.8));
        }
        let mut pref = TermVector::new();
        for &leaf in &chosen {
            let (key, vocab) = &leaves[leaf];
            for t in vocab.iter().take(8) {
                pref.add(format!("{key}/{t}"), 0.5 + rng.gen::<f64>());
            }
        }
        prototypes.push((chosen.into_iter().collect(), pref));
    }
    prototypes
}

/// Noisy per-consumer copy of a cluster prototype.
fn personalize(spec: &PopulationSpec, proto: &TermVector, rng: &mut StdRng) -> TermVector {
    let mut preference = proto.clone();
    // individual noise
    if spec.noise > 0.0 {
        let terms: Vec<String> = preference.iter().map(|(t, _)| t.to_string()).collect();
        for t in terms {
            let jitter = spec.noise * (rng.gen::<f64>() * 2.0 - 1.0);
            preference.add(t, jitter);
        }
    }
    preference
}

impl Population {
    /// Generate a population over the leaves/vocabulary present in
    /// `listings` (clusters favour leaves that actually have items).
    pub fn generate(spec: &PopulationSpec, listings: &[Listing], rng: &mut StdRng) -> Population {
        // collect distinct leaves with their term vocabularies from the
        // catalog itself
        let leaves = catalog_leaves(listings);
        let prototypes = cluster_prototypes(spec, &leaves, rng);
        let consumers = (0..spec.consumers)
            .map(|i| {
                let cluster = i % prototypes.len();
                let (leaf_idx, proto) = &prototypes[cluster];
                let preference = personalize(spec, proto, rng);
                ConsumerTruth {
                    id: ConsumerId(i as u64 + 1),
                    cluster,
                    preference,
                    favoured_leaves: leaf_idx.iter().map(|&l| leaves[l].0.clone()).collect(),
                }
            })
            .collect();
        Population { consumers }
    }

    /// Ground truth of `consumer`, if generated.
    pub fn truth(&self, consumer: ConsumerId) -> Option<&ConsumerTruth> {
        self.consumers.iter().find(|c| c.id == consumer)
    }

    /// The top `fraction` of the catalog by true affinity — the
    /// relevance set used by precision/recall.
    pub fn relevant_items(
        &self,
        consumer: ConsumerId,
        listings: &[Listing],
        fraction: f64,
    ) -> BTreeSet<ItemId> {
        let Some(truth) = self.truth(consumer) else {
            return BTreeSet::new();
        };
        let mut scored: Vec<(ItemId, f64)> = listings
            .iter()
            .map(|l| (l.item.id, truth.affinity(&l.item)))
            .filter(|(_, a)| *a > 0.0)
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let k = ((listings.len() as f64 * fraction).ceil() as usize).max(1);
        scored.into_iter().take(k).map(|(i, _)| i).collect()
    }

    /// Sample a behaviour history: each consumer interacts with
    /// `events_per_consumer` items, biased toward high-affinity items;
    /// high-affinity interactions become purchases, weaker ones queries
    /// or browses. Density directly controls ratings-matrix sparsity.
    pub fn sample_history(
        &self,
        listings: &[Listing],
        events_per_consumer: usize,
        rng: &mut StdRng,
    ) -> Vec<(ConsumerId, Merchandise, BehaviorKind)> {
        let mut events = Vec::new();
        for truth in &self.consumers {
            // rank items by affinity once per consumer
            let mut scored: Vec<(&Listing, f64)> = listings
                .iter()
                .map(|l| (l, truth.affinity(&l.item)))
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            for _ in 0..events_per_consumer {
                // zipf over the affinity ranking: mostly loved items,
                // occasionally exploration
                let idx = zipf_index(rng, scored.len().clamp(1, 40), 1.1);
                let (l, affinity) = scored[idx.min(scored.len() - 1)];
                let kind = if affinity >= 1.0 && rng.gen::<f64>() < 0.7 {
                    BehaviorKind::Purchase
                } else if rng.gen::<f64>() < 0.5 {
                    BehaviorKind::Browse
                } else {
                    BehaviorKind::Query
                };
                events.push((truth.id, l.item.clone(), kind));
            }
        }
        events
    }
}

/// Stable per-consumer seed derivation (splitmix64 over the stream seed
/// xor a stream tag xor the consumer index).
fn consumer_seed(seed: u64, tag: u64, index: usize) -> u64 {
    let mut x = seed ^ tag ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

const TRUTH_STREAM: u64 = 0x7_1207_0057_2ea8;
const EVENT_STREAM: u64 = 0xe7e_0057_2ea8;

/// A population that is *derived*, not materialized: resident state is
/// `O(clusters + catalog leaves)`, and each consumer's ground truth and
/// behaviour history are regenerated on demand from `(seed, index)`.
/// This is what lets the 10^6-consumer query benchmarks stream events
/// into a store without first holding a million `ConsumerTruth`s (and
/// their term vectors) in memory.
///
/// Unlike [`Population::generate`] — which threads one RNG through every
/// consumer, so consumer `i`'s noise depends on how many consumers came
/// before — the stream gives every consumer an independent RNG derived
/// from the stream seed and its index. Same seed ⇒ same population,
/// regardless of visit order or how many consumers are ever touched.
#[derive(Debug, Clone)]
pub struct PopulationStream {
    spec: PopulationSpec,
    seed: u64,
    leaves: Vec<(String, Vec<String>)>,
    prototypes: Vec<(Vec<usize>, TermVector)>,
    /// Per leaf: ids of catalog items on that leaf (event sampling).
    leaf_items: Vec<Vec<ItemId>>,
}

impl PopulationStream {
    /// Set up the stream: builds cluster prototypes over the catalog's
    /// leaves (the only `O(catalog)` work) and records nothing per
    /// consumer.
    pub fn new(spec: &PopulationSpec, listings: &[Listing], seed: u64) -> Self {
        let leaves = catalog_leaves(listings);
        let mut rng = StdRng::seed_from_u64(seed);
        let prototypes = cluster_prototypes(spec, &leaves, &mut rng);
        let leaf_items = leaves
            .iter()
            .map(|(key, _)| {
                listings
                    .iter()
                    .filter(|l| &l.item.category.as_key() == key)
                    .map(|l| l.item.id)
                    .collect()
            })
            .collect();
        PopulationStream {
            spec: *spec,
            seed,
            leaves,
            prototypes,
            leaf_items,
        }
    }

    /// Number of consumers the stream can derive.
    pub fn len(&self) -> usize {
        self.spec.consumers
    }

    /// Whether the stream derives no consumers at all.
    pub fn is_empty(&self) -> bool {
        self.spec.consumers == 0
    }

    /// Ground truth of consumer `index` (0-based; ids are `index + 1`),
    /// derived on demand — calling this twice, or for any subset of
    /// consumers in any order, yields identical results.
    pub fn truth_of(&self, index: usize) -> ConsumerTruth {
        assert!(index < self.spec.consumers, "consumer index out of range");
        let cluster = index % self.prototypes.len();
        let (leaf_idx, proto) = &self.prototypes[cluster];
        let mut rng = StdRng::seed_from_u64(consumer_seed(self.seed, TRUTH_STREAM, index));
        let preference = personalize(&self.spec, proto, &mut rng);
        ConsumerTruth {
            id: ConsumerId(index as u64 + 1),
            cluster,
            preference,
            favoured_leaves: leaf_idx.iter().map(|&l| self.leaves[l].0.clone()).collect(),
        }
    }

    /// Iterate every consumer's derived ground truth in id order.
    pub fn consumers(&self) -> impl Iterator<Item = ConsumerTruth> + '_ {
        (0..self.spec.consumers).map(|i| self.truth_of(i))
    }

    /// Behaviour history of consumer `index` without deriving its full
    /// preference vector: `events` interactions with items on the
    /// consumer's cluster leaves (zipf-biased within each leaf, so every
    /// cluster has clear favourites), mostly purchases with browse/query
    /// exploration mixed in. `O(events)` per call.
    pub fn events_of(
        &self,
        index: usize,
        events: usize,
    ) -> Vec<(ConsumerId, ItemId, BehaviorKind)> {
        assert!(index < self.spec.consumers, "consumer index out of range");
        let cluster = index % self.prototypes.len();
        let (leaf_idx, _) = &self.prototypes[cluster];
        let mut rng = StdRng::seed_from_u64(consumer_seed(self.seed, EVENT_STREAM, index));
        let id = ConsumerId(index as u64 + 1);
        (0..events)
            .filter_map(|_| {
                let leaf = leaf_idx[rng.gen_range(0..leaf_idx.len())];
                let items = &self.leaf_items[leaf];
                if items.is_empty() {
                    return None;
                }
                let item = items[zipf_index(&mut rng, items.len(), 1.1)];
                let kind = if rng.gen::<f64>() < 0.5 {
                    BehaviorKind::Purchase
                } else if rng.gen::<f64>() < 0.5 {
                    BehaviorKind::Browse
                } else {
                    BehaviorKind::Query
                };
                Some((id, item, kind))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{generate_listings, CatalogSpec};
    use crate::taxonomy::{Taxonomy, TaxonomySpec};
    use rand::SeedableRng;

    fn listings() -> Vec<Listing> {
        let taxonomy = Taxonomy::generate(TaxonomySpec::default());
        let mut rng = StdRng::seed_from_u64(7);
        generate_listings(&taxonomy, &CatalogSpec::default(), 1, &mut rng)
    }

    fn population(ls: &[Listing]) -> Population {
        let mut rng = StdRng::seed_from_u64(8);
        Population::generate(&PopulationSpec::default(), ls, &mut rng)
    }

    #[test]
    fn population_has_requested_size_and_clusters() {
        let ls = listings();
        let p = population(&ls);
        assert_eq!(p.consumers.len(), 30);
        let clusters: BTreeSet<usize> = p.consumers.iter().map(|c| c.cluster).collect();
        assert_eq!(clusters.len(), 3);
    }

    #[test]
    fn cluster_mates_share_taste_more_than_strangers() {
        let ls = listings();
        let p = population(&ls);
        let a = &p.consumers[0]; // cluster 0
        let b = &p.consumers[3]; // cluster 0 (30 consumers, 3 clusters, i%3)
        let c = &p.consumers[1]; // cluster 1
        let sim_ab = a.preference.cosine(&b.preference);
        let sim_ac = a.preference.cosine(&c.preference);
        assert!(
            sim_ab > sim_ac,
            "cluster-mates must be more similar: {sim_ab} vs {sim_ac}"
        );
    }

    #[test]
    fn affinity_is_higher_on_favoured_leaves() {
        let ls = listings();
        let p = population(&ls);
        let truth = &p.consumers[0];
        let favoured: Vec<f64> = ls
            .iter()
            .filter(|l| truth.favoured_leaves.contains(&l.item.category.as_key()))
            .map(|l| truth.affinity(&l.item))
            .collect();
        let other: Vec<f64> = ls
            .iter()
            .filter(|l| !truth.favoured_leaves.contains(&l.item.category.as_key()))
            .map(|l| truth.affinity(&l.item))
            .collect();
        assert!(!favoured.is_empty() && !other.is_empty());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&favoured) > mean(&other) + 0.5);
    }

    #[test]
    fn relevant_items_fraction_bounds_set_size() {
        let ls = listings();
        let p = population(&ls);
        let rel = p.relevant_items(ConsumerId(1), &ls, 0.1);
        assert!(!rel.is_empty());
        assert!(rel.len() <= (ls.len() / 10) + 1);
        assert!(p.relevant_items(ConsumerId(999), &ls, 0.1).is_empty());
    }

    #[test]
    fn history_is_biased_toward_relevant_items() {
        let ls = listings();
        let p = population(&ls);
        let mut rng = StdRng::seed_from_u64(9);
        let history = p.sample_history(&ls, 20, &mut rng);
        assert_eq!(history.len(), 30 * 20);
        let rel = p.relevant_items(ConsumerId(1), &ls, 0.2);
        let mine: Vec<_> = history
            .iter()
            .filter(|(c, _, _)| *c == ConsumerId(1))
            .collect();
        let hits = mine.iter().filter(|(_, m, _)| rel.contains(&m.id)).count();
        assert!(
            hits * 2 > mine.len(),
            "most sampled events should touch relevant items: {hits}/{}",
            mine.len()
        );
    }

    #[test]
    fn keywords_come_from_preference_vocabulary() {
        let ls = listings();
        let p = population(&ls);
        let mut rng = StdRng::seed_from_u64(10);
        let kw = p.consumers[0].sample_keyword(&mut rng).unwrap();
        assert!(!kw.contains('/'), "keyword must be un-namespaced: {kw}");
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let ls = listings();
        let spec = PopulationSpec::default();
        let a = Population::generate(&spec, &ls, &mut StdRng::seed_from_u64(3));
        let b = Population::generate(&spec, &ls, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn stream_derives_consumers_independent_of_visit_order() {
        let ls = listings();
        let stream = PopulationStream::new(&PopulationSpec::default(), &ls, 11);
        assert_eq!(stream.len(), 30);
        // deriving 29 first, then 3, matches deriving 3 directly on a
        // fresh stream — no hidden sequential state
        let fresh = PopulationStream::new(&PopulationSpec::default(), &ls, 11);
        let _ = stream.truth_of(29);
        assert_eq!(stream.truth_of(3), fresh.truth_of(3));
        assert_eq!(stream.events_of(3, 12), fresh.events_of(3, 12));
        // a different seed is a different population
        let other = PopulationStream::new(&PopulationSpec::default(), &ls, 12);
        assert_ne!(stream.truth_of(3).preference, other.truth_of(3).preference);
    }

    #[test]
    fn stream_clusters_share_taste_and_events_stay_on_cluster_leaves() {
        let ls = listings();
        let stream = PopulationStream::new(&PopulationSpec::default(), &ls, 11);
        let a = stream.truth_of(0);
        let b = stream.truth_of(3); // same cluster (i % 3)
        let c = stream.truth_of(1); // different cluster
        assert_eq!(a.cluster, b.cluster);
        assert!(
            a.preference.cosine(&b.preference) > a.preference.cosine(&c.preference),
            "cluster-mates must be more similar"
        );
        // every sampled event touches an item on a favoured leaf
        let events = stream.events_of(0, 20);
        assert_eq!(events.len(), 20);
        for (id, item, _) in events {
            assert_eq!(id, ConsumerId(1));
            let listing = ls.iter().find(|l| l.item.id == item).expect("catalog item");
            assert!(
                a.favoured_leaves.contains(&listing.item.category.as_key()),
                "event item {item:?} off the cluster's leaves"
            );
        }
    }

    #[test]
    fn stream_truths_agree_with_consumer_truth_shape() {
        let ls = listings();
        let stream = PopulationStream::new(&PopulationSpec::default(), &ls, 5);
        let all: Vec<ConsumerTruth> = stream.consumers().collect();
        assert_eq!(all.len(), 30);
        for (i, t) in all.iter().enumerate() {
            assert_eq!(t.id, ConsumerId(i as u64 + 1));
            assert!(!t.preference.is_empty());
            assert!(!t.favoured_leaves.is_empty());
        }
    }
}
