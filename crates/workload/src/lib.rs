//! # workload — synthetic data and session generators
//!
//! The paper evaluates nothing quantitatively and names no dataset, so
//! every experiment in this reproduction runs on synthetic workloads
//! (documented as a substitution in `DESIGN.md`):
//!
//! * [`taxonomy`] — deterministic two-level category taxonomy matching
//!   the profile presentation of Fig 4.4;
//! * [`catalog`] — merchandise listings with Zipf leaf popularity and
//!   per-marketplace splitting / price-jittered replication;
//! * [`population`] — consumers with latent taste clusters, ground-truth
//!   affinity, relevance sets, and behaviour-history sampling with
//!   controllable density (the §2.3 sparsity axis);
//! * [`session`] — browser-level shopping sessions over a live
//!   [`abcrm_core::server::Platform`], measuring conversion, order size
//!   and recommendation satisfaction (the §2.3 commerce-effect claims).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod population;
pub mod session;
pub mod taxonomy;

pub use catalog::{generate_listings, split_across_markets, CatalogSpec};
pub use population::{ConsumerTruth, Population, PopulationSpec, PopulationStream};
pub use session::{run_population_sessions, run_session, CommerceReport, SessionConfig};
pub use taxonomy::{Taxonomy, TaxonomySpec};
