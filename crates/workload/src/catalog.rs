//! Synthetic merchandise catalogs.
//!
//! Items are placed on taxonomy leaves with Zipf-skewed leaf popularity
//! (a few hot sub-categories carry most of the catalog, as real stores
//! do), draw weighted terms from their leaf's vocabulary, and get
//! log-uniform-ish prices. Output is [`Listing`]s ready to hand to seller
//! servers.

use crate::taxonomy::Taxonomy;
use ecp::merchandise::{ItemId, Merchandise, Money};
use ecp::protocol::Listing;
use ecp::terms::TermVector;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Shape of a generated catalog.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CatalogSpec {
    /// Number of items.
    pub items: usize,
    /// Zipf skew over taxonomy leaves (0 = uniform).
    pub zipf_s: f64,
    /// Terms sampled per item.
    pub terms_per_item: usize,
    /// Minimum price in whole units.
    pub price_min: u64,
    /// Maximum price in whole units.
    pub price_max: u64,
    /// Seller reservation as a fraction of list price.
    pub reservation_fraction: f64,
    /// Per-round seller concession in negotiation.
    pub concession: f64,
}

impl Default for CatalogSpec {
    fn default() -> Self {
        CatalogSpec {
            items: 100,
            zipf_s: 1.0,
            terms_per_item: 4,
            price_min: 5,
            price_max: 200,
            reservation_fraction: 0.7,
            concession: 0.1,
        }
    }
}

/// Sample an index in `[0, n)` from a Zipf(s) distribution.
pub fn zipf_index(rng: &mut StdRng, n: usize, s: f64) -> usize {
    debug_assert!(n > 0);
    if s <= 0.0 {
        return rng.gen_range(0..n);
    }
    let norm: f64 = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).sum();
    let mut target = rng.gen::<f64>() * norm;
    for k in 1..=n {
        target -= 1.0 / (k as f64).powf(s);
        if target <= 0.0 {
            return k - 1;
        }
    }
    n - 1
}

/// Generate `spec.items` listings over `taxonomy`, with ids starting at
/// `first_id`.
pub fn generate_listings(
    taxonomy: &Taxonomy,
    spec: &CatalogSpec,
    first_id: u64,
    rng: &mut StdRng,
) -> Vec<Listing> {
    let leaves = taxonomy.leaf_count();
    (0..spec.items)
        .map(|i| {
            let id = first_id + i as u64;
            let leaf = zipf_index(rng, leaves, spec.zipf_s);
            let (cat, sub) = taxonomy.leaf(leaf);
            let mut terms = TermVector::new();
            for _ in 0..spec.terms_per_item {
                let t = &sub.vocabulary[rng.gen_range(0..sub.vocabulary.len())];
                terms.add(t.clone(), 0.5 + rng.gen::<f64>());
            }
            let name = format!("{}-item{:04}", sub.name, id);
            terms.add(name.clone(), 1.0);
            let price_units = rng.gen_range(spec.price_min..=spec.price_max);
            let list_price = Money::from_units(price_units);
            Listing {
                item: Merchandise {
                    id: ItemId(id),
                    name,
                    category: ecp::merchandise::CategoryPath::new(
                        cat.name.clone(),
                        sub.name.clone(),
                    ),
                    terms,
                    list_price,
                    seller: 0,
                },
                reservation: list_price.scale(spec.reservation_fraction.clamp(0.0, 1.0)),
                concession: spec.concession,
            }
        })
        .collect()
}

/// Split listings round-robin across `n` marketplaces (every marketplace
/// gets a disjoint slice of the catalog).
pub fn split_across_markets(listings: Vec<Listing>, n: usize) -> Vec<Vec<Listing>> {
    let mut out: Vec<Vec<Listing>> = (0..n.max(1)).map(|_| Vec::new()).collect();
    for (i, l) in listings.into_iter().enumerate() {
        out[i % n.max(1)].push(l);
    }
    out
}

/// Duplicate the same listings to every marketplace, with per-market
/// price jitter — the multi-marketplace price-discovery scenario (E7).
pub fn replicate_with_price_jitter(
    listings: &[Listing],
    n: usize,
    jitter: f64,
    rng: &mut StdRng,
) -> Vec<Vec<Listing>> {
    (0..n)
        .map(|_| {
            listings
                .iter()
                .map(|l| {
                    let factor = 1.0 + jitter * (rng.gen::<f64>() * 2.0 - 1.0);
                    let mut l2 = l.clone();
                    l2.item.list_price = l.item.list_price.scale(factor.max(0.05));
                    l2.reservation = l2.item.list_price.scale(0.7);
                    l2
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::TaxonomySpec;
    use rand::SeedableRng;

    fn taxonomy() -> Taxonomy {
        Taxonomy::generate(TaxonomySpec::default())
    }

    #[test]
    fn generates_requested_number_with_unique_ids() {
        let mut rng = StdRng::seed_from_u64(1);
        let listings = generate_listings(&taxonomy(), &CatalogSpec::default(), 100, &mut rng);
        assert_eq!(listings.len(), 100);
        let mut ids: Vec<u64> = listings.iter().map(|l| l.item.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 100);
        assert_eq!(ids[0], 100);
    }

    #[test]
    fn prices_respect_bounds_and_reservation_below_list() {
        let mut rng = StdRng::seed_from_u64(2);
        let spec = CatalogSpec {
            price_min: 10,
            price_max: 20,
            ..CatalogSpec::default()
        };
        for l in generate_listings(&taxonomy(), &spec, 1, &mut rng) {
            assert!(l.item.list_price >= Money::from_units(10));
            assert!(l.item.list_price <= Money::from_units(20));
            assert!(l.reservation <= l.item.list_price);
        }
    }

    #[test]
    fn zipf_skews_leaf_popularity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0u32; 10];
        for _ in 0..10_000 {
            counts[zipf_index(&mut rng, 10, 1.2)] += 1;
        }
        assert!(
            counts[0] > counts[9] * 4,
            "head leaf must dominate tail: {counts:?}"
        );
        // uniform when s = 0
        let mut counts = vec![0u32; 4];
        for _ in 0..8_000 {
            counts[zipf_index(&mut rng, 4, 0.0)] += 1;
        }
        for c in counts {
            assert!(c > 1_500, "uniform sampling should balance: {c}");
        }
    }

    #[test]
    fn split_across_markets_is_disjoint_and_complete() {
        let mut rng = StdRng::seed_from_u64(4);
        let listings = generate_listings(&taxonomy(), &CatalogSpec::default(), 1, &mut rng);
        let split = split_across_markets(listings.clone(), 3);
        assert_eq!(split.len(), 3);
        let total: usize = split.iter().map(|v| v.len()).sum();
        assert_eq!(total, listings.len());
        let mut all_ids: Vec<u64> = split
            .iter()
            .flat_map(|v| v.iter().map(|l| l.item.id.0))
            .collect();
        all_ids.sort_unstable();
        all_ids.dedup();
        assert_eq!(all_ids.len(), listings.len());
    }

    #[test]
    fn replicate_jitters_prices_but_keeps_items() {
        let mut rng = StdRng::seed_from_u64(5);
        let spec = CatalogSpec {
            items: 10,
            ..CatalogSpec::default()
        };
        let listings = generate_listings(&taxonomy(), &spec, 1, &mut rng);
        let markets = replicate_with_price_jitter(&listings, 4, 0.2, &mut rng);
        assert_eq!(markets.len(), 4);
        for m in &markets {
            assert_eq!(m.len(), 10);
        }
        // at least one item must differ in price across markets
        let differs = (0..10).any(|i| {
            let p0 = markets[0][i].item.list_price;
            markets.iter().any(|m| m[i].item.list_price != p0)
        });
        assert!(differs, "jitter must create price differences");
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let t = taxonomy();
        let spec = CatalogSpec::default();
        let a = generate_listings(&t, &spec, 1, &mut StdRng::seed_from_u64(9));
        let b = generate_listings(&t, &spec, 1, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
