//! Shopping-session simulation over a live [`Platform`].
//!
//! Drives the browser-level API (login → queries → purchase decisions →
//! logout) using a consumer's ground-truth preferences to decide what to
//! search for and what to buy. Experiment E9 uses the outcomes to
//! quantify the §2.3 claims: browsers→buyers (conversion), cross-sell
//! (order size) and loyalty (repeat visits driven by recommendation
//! satisfaction).

use crate::population::{ConsumerTruth, Population};
use abcrm_core::agents::msg::ResponseBody;
use abcrm_core::profile::ConsumerId;
use abcrm_core::server::Platform;
use ecp::merchandise::{ItemId, Money};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Session behaviour parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Queries issued per session.
    pub queries: usize,
    /// Minimum true affinity for the consumer to buy an item they see.
    pub buy_threshold: f64,
    /// Probability of buying a sufficiently-liked raw offer.
    pub buy_probability: f64,
    /// Whether the consumer also considers the mechanism's
    /// recommendations (off = query results only).
    pub use_recommendations: bool,
    /// Offers requested per query.
    pub max_results: usize,
    /// Haggle instead of paying list price: `Some(budget_factor)` makes
    /// every purchase a negotiation with budget = list × factor (so
    /// factors below the sellers' reservation fraction produce walk-aways).
    pub negotiate_budget_factor: Option<f64>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            queries: 3,
            buy_threshold: 1.0,
            buy_probability: 0.8,
            use_recommendations: true,
            max_results: 5,
            negotiate_budget_factor: None,
        }
    }
}

/// What happened in one session.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionOutcome {
    /// Queries issued.
    pub queries: u32,
    /// Items bought in total.
    pub purchases: u32,
    /// Purchases attributable to recommendations (item was recommended
    /// but not among the raw offers of that query).
    pub recommended_purchases: u32,
    /// Money spent.
    pub spent: Money,
    /// Recommendations shown in total.
    pub recommendations_shown: u32,
    /// Shown recommendations that were truly relevant (affinity above
    /// the buy threshold) — the satisfaction signal behind loyalty.
    pub relevant_recommendations: u32,
    /// Items bought.
    pub items: Vec<ItemId>,
    /// Purchases closed through negotiation.
    pub negotiated_purchases: u32,
    /// Negotiations that ended without a deal.
    pub failed_negotiations: u32,
}

impl SessionOutcome {
    /// Fraction of shown recommendations that were relevant (0 when none
    /// were shown).
    pub fn satisfaction(&self) -> f64 {
        if self.recommendations_shown == 0 {
            0.0
        } else {
            self.relevant_recommendations as f64 / self.recommendations_shown as f64
        }
    }

    /// Whether the session converted (bought anything).
    pub fn converted(&self) -> bool {
        self.purchases > 0
    }
}

/// Run one shopping session for `consumer`.
pub fn run_session(
    platform: &mut Platform,
    truth: &ConsumerTruth,
    config: &SessionConfig,
    rng: &mut StdRng,
) -> SessionOutcome {
    let consumer = truth.id;
    let mut outcome = SessionOutcome::default();
    platform.login(consumer);
    for _ in 0..config.queries {
        let Some(keyword) = truth.sample_keyword(rng) else {
            continue;
        };
        outcome.queries += 1;
        let responses = platform.query(consumer, &[keyword.as_str()], config.max_results);
        for response in responses {
            let ResponseBody::Recommendations {
                offers,
                recommendations,
                ..
            } = response
            else {
                continue;
            };
            let offered: Vec<ItemId> = offers.iter().map(|o| o.item.id).collect();
            // decide purchases among raw offers
            for offer in &offers {
                if outcome.items.contains(&offer.item.id) {
                    continue;
                }
                let affinity = truth.affinity(&offer.item);
                if affinity >= config.buy_threshold && rng.gen::<f64>() < config.buy_probability {
                    buy(
                        platform,
                        consumer,
                        offer.item.id,
                        offer.item.list_price,
                        offer.marketplace,
                        config,
                        &mut outcome,
                    );
                }
            }
            // and among recommendations, if enabled
            if config.use_recommendations {
                for rec in &recommendations {
                    outcome.recommendations_shown += 1;
                    let affinity = truth.affinity(&rec.item);
                    if affinity >= config.buy_threshold {
                        outcome.relevant_recommendations += 1;
                    }
                    if outcome.items.contains(&rec.item.id) {
                        continue;
                    }
                    if affinity >= config.buy_threshold && rng.gen::<f64>() < config.buy_probability
                    {
                        let was_offered = offered.contains(&rec.item.id);
                        let market = platform.markets().iter().position(|_| true).unwrap_or(0);
                        // find which marketplace lists the item: try them
                        // in order (the buy fails gracefully otherwise)
                        let before = outcome.purchases;
                        try_buy_anywhere(
                            platform,
                            consumer,
                            rec.item.id,
                            rec.item.list_price,
                            config,
                            &mut outcome,
                        );
                        if outcome.purchases > before && !was_offered {
                            outcome.recommended_purchases += 1;
                        }
                        let _ = market;
                    }
                }
            }
        }
    }
    platform.logout(consumer);
    outcome
}

fn buy_mode(config: &SessionConfig, list_price: Money) -> abcrm_core::agents::msg::BuyMode {
    match config.negotiate_budget_factor {
        None => abcrm_core::agents::msg::BuyMode::Direct,
        Some(factor) => abcrm_core::agents::msg::BuyMode::Negotiate {
            budget: list_price.scale(factor.max(0.01)),
            opening_fraction: 0.6,
            raise: 0.1,
            max_rounds: 20,
        },
    }
}

fn record_buy_responses(
    responses: Vec<ResponseBody>,
    config: &SessionConfig,
    outcome: &mut SessionOutcome,
) -> bool {
    let mut bought = false;
    for r in responses {
        match r {
            ResponseBody::Receipt {
                item: item_bought,
                price,
                channel,
            } => {
                outcome.purchases += 1;
                outcome.spent = outcome.spent + price;
                outcome.items.push(item_bought.id);
                if channel.contains("negotiated") {
                    outcome.negotiated_purchases += 1;
                }
                bought = true;
            }
            ResponseBody::Error(_) if config.negotiate_budget_factor.is_some() => {
                outcome.failed_negotiations += 1;
            }
            _ => {}
        }
    }
    bought
}

fn buy(
    platform: &mut Platform,
    consumer: ConsumerId,
    item: ItemId,
    list_price: Money,
    marketplace: agentsim::ids::HostId,
    config: &SessionConfig,
    outcome: &mut SessionOutcome,
) {
    let Some(index) = platform
        .markets()
        .iter()
        .position(|m| m.host == marketplace)
    else {
        return;
    };
    let responses = platform.buy(consumer, item, index, buy_mode(config, list_price));
    record_buy_responses(responses, config, outcome);
}

fn try_buy_anywhere(
    platform: &mut Platform,
    consumer: ConsumerId,
    item: ItemId,
    list_price: Money,
    config: &SessionConfig,
    outcome: &mut SessionOutcome,
) {
    for index in 0..platform.markets().len() {
        let responses = platform.buy(consumer, item, index, buy_mode(config, list_price));
        if record_buy_responses(responses, config, outcome) {
            return;
        }
    }
}

/// Aggregate commerce effects over many sessions (E9's measurement).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CommerceReport {
    /// Sessions run.
    pub sessions: u32,
    /// Sessions that bought at least one item.
    pub converted_sessions: u32,
    /// Total purchases.
    pub purchases: u32,
    /// Purchases attributable to recommendations.
    pub recommended_purchases: u32,
    /// Total spend.
    pub spent: Money,
    /// Mean recommendation satisfaction.
    pub mean_satisfaction: f64,
}

impl CommerceReport {
    /// Conversion rate (browsers → buyers).
    pub fn conversion_rate(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.converted_sessions as f64 / self.sessions as f64
        }
    }

    /// Average order size in items per converted session (cross-sell).
    pub fn average_order_size(&self) -> f64 {
        if self.converted_sessions == 0 {
            0.0
        } else {
            self.purchases as f64 / self.converted_sessions as f64
        }
    }
}

/// Run one session for every consumer in `population` and aggregate.
pub fn run_population_sessions(
    platform: &mut Platform,
    population: &Population,
    config: &SessionConfig,
    rng: &mut StdRng,
) -> CommerceReport {
    let mut report = CommerceReport::default();
    let mut satisfaction_sum = 0.0;
    for truth in &population.consumers {
        let outcome = run_session(platform, truth, config, rng);
        report.sessions += 1;
        if outcome.converted() {
            report.converted_sessions += 1;
        }
        report.purchases += outcome.purchases;
        report.recommended_purchases += outcome.recommended_purchases;
        report.spent = report.spent + outcome.spent;
        satisfaction_sum += outcome.satisfaction();
    }
    if report.sessions > 0 {
        report.mean_satisfaction = satisfaction_sum / report.sessions as f64;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{generate_listings, split_across_markets, CatalogSpec};
    use crate::population::PopulationSpec;
    use crate::taxonomy::{Taxonomy, TaxonomySpec};
    use rand::SeedableRng;

    fn setup() -> (Platform, Population) {
        let taxonomy = Taxonomy::generate(TaxonomySpec {
            categories: 3,
            subs_per_category: 2,
            terms_per_sub: 8,
        });
        let mut rng = StdRng::seed_from_u64(31);
        let listings = generate_listings(
            &taxonomy,
            &CatalogSpec {
                items: 30,
                ..CatalogSpec::default()
            },
            1,
            &mut rng,
        );
        let population = Population::generate(
            &PopulationSpec {
                consumers: 6,
                clusters: 2,
                ..PopulationSpec::default()
            },
            &listings,
            &mut rng,
        );
        let platform = Platform::builder(32)
            .marketplaces(split_across_markets(listings, 2))
            .build();
        (platform, population)
    }

    #[test]
    fn session_logs_in_queries_and_logs_out() {
        let (mut platform, population) = setup();
        let mut rng = StdRng::seed_from_u64(33);
        let outcome = run_session(
            &mut platform,
            &population.consumers[0],
            &SessionConfig::default(),
            &mut rng,
        );
        assert!(outcome.queries >= 1);
        // session ended: no open sessions remain
        assert_eq!(platform.bsma_state().sessions().len(), 0);
    }

    #[test]
    fn population_sessions_aggregate_sanely() {
        let (mut platform, population) = setup();
        let mut rng = StdRng::seed_from_u64(34);
        let config = SessionConfig {
            queries: 2,
            ..SessionConfig::default()
        };
        let report = run_population_sessions(&mut platform, &population, &config, &mut rng);
        assert_eq!(report.sessions, 6);
        assert!(report.conversion_rate() >= 0.0 && report.conversion_rate() <= 1.0);
        if report.converted_sessions > 0 {
            assert!(report.average_order_size() >= 1.0);
            assert!(report.spent > Money(0));
        }
    }

    #[test]
    fn satisfaction_is_zero_without_recommendations_shown() {
        let outcome = SessionOutcome::default();
        assert_eq!(outcome.satisfaction(), 0.0);
        assert!(!outcome.converted());
    }

    #[test]
    fn negotiating_sessions_pay_less_than_list() {
        let (mut platform, population) = setup();
        let mut rng = StdRng::seed_from_u64(36);
        // generous haggling: budget at 95% of list — the catalog's
        // reservation is 70%, so deals close below list price
        let config = SessionConfig {
            negotiate_budget_factor: Some(0.95),
            use_recommendations: false,
            ..SessionConfig::default()
        };
        let mut total = SessionOutcome::default();
        for truth in &population.consumers {
            let o = run_session(&mut platform, truth, &config, &mut rng);
            total.purchases += o.purchases;
            total.negotiated_purchases += o.negotiated_purchases;
            total.spent = total.spent + o.spent;
        }
        if total.purchases > 0 {
            assert_eq!(
                total.negotiated_purchases, total.purchases,
                "with a negotiation factor every purchase goes through bargaining"
            );
        }
    }

    #[test]
    fn hopeless_negotiation_factor_produces_walk_aways() {
        let (mut platform, population) = setup();
        let mut rng = StdRng::seed_from_u64(37);
        // budget at 10% of list — far below the 70% reservation
        let config = SessionConfig {
            negotiate_budget_factor: Some(0.1),
            use_recommendations: false,
            ..SessionConfig::default()
        };
        let mut total = SessionOutcome::default();
        for truth in &population.consumers {
            let o = run_session(&mut platform, truth, &config, &mut rng);
            total.purchases += o.purchases;
            total.failed_negotiations += o.failed_negotiations;
        }
        assert_eq!(total.purchases, 0, "nobody sells at 10% of list");
    }

    #[test]
    fn disabling_recommendations_never_counts_recommended_purchases() {
        let (mut platform, population) = setup();
        let mut rng = StdRng::seed_from_u64(35);
        let config = SessionConfig {
            use_recommendations: false,
            ..SessionConfig::default()
        };
        let report = run_population_sessions(&mut platform, &population, &config, &mut rng);
        assert_eq!(report.recommended_purchases, 0);
        assert_eq!(report.mean_satisfaction, 0.0);
    }
}
