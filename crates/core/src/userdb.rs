//! UserDB — durable storage of profiles and transactions on the simdb
//! substrate.
//!
//! §3.3: *"UserDB records the consumer user profile and consumer
//! transaction records."* The [`UserDb`] wraps a [`simdb::JsonStore`]
//! with a typed API and syncs to/from the in-memory
//! [`crate::store::RecommendStore`]; the WAL gives it crash recovery.

use crate::profile::{ConsumerId, Profile};
use crate::store::RecommendStore;
use ecp::merchandise::{ItemId, Money};
use serde::{Deserialize, Serialize};
use simdb::{DbError, JsonStore};

/// One consumer transaction record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransactionRecord {
    /// Buyer.
    pub consumer: ConsumerId,
    /// Item traded.
    pub item: ItemId,
    /// Price paid.
    pub price: Money,
    /// How the trade happened.
    pub channel: TradeChannel,
    /// Simulated-time microsecond stamp.
    pub at_us: u64,
}

/// The trade path a transaction took.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TradeChannel {
    /// Direct buy at list price.
    Direct,
    /// Agreed through negotiation.
    Negotiated,
    /// Won at auction.
    Auction,
}

const PROFILES: &str = "profiles";
const TRANSACTIONS: &str = "transactions";

/// Typed facade over the UserDB store.
#[derive(Debug, Serialize, Deserialize)]
pub struct UserDb {
    store: JsonStore,
    tx_seq: u64,
}

impl UserDb {
    /// Fresh UserDB with its tables and indexes created.
    pub fn new() -> Self {
        let mut store = JsonStore::new("userdb");
        store.create_table(PROFILES).expect("create profiles table");
        store
            .create_table(TRANSACTIONS)
            .expect("create transactions table");
        store
            .add_index(TRANSACTIONS, "by-consumer", "consumer")
            .expect("index transactions by consumer");
        UserDb { store, tx_seq: 0 }
    }

    /// Persist `profile` for `consumer`.
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from the store.
    pub fn save_profile(&mut self, consumer: ConsumerId, profile: &Profile) -> Result<(), DbError> {
        self.store
            .put_typed(PROFILES, &consumer.0.to_string(), profile)
    }

    /// Load the profile of `consumer`, if saved.
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from the store.
    pub fn load_profile(&self, consumer: ConsumerId) -> Result<Option<Profile>, DbError> {
        self.store.get_typed(PROFILES, &consumer.0.to_string())
    }

    /// All saved profiles.
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from the store.
    pub fn all_profiles(&self) -> Result<Vec<(ConsumerId, Profile)>, DbError> {
        let mut out = Vec::new();
        for (key, value) in self.store.scan(PROFILES)? {
            let id: u64 = key
                .parse()
                .map_err(|e| DbError::Serialization(format!("bad profile key {key}: {e}")))?;
            let profile: Profile = serde_json::from_value(value.clone())
                .map_err(|e| DbError::Serialization(e.to_string()))?;
            out.push((ConsumerId(id), profile));
        }
        Ok(out)
    }

    /// Append a transaction record.
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from the store.
    pub fn record_transaction(&mut self, tx: &TransactionRecord) -> Result<(), DbError> {
        let key = format!("{:012}", self.tx_seq);
        self.tx_seq += 1;
        self.store.put_typed(TRANSACTIONS, &key, tx)
    }

    /// All transactions in append order.
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from the store.
    pub fn transactions(&self) -> Result<Vec<TransactionRecord>, DbError> {
        let mut out = Vec::new();
        for (_, value) in self.store.scan(TRANSACTIONS)? {
            out.push(
                serde_json::from_value(value.clone())
                    .map_err(|e| DbError::Serialization(e.to_string()))?,
            );
        }
        Ok(out)
    }

    /// Transactions of one consumer, served from the `by-consumer`
    /// secondary index rather than a full scan.
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from the store.
    pub fn transactions_of(&self, consumer: ConsumerId) -> Result<Vec<TransactionRecord>, DbError> {
        let rows = self
            .store
            .lookup_rows(TRANSACTIONS, "by-consumer", &consumer.0.to_string())?;
        rows.into_iter()
            .map(|(_, v)| {
                serde_json::from_value(v.clone()).map_err(|e| DbError::Serialization(e.to_string()))
            })
            .collect()
    }

    /// Number of stored profiles.
    pub fn profile_count(&self) -> usize {
        self.store.table_len(PROFILES)
    }

    /// Number of stored transactions.
    pub fn transaction_count(&self) -> usize {
        self.store.table_len(TRANSACTIONS)
    }

    /// Persist every profile of the in-memory store.
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from the store.
    pub fn sync_from(&mut self, memory: &RecommendStore) -> Result<(), DbError> {
        for (consumer, profile) in memory.profiles() {
            self.save_profile(consumer, profile)?;
        }
        Ok(())
    }

    /// Load every saved profile into the in-memory store.
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from the store.
    pub fn sync_into(&self, memory: &mut RecommendStore) -> Result<(), DbError> {
        for (consumer, profile) in self.all_profiles()? {
            memory.put_profile(consumer, profile);
        }
        Ok(())
    }

    /// Snapshot + WAL for crash-recovery tests; see
    /// [`simdb::JsonStore::recover`].
    pub fn durable_state(&self) -> (Vec<u8>, Vec<u8>) {
        (self.store.snapshot(), self.store.wal_bytes())
    }

    /// Rebuild from a snapshot + WAL pair.
    ///
    /// # Errors
    ///
    /// Propagates [`DbError`] from recovery.
    pub fn recover(snapshot: &[u8], wal: &[u8]) -> Result<Self, DbError> {
        let mut store = JsonStore::recover("userdb", snapshot, wal)?;
        // tables exist even after an empty-history crash; secondary
        // indexes are derived data, rebuilt after replay
        store.create_table(PROFILES)?;
        store.create_table(TRANSACTIONS)?;
        store.add_index(TRANSACTIONS, "by-consumer", "consumer")?;
        let tx_seq = store.table_len(TRANSACTIONS) as u64;
        Ok(UserDb { store, tx_seq })
    }
}

impl Default for UserDb {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_with(cat: &str, term: &str, w: f64) -> Profile {
        let mut p = Profile::new();
        p.category_mut(cat).terms.set(term, w);
        p
    }

    fn tx(consumer: u64, item: u64, price: u64) -> TransactionRecord {
        TransactionRecord {
            consumer: ConsumerId(consumer),
            item: ItemId(item),
            price: Money::from_units(price),
            channel: TradeChannel::Direct,
            at_us: 0,
        }
    }

    #[test]
    fn profile_save_load_round_trip() {
        let mut db = UserDb::new();
        let p = profile_with("books", "rust", 1.0);
        db.save_profile(ConsumerId(1), &p).unwrap();
        assert_eq!(db.load_profile(ConsumerId(1)).unwrap(), Some(p));
        assert_eq!(db.load_profile(ConsumerId(2)).unwrap(), None);
        assert_eq!(db.profile_count(), 1);
    }

    #[test]
    fn transactions_append_in_order() {
        let mut db = UserDb::new();
        db.record_transaction(&tx(1, 10, 5)).unwrap();
        db.record_transaction(&tx(2, 11, 6)).unwrap();
        db.record_transaction(&tx(1, 12, 7)).unwrap();
        let all = db.transactions().unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].item, ItemId(10));
        assert_eq!(all[2].item, ItemId(12));
        assert_eq!(db.transactions_of(ConsumerId(1)).unwrap().len(), 2);
    }

    #[test]
    fn crash_recovery_preserves_everything() {
        let mut db = UserDb::new();
        db.save_profile(ConsumerId(1), &profile_with("books", "rust", 1.0))
            .unwrap();
        db.record_transaction(&tx(1, 10, 5)).unwrap();
        let (snapshot, wal) = db.durable_state();
        let recovered = UserDb::recover(&snapshot, &wal).unwrap();
        assert_eq!(recovered.profile_count(), 1);
        assert_eq!(recovered.transaction_count(), 1);
        assert_eq!(
            recovered.load_profile(ConsumerId(1)).unwrap(),
            db.load_profile(ConsumerId(1)).unwrap()
        );
    }

    #[test]
    fn recovered_db_continues_transaction_sequence() {
        let mut db = UserDb::new();
        db.record_transaction(&tx(1, 10, 5)).unwrap();
        let (snap, wal) = db.durable_state();
        let mut recovered = UserDb::recover(&snap, &wal).unwrap();
        recovered.record_transaction(&tx(2, 11, 6)).unwrap();
        assert_eq!(
            recovered.transaction_count(),
            2,
            "sequence must not overwrite"
        );
    }

    #[test]
    fn recovery_from_nothing_yields_a_working_db() {
        let mut db = UserDb::recover(b"", b"").unwrap();
        assert_eq!(db.profile_count(), 0);
        db.record_transaction(&tx(1, 10, 5)).unwrap();
        assert_eq!(db.transactions_of(ConsumerId(1)).unwrap().len(), 1);
    }

    #[test]
    fn transactions_of_uses_the_index_after_recovery() {
        let mut db = UserDb::new();
        db.record_transaction(&tx(1, 10, 5)).unwrap();
        db.record_transaction(&tx(2, 11, 6)).unwrap();
        db.record_transaction(&tx(1, 12, 7)).unwrap();
        let (snap, wal) = db.durable_state();
        let recovered = UserDb::recover(&snap, &wal).unwrap();
        let mine = recovered.transactions_of(ConsumerId(1)).unwrap();
        assert_eq!(mine.len(), 2);
        assert!(mine.iter().all(|t| t.consumer == ConsumerId(1)));
    }

    #[test]
    fn sync_round_trip_with_memory_store() {
        let mut memory = RecommendStore::new();
        memory.put_profile(ConsumerId(1), profile_with("books", "rust", 1.0));
        memory.put_profile(ConsumerId(2), profile_with("music", "jazz", 0.5));
        let mut db = UserDb::new();
        db.sync_from(&memory).unwrap();
        assert_eq!(db.profile_count(), 2);
        let mut restored = RecommendStore::new();
        db.sync_into(&mut restored).unwrap();
        assert_eq!(
            restored.profile(ConsumerId(1)),
            memory.profile(ConsumerId(1))
        );
        assert_eq!(restored.consumer_count(), 2);
    }
}
