//! Item-based collaborative filtering — the second classic CF baseline.
//!
//! Where user-kNN ([`crate::recommend::CfRecommender`]) asks *"which
//! consumers are like you?"*, item-based CF asks *"which items are
//! co-preferred with what you already like?"*. It is included because
//! every serious recommender comparison of the era (and since) reports
//! both; experiment E6 runs it alongside the paper's hybrid.

use crate::profile::ConsumerId;
use crate::ratings::RatingsMatrix;
use crate::recommend::{QueryContext, Recommendation, Recommender};
use crate::store::RecommendStore;
use ecp::merchandise::ItemId;
use std::collections::BTreeMap;

/// Cosine similarity between two items' rating columns.
///
/// `None` when either item has no raters or fewer than `min_overlap`
/// users rated both. Reads [`RatingsMatrix::item_column`] directly: the
/// dot product walks the smaller column once with lookups into the
/// larger, and the norms are single passes over each column — no
/// per-user row lookups. Symmetric down to the bit: the dot sums over
/// the co-rater intersection in ascending user order either way, and
/// `f64` multiplication commutes.
pub fn item_cosine(
    ratings: &RatingsMatrix,
    a: ItemId,
    b: ItemId,
    min_overlap: usize,
) -> Option<f64> {
    let col_a = ratings.item_column(a)?;
    let col_b = ratings.item_column(b)?;
    if col_a.is_empty() || col_b.is_empty() {
        return None;
    }
    let (small, large) = if col_a.len() <= col_b.len() {
        (col_a, col_b)
    } else {
        (col_b, col_a)
    };
    let mut dot = 0.0;
    let mut overlap = 0usize;
    for (user, rs) in small {
        if let Some(rl) = large.get(user) {
            overlap += 1;
            dot += rs * rl;
        }
    }
    if overlap < min_overlap.max(1) {
        return None;
    }
    let norm = |col: &BTreeMap<u64, f64>| col.values().map(|r| r * r).sum::<f64>().sqrt();
    let denom = norm(col_a) * norm(col_b);
    if denom == 0.0 {
        None
    } else {
        Some((dot / denom).clamp(0.0, 1.0))
    }
}

/// Item-based CF recommender.
#[derive(Debug, Clone, Copy)]
pub struct ItemCfRecommender {
    /// Similar items considered per liked item.
    pub k_similar: usize,
    /// Minimum co-rater overlap for an item pair to count.
    pub min_overlap: usize,
}

impl Default for ItemCfRecommender {
    fn default() -> Self {
        ItemCfRecommender {
            k_similar: 20,
            min_overlap: 2,
        }
    }
}

impl ItemCfRecommender {
    /// Reference implementation recomputing every item–item similarity
    /// from scratch — bypasses the store's memo cache. Used by the
    /// equivalence tests and benchmarks; prefer
    /// [`Recommender::recommend`].
    pub fn recommend_naive(
        &self,
        store: &RecommendStore,
        user: ConsumerId,
        context: &QueryContext,
        k: usize,
    ) -> Vec<Recommendation> {
        self.recommend_impl(store, user, context, k, |a, b| {
            item_cosine(store.ratings(), a, b, self.min_overlap)
        })
    }

    fn recommend_impl(
        &self,
        store: &RecommendStore,
        user: ConsumerId,
        context: &QueryContext,
        k: usize,
        sim: impl Fn(ItemId, ItemId) -> Option<f64>,
    ) -> Vec<Recommendation> {
        let ratings = store.ratings();
        let liked = ratings.user_ratings(user);
        if liked.is_empty() {
            return Vec::new();
        }
        let owned = store.purchased_by(user);
        // score candidates by rating-weighted similarity to liked items
        let mut scores: BTreeMap<u64, (f64, f64)> = BTreeMap::new(); // item -> (sum sim*rating, sum sim)
        for (liked_item, rating) in &liked {
            // candidate pool: items co-rated with this liked item
            let raters = ratings
                .item_column(*liked_item)
                .map(|c| c.keys())
                .into_iter()
                .flatten();
            let mut candidates: std::collections::BTreeSet<ItemId> =
                std::collections::BTreeSet::new();
            for rater in raters {
                for (other, _) in ratings.user_ratings(ConsumerId(*rater)) {
                    if other != *liked_item && !owned.contains(&other) {
                        candidates.insert(other);
                    }
                }
            }
            let mut sims: Vec<(ItemId, f64)> = candidates
                .into_iter()
                .filter_map(|c| sim(*liked_item, c).map(|s| (c, s)))
                .filter(|(_, s)| *s > 0.0)
                .collect();
            sims.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            sims.truncate(self.k_similar);
            for (candidate, sim) in sims {
                let entry = scores.entry(candidate.0).or_insert((0.0, 0.0));
                entry.0 += sim * rating;
                entry.1 += sim;
            }
        }
        let mut recs: Vec<Recommendation> = scores
            .into_iter()
            .filter_map(|(item, (weighted, sim_sum))| {
                if sim_sum <= 0.0 {
                    return None;
                }
                let item = ItemId(item);
                let merch = store.catalog().get(item)?;
                if let Some(cat) = &context.category {
                    if &merch.category != cat {
                        return None;
                    }
                }
                let relevance = context.relevance(merch);
                Some(Recommendation {
                    item,
                    score: (weighted / sim_sum) * (0.2 + relevance),
                })
            })
            .filter(|r| r.score > 0.0)
            .collect();
        recs.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.item.cmp(&b.item))
        });
        recs.truncate(k);
        recs
    }
}

impl Recommender for ItemCfRecommender {
    fn name(&self) -> &'static str {
        "cf-item"
    }

    fn recommend(
        &self,
        store: &RecommendStore,
        user: ConsumerId,
        context: &QueryContext,
        k: usize,
    ) -> Vec<Recommendation> {
        // same pipeline as `recommend_naive`, but item–item similarities
        // come from the store's version-checked memo cache
        self.recommend_impl(store, user, context, k, |a, b| {
            store.item_cosine_cached(a, b, self.min_overlap)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learning::BehaviorKind;
    use ecp::merchandise::{CategoryPath, Merchandise, Money};
    use ecp::terms::TermVector;

    fn merch(id: u64) -> Merchandise {
        Merchandise {
            id: ItemId(id),
            name: format!("item{id}"),
            category: CategoryPath::new("books", "programming"),
            terms: TermVector::from_pairs([(format!("item{id}"), 1.0)]),
            list_price: Money::from_units(10),
            seller: 1,
        }
    }

    /// Items 1 and 2 are co-purchased by everyone; item 3 is loved by a
    /// different crowd.
    fn co_purchase_store() -> RecommendStore {
        let mut s = RecommendStore::new();
        for id in 1..=4 {
            s.upsert_item(merch(id));
        }
        for u in 1..=5u64 {
            s.record_event(ConsumerId(u), ItemId(1), BehaviorKind::Purchase);
            s.record_event(ConsumerId(u), ItemId(2), BehaviorKind::Purchase);
        }
        for u in 10..=12u64 {
            s.record_event(ConsumerId(u), ItemId(3), BehaviorKind::Purchase);
            s.record_event(ConsumerId(u), ItemId(4), BehaviorKind::Purchase);
        }
        // the probe user bought item 1 only
        s.record_event(ConsumerId(99), ItemId(1), BehaviorKind::Purchase);
        s
    }

    #[test]
    fn item_cosine_finds_co_purchased_pairs() {
        let s = co_purchase_store();
        let sim_12 = item_cosine(s.ratings(), ItemId(1), ItemId(2), 2).unwrap();
        assert!(sim_12 > 0.8, "co-purchased items must be similar: {sim_12}");
        assert_eq!(
            item_cosine(s.ratings(), ItemId(1), ItemId(3), 2),
            None,
            "no co-raters at all"
        );
        assert_eq!(item_cosine(s.ratings(), ItemId(1), ItemId(999), 1), None);
    }

    #[test]
    fn item_cosine_is_symmetric() {
        let s = co_purchase_store();
        let ab = item_cosine(s.ratings(), ItemId(1), ItemId(2), 2);
        let ba = item_cosine(s.ratings(), ItemId(2), ItemId(1), 2);
        assert_eq!(ab, ba);
    }

    #[test]
    fn recommends_companion_of_owned_item() {
        let s = co_purchase_store();
        let recs =
            ItemCfRecommender::default().recommend(&s, ConsumerId(99), &QueryContext::default(), 5);
        assert!(!recs.is_empty());
        assert_eq!(
            recs[0].item,
            ItemId(2),
            "item 2 is the classic companion of item 1"
        );
        // items from the other crowd don't appear (no co-raters)
        assert!(recs
            .iter()
            .all(|r| r.item != ItemId(3) && r.item != ItemId(4)));
    }

    #[test]
    fn cold_user_gets_nothing() {
        let s = co_purchase_store();
        let recs = ItemCfRecommender::default().recommend(
            &s,
            ConsumerId(1234),
            &QueryContext::default(),
            5,
        );
        assert!(
            recs.is_empty(),
            "item CF needs at least one rating from the user"
        );
    }

    #[test]
    fn owned_items_are_never_recommended() {
        let s = co_purchase_store();
        let recs =
            ItemCfRecommender::default().recommend(&s, ConsumerId(1), &QueryContext::default(), 5);
        assert!(recs
            .iter()
            .all(|r| r.item != ItemId(1) && r.item != ItemId(2)));
    }

    #[test]
    fn category_filter_applies() {
        let mut s = co_purchase_store();
        let mut odd = merch(5);
        odd.category = CategoryPath::new("music", "jazz");
        s.upsert_item(odd);
        for u in 1..=5u64 {
            s.record_event(ConsumerId(u), ItemId(5), BehaviorKind::Purchase);
        }
        let ctx = QueryContext {
            keywords: vec![],
            category: Some(CategoryPath::new("music", "jazz")),
        };
        let recs = ItemCfRecommender::default().recommend(&s, ConsumerId(99), &ctx, 5);
        assert!(recs.iter().all(|r| r.item == ItemId(5)), "{recs:?}");
    }
}
