//! The full platform harness: builds the Fig 3.1 architecture and drives
//! consumer workflows end to end.
//!
//! [`Platform`] assembles a Coordinator Server, N Marketplaces with their
//! Seller Servers, and a Buyer Agent Server provisioned through the
//! Coordinator exactly as Fig 4.1 describes. It then exposes
//! browser-level operations (`login`, `query`, `buy`, `auction`,
//! `logout`) that inject [`FrontRequest`]s at the HttpA and read back the
//! [`FrontResponse`]s — every hop in between is real agent traffic on the
//! simulated network.

use crate::admission::AdmissionConfig;
use crate::agents::msg::{
    kinds as msgkinds, BuyMode, ConsumerTask, FrontRequest, FrontRequestBody, FrontResponse,
    MarketRef, ResponseBody,
};
use crate::agents::{register_all, Bsma, BsmaConfig};
use crate::breaker::BreakerConfig;
use crate::learning::{BehaviorKind, LearnerConfig};
use crate::profile::ConsumerId;
use crate::retry::BackoffPolicy;
use crate::similarity::SimilarityConfig;
use agentsim::chaos::ChaosPlan;
use agentsim::clock::SimDuration;
use agentsim::durable::DurabilityConfig;
use agentsim::ids::{AgentId, HostId};
use agentsim::message::Message;
use agentsim::net::Topology;
use agentsim::overload::MailboxConfig;
use agentsim::shard::ShardedSimWorld;
use agentsim::sim::SimWorld;
use agentsim::supervise::SupervisionConfig;
use ecp::merchandise::{ItemId, Merchandise, Money};
use ecp::protocol::{
    kinds as ecpk, AuctionOpen, Listing, RegisterServer, RequestBuyerServer, ServerRole,
};
use ecp::{CoordinatorAgent, MarketplaceAgent, SellerAgent};

/// Builder for a [`Platform`].
#[derive(Debug)]
pub struct PlatformBuilder {
    seed: u64,
    topology: Topology,
    listings_per_market: Vec<Vec<Listing>>,
    learner: LearnerConfig,
    similarity: SimilarityConfig,
    collaborative_weight: f64,
    mba_timeout_us: u64,
    watch_retries: u32,
    bra_retry: BackoffPolicy,
    telemetry: bool,
    admission: Option<AdmissionConfig>,
    request_deadline_us: u64,
    breaker: Option<BreakerConfig>,
    mailbox: Option<MailboxConfig>,
    durability: Option<DurabilityConfig>,
    supervision: Option<SupervisionConfig>,
}

impl PlatformBuilder {
    /// Start building with a seed; defaults to one marketplace with no
    /// listings and a LAN topology.
    pub fn new(seed: u64) -> Self {
        PlatformBuilder {
            seed,
            topology: Topology::lan(),
            listings_per_market: vec![Vec::new()],
            learner: LearnerConfig::default(),
            similarity: SimilarityConfig::default(),
            collaborative_weight: 0.7,
            mba_timeout_us: 600_000_000,
            watch_retries: 1,
            bra_retry: BackoffPolicy::default(),
            telemetry: false,
            admission: None,
            request_deadline_us: 0,
            breaker: None,
            mailbox: None,
            durability: None,
            supervision: None,
        }
    }

    /// Use an explicit topology.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// One entry per marketplace: the listings its seller provides.
    pub fn marketplaces(mut self, listings_per_market: Vec<Vec<Listing>>) -> Self {
        self.listings_per_market = listings_per_market;
        self
    }

    /// Profile learner configuration.
    pub fn learner(mut self, learner: LearnerConfig) -> Self {
        self.learner = learner;
        self
    }

    /// Similarity configuration.
    pub fn similarity(mut self, similarity: SimilarityConfig) -> Self {
        self.similarity = similarity;
        self
    }

    /// Hybrid collaborative weight (ablation knob).
    pub fn collaborative_weight(mut self, w: f64) -> Self {
        self.collaborative_weight = w;
        self
    }

    /// MBA loss timeout in simulated microseconds.
    pub fn mba_timeout_us(mut self, us: u64) -> Self {
        self.mba_timeout_us = us;
        self
    }

    /// Grace periods the BSMA watchdog grants an overdue MBA.
    pub fn watch_retries(mut self, retries: u32) -> Self {
        self.watch_retries = retries;
        self
    }

    /// Backoff schedule BRAs use to re-dispatch a lost MBA.
    pub fn bra_retry(mut self, policy: BackoffPolicy) -> Self {
        self.bra_retry = policy;
        self
    }

    /// Enable token-bucket admission control with priority shedding at
    /// the HttpA ingress.
    pub fn admission(mut self, config: AdmissionConfig) -> Self {
        self.admission = Some(config);
        self
    }

    /// Mint an end-to-end deadline of `us` microseconds for every
    /// admitted task; it propagates on each message and migration hop
    /// (0, the default, keeps deadlines off).
    pub fn request_deadline_us(mut self, us: u64) -> Self {
        self.request_deadline_us = us;
        self
    }

    /// Guard each marketplace with a circuit breaker fed by MBA trip
    /// reports.
    pub fn breaker(mut self, config: BreakerConfig) -> Self {
        self.breaker = Some(config);
        self
    }

    /// Bound every agent mailbox (applied after the creation workflow so
    /// provisioning traffic is never shed).
    pub fn mailbox(mut self, config: MailboxConfig) -> Self {
        self.mailbox = Some(config);
        self
    }

    /// Turn on end-to-end request tracing and the latency registry
    /// (enabled before the world is assembled, so the Fig 4.1 creation
    /// workflow itself is traced).
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Give every host a WAL-backed [`DurableStore`] and switch the
    /// buyer-side agents to durable operation: BRAs journal two-phase
    /// purchase intents and the PA journals profile deltas, so a
    /// [`SimWorld::crash_host`]/`restart_host` cycle recovers in-flight
    /// work instead of dropping it. Off by default — without this call
    /// traces are byte-identical to a platform built before durability
    /// existed.
    ///
    /// [`DurableStore`]: agentsim::durable::DurableStore
    /// [`SimWorld::crash_host`]: agentsim::sim::SimWorld::crash_host
    pub fn durability(mut self, config: DurabilityConfig) -> Self {
        self.durability = Some(config);
        self
    }

    /// Arm self-healing supervision: heartbeat leases detect crashed and
    /// hung hosts, and expiry triggers an automatic failover (recovery
    /// onto a standby host) without any scripted `restart_host` call.
    /// Pairs naturally with [`PlatformBuilder::durability`] — without
    /// durable stores a failed-over host has no capsules to restore. Off
    /// by default; absent, traces are byte-identical to a platform built
    /// before supervision existed.
    pub fn supervision(mut self, config: SupervisionConfig) -> Self {
        self.supervision = Some(config);
        self
    }

    /// Assemble the world and run the Fig 4.1 creation workflow.
    pub fn build(self) -> Platform {
        let mut world = SimWorld::with_topology(self.seed, self.topology);
        if let Some(cfg) = self.durability {
            world.enable_durability(cfg);
        }
        if let Some(cfg) = self.supervision {
            world.enable_supervision(cfg);
        }
        if self.telemetry {
            world.enable_telemetry();
        }
        register_all(world.registry_mut());

        // Coordinator Server with its CA.
        let coordinator_host = world.add_host("coordinator-server");
        let coordinator = world
            .create_agent(coordinator_host, Box::new(CoordinatorAgent::new()))
            .expect("create coordinator");

        // Marketplaces + their seller servers.
        let mut markets = Vec::new();
        for (i, listings) in self.listings_per_market.iter().enumerate() {
            let market_host = world.add_host(format!("marketplace-{i}"));
            let market_agent = world
                .create_agent(
                    market_host,
                    Box::new(MarketplaceAgent::new(format!("m{i}"))),
                )
                .expect("create marketplace");
            markets.push(MarketRef {
                host: market_host,
                agent: market_agent,
            });
            let reg = Message::new(ecpk::REGISTER_SERVER)
                .with_payload(&RegisterServer {
                    role: ServerRole::Marketplace,
                    host: market_host,
                    agent: market_agent,
                    name: format!("m{i}"),
                })
                .expect("register serializes");
            world
                .send_external(coordinator, reg)
                .expect("register marketplace");
            let seller_host = world.add_host(format!("seller-{i}"));
            world
                .create_agent(
                    seller_host,
                    Box::new(SellerAgent::new(
                        i as u32 + 1,
                        format!("seller-{i}"),
                        listings.clone(),
                        vec![market_agent],
                    )),
                )
                .expect("create seller");
        }
        world.run_until_idle();

        // Buyer Agent Server, provisioned through the Coordinator
        // (Fig 4.1 steps 1-6).
        let buyer_host = world.add_host("buyer-agent-server");
        let config = BsmaConfig {
            target: buyer_host,
            coordinator,
            markets: markets.clone(),
            name: "buyer-agent-server".into(),
            learner: self.learner,
            similarity: self.similarity.with_ann_seed(self.seed),
            mba_timeout_us: self.mba_timeout_us,
            collaborative_weight: self.collaborative_weight,
            watch_retries: self.watch_retries,
            bra_retry: self.bra_retry,
            admission: self.admission,
            request_deadline_us: self.request_deadline_us,
            breaker: self.breaker,
            durable: self.durability.is_some(),
        };
        let request = Message::new(ecpk::REQUEST_BUYER_SERVER)
            .with_payload(&RequestBuyerServer {
                host: buyer_host,
                bsma_type: crate::agents::BSMA_TYPE.to_string(),
                config: serde_json::json!({ "config": config }),
            })
            .expect("request serializes");
        world
            .send_external(coordinator, request)
            .expect("request buyer server");
        world.run_until_idle();

        // Locate the BSMA (it migrated to the buyer host) and its
        // children.
        let mut bsma_id = None;
        let mut bsma_state = None;
        for id in world.agents_on(buyer_host) {
            if let Ok(snapshot) = world.snapshot_of(id) {
                if let Ok(state) = serde_json::from_value::<Bsma>(snapshot) {
                    if state.is_ready() {
                        bsma_id = Some(id);
                        bsma_state = Some(state);
                        break;
                    }
                }
            }
        }
        let bsma = bsma_id.expect("bsma reached the buyer host and set up");
        let state = bsma_state.expect("bsma state available");
        let httpa = state.httpa().expect("httpa created");
        let pa = state.pa().expect("pa created");

        // Bound mailboxes only once the platform stands: provisioning
        // traffic must never be shed.
        if let Some(mailbox) = self.mailbox {
            world.set_mailbox(mailbox);
        }

        Platform {
            world,
            coordinator,
            buyer_host,
            bsma,
            httpa,
            pa,
            markets,
            responses_read: 0,
        }
    }
}

/// A fully assembled e-commerce platform with one Buyer Agent Server.
pub struct Platform {
    world: SimWorld,
    coordinator: AgentId,
    buyer_host: HostId,
    bsma: AgentId,
    httpa: AgentId,
    pa: AgentId,
    markets: Vec<MarketRef>,
    responses_read: usize,
}

impl Platform {
    /// Start building a platform.
    pub fn builder(seed: u64) -> PlatformBuilder {
        PlatformBuilder::new(seed)
    }

    /// The underlying world (trace, metrics, clock).
    pub fn world(&self) -> &SimWorld {
        &self.world
    }

    /// Mutable world access (topology changes, manual messages).
    pub fn world_mut(&mut self) -> &mut SimWorld {
        &mut self.world
    }

    /// The telemetry sink (span trees + latency registry). Empty unless
    /// the platform was built with [`PlatformBuilder::telemetry`].
    pub fn telemetry(&self) -> &agentsim::telemetry::Telemetry {
        self.world.telemetry()
    }

    /// Install a [`ChaosPlan`] on the underlying world: its faults fire
    /// at their scheduled sim times as the platform runs.
    pub fn install_chaos(&mut self, plan: &ChaosPlan) {
        self.world.install_chaos(plan);
    }

    /// Marketplace references, in creation order.
    pub fn markets(&self) -> &[MarketRef] {
        &self.markets
    }

    /// The BSMA's agent id.
    pub fn bsma(&self) -> AgentId {
        self.bsma
    }

    /// The PA's agent id.
    pub fn pa(&self) -> AgentId {
        self.pa
    }

    /// The HttpA's agent id.
    pub fn httpa(&self) -> AgentId {
        self.httpa
    }

    /// The Coordinator Agent's id.
    pub fn coordinator(&self) -> AgentId {
        self.coordinator
    }

    /// The Buyer Agent Server's host.
    pub fn buyer_host(&self) -> HostId {
        self.buyer_host
    }

    fn send_front(&mut self, request: FrontRequest) {
        let msg = Message::new(msgkinds::FRONT_REQUEST)
            .with_payload(&request)
            .expect("front request serializes");
        self.world
            .send_external(self.httpa, msg)
            .expect("httpa reachable");
    }

    /// Drain responses addressed to `consumer` that arrived since the
    /// last call.
    fn drain_responses(&mut self, consumer: ConsumerId) -> Vec<ResponseBody> {
        let snapshot = self.world.snapshot_of(self.httpa).expect("httpa active");
        let state: crate::agents::HttpAgent =
            serde_json::from_value(snapshot).expect("httpa state parses");
        let all: Vec<FrontResponse> = state.responses().to_vec();
        let fresh: Vec<ResponseBody> = all[self.responses_read.min(all.len())..]
            .iter()
            .filter(|r| r.consumer == consumer)
            .map(|r| r.body.clone())
            .collect();
        self.responses_read = all.len();
        fresh
    }

    fn run_task(&mut self, consumer: ConsumerId, body: FrontRequestBody) -> Vec<ResponseBody> {
        self.send_front(FrontRequest { consumer, body });
        self.world.run_until_idle();
        self.drain_responses(consumer)
    }

    /// Log `consumer` in (creates their BRA).
    pub fn login(&mut self, consumer: ConsumerId) -> Vec<ResponseBody> {
        self.run_task(consumer, FrontRequestBody::Login)
    }

    /// Log `consumer` out (disposes their BRA).
    pub fn logout(&mut self, consumer: ConsumerId) -> Vec<ResponseBody> {
        self.run_task(consumer, FrontRequestBody::Logout)
    }

    /// Run the Fig 4.2 merchandise-query workflow.
    pub fn query(
        &mut self,
        consumer: ConsumerId,
        keywords: &[&str],
        max_results: usize,
    ) -> Vec<ResponseBody> {
        self.run_task(
            consumer,
            FrontRequestBody::Task(ConsumerTask::Query {
                keywords: keywords.iter().map(|s| s.to_string()).collect(),
                category: None,
                max_results,
            }),
        )
    }

    /// Run the Fig 4.3 buy workflow against marketplace `market_index`.
    pub fn buy(
        &mut self,
        consumer: ConsumerId,
        item: ItemId,
        market_index: usize,
        mode: BuyMode,
    ) -> Vec<ResponseBody> {
        let market = self.markets[market_index];
        self.run_task(
            consumer,
            FrontRequestBody::Task(ConsumerTask::Buy { item, market, mode }),
        )
    }

    /// Open an English auction on `item` at marketplace `market_index`
    /// (a seller action, injected directly).
    pub fn open_auction(
        &mut self,
        market_index: usize,
        item: ItemId,
        reserve: Money,
        increment: Money,
        duration: SimDuration,
    ) {
        self.open_auction_with(market_index, item, reserve, increment, duration, false);
    }

    /// Open a descending-price (Dutch) auction: the price starts at
    /// `start` and drops by `decrement` every `tick` until taken or
    /// `floor` is reached.
    pub fn open_dutch_auction(
        &mut self,
        market_index: usize,
        item: ItemId,
        start: Money,
        floor: Money,
        decrement: Money,
        tick: SimDuration,
    ) {
        let market = self.markets[market_index];
        let msg = Message::new(ecpk::DUTCH_OPEN)
            .with_payload(&ecp::protocol::DutchOpen {
                item,
                start,
                floor,
                decrement,
                tick_us: tick.as_micros(),
            })
            .expect("dutch open serializes");
        self.world
            .send_external(market.agent, msg)
            .expect("marketplace reachable");
        self.world.run_for(SimDuration::from_millis(5));
    }

    /// Open a sealed-bid second-price (Vickrey) auction.
    pub fn open_sealed_auction(
        &mut self,
        market_index: usize,
        item: ItemId,
        reserve: Money,
        duration: SimDuration,
    ) {
        self.open_auction_with(market_index, item, reserve, Money(0), duration, true);
    }

    fn open_auction_with(
        &mut self,
        market_index: usize,
        item: ItemId,
        reserve: Money,
        increment: Money,
        duration: SimDuration,
        sealed: bool,
    ) {
        let market = self.markets[market_index];
        let msg = Message::new(ecpk::AUCTION_OPEN)
            .with_payload(&AuctionOpen {
                item,
                reserve,
                increment,
                duration_us: duration.as_micros(),
                sealed,
            })
            .expect("auction open serializes");
        self.world
            .send_external(market.agent, msg)
            .expect("marketplace reachable");
        // deliver the open without firing the close timer
        self.world.run_for(SimDuration::from_millis(5));
    }

    /// Run the Fig 4.3 auction workflow: the consumer's MBA joins and
    /// bids up to `limit`. Runs until the auction settles.
    pub fn auction(
        &mut self,
        consumer: ConsumerId,
        item: ItemId,
        market_index: usize,
        limit: Money,
    ) -> Vec<ResponseBody> {
        let market = self.markets[market_index];
        self.run_task(
            consumer,
            FrontRequestBody::Task(ConsumerTask::Auction {
                item,
                market,
                limit,
            }),
        )
    }

    /// Submit a task without running the world — use with
    /// [`Platform::run_and_drain`] to let several consumers' tasks (e.g.
    /// competing auction bids) overlap in time.
    pub fn submit_task(&mut self, consumer: ConsumerId, task: ConsumerTask) {
        self.send_front(FrontRequest {
            consumer,
            body: FrontRequestBody::Task(task),
        });
    }

    /// Run the world to idle, then return every fresh response as
    /// `(consumer, body)` pairs.
    pub fn run_and_drain(&mut self) -> Vec<(ConsumerId, ResponseBody)> {
        self.world.run_until_idle();
        let snapshot = self.world.snapshot_of(self.httpa).expect("httpa active");
        let state: crate::agents::HttpAgent =
            serde_json::from_value(snapshot).expect("httpa state parses");
        let all: Vec<FrontResponse> = state.responses().to_vec();
        let fresh: Vec<(ConsumerId, ResponseBody)> = all[self.responses_read.min(all.len())..]
            .iter()
            .map(|r| (r.consumer, r.body.clone()))
            .collect();
        self.responses_read = all.len();
        fresh
    }

    /// Seed the PA's UserDB offline with behaviour history (population
    /// bootstrap for experiments). Each tuple is one event.
    pub fn seed_events(&mut self, events: &[(ConsumerId, Merchandise, BehaviorKind)]) {
        for (consumer, item, kind) in events {
            let record = Message::new(msgkinds::PA_RECORD)
                .with_payload(&crate::agents::msg::PaRecord {
                    consumer: *consumer,
                    item: item.clone(),
                    kind: *kind,
                    price: None,
                    at_us: self.world.now().as_micros(),
                })
                .expect("record serializes");
            self.world
                .send_external(self.pa, record)
                .expect("pa reachable");
        }
        self.world.run_until_idle();
    }

    /// Snapshot of the PA (store + UserDB) for inspection.
    pub fn pa_state(&self) -> crate::agents::ProfileAgent {
        serde_json::from_value(self.world.snapshot_of(self.pa).expect("pa active"))
            .expect("pa state parses")
    }

    /// Snapshot of the BSMA for inspection.
    pub fn bsma_state(&self) -> Bsma {
        serde_json::from_value(self.world.snapshot_of(self.bsma).expect("bsma active"))
            .expect("bsma state parses")
    }
}

impl std::fmt::Debug for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Platform")
            .field("markets", &self.markets.len())
            .field("buyer_host", &self.buyer_host)
            .finish()
    }
}

/// Builder for a [`ShardedPlatform`].
///
/// Mirrors [`PlatformBuilder`] but partitions the buyer side of the
/// platform across `shards` parallel DES shards: the Coordinator,
/// Marketplaces and Seller Servers live on shard 0, and each shard runs
/// its own Buyer Agent Server (BSMA + HttpA + PA) provisioned through the
/// shard-0 Coordinator exactly as Fig 4.1 describes — for shards other
/// than 0 the BSMA's self-dispatch is a real cross-shard migration.
/// Consumers are routed to buyer servers by consistent hash of their id,
/// so a consumer's whole session stays on one shard while marketplace
/// traffic crosses the conservative time-window boundary.
#[derive(Debug)]
pub struct ShardedPlatformBuilder {
    seed: u64,
    shards: usize,
    topology: Topology,
    listings_per_market: Vec<Vec<Listing>>,
    learner: LearnerConfig,
    similarity: SimilarityConfig,
    collaborative_weight: f64,
    mba_timeout_us: u64,
    watch_retries: u32,
    bra_retry: BackoffPolicy,
    telemetry: bool,
    admission: Option<AdmissionConfig>,
    request_deadline_us: u64,
    breaker: Option<BreakerConfig>,
    mailbox: Option<MailboxConfig>,
    durability: Option<DurabilityConfig>,
    supervision: Option<SupervisionConfig>,
}

impl ShardedPlatformBuilder {
    /// Start building with a seed and shard count (clamped to at least 1);
    /// defaults match [`PlatformBuilder::new`].
    pub fn new(seed: u64, shards: usize) -> Self {
        ShardedPlatformBuilder {
            seed,
            shards: shards.max(1),
            topology: Topology::lan(),
            listings_per_market: vec![Vec::new()],
            learner: LearnerConfig::default(),
            similarity: SimilarityConfig::default(),
            collaborative_weight: 0.7,
            mba_timeout_us: 600_000_000,
            watch_retries: 1,
            bra_retry: BackoffPolicy::default(),
            telemetry: false,
            admission: None,
            request_deadline_us: 0,
            breaker: None,
            mailbox: None,
            durability: None,
            supervision: None,
        }
    }

    /// Use an explicit topology (applied to every shard).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// One entry per marketplace: the listings its seller provides.
    pub fn marketplaces(mut self, listings_per_market: Vec<Vec<Listing>>) -> Self {
        self.listings_per_market = listings_per_market;
        self
    }

    /// Profile learner configuration.
    pub fn learner(mut self, learner: LearnerConfig) -> Self {
        self.learner = learner;
        self
    }

    /// Similarity configuration.
    pub fn similarity(mut self, similarity: SimilarityConfig) -> Self {
        self.similarity = similarity;
        self
    }

    /// Hybrid collaborative weight (ablation knob).
    pub fn collaborative_weight(mut self, w: f64) -> Self {
        self.collaborative_weight = w;
        self
    }

    /// MBA loss timeout in simulated microseconds.
    pub fn mba_timeout_us(mut self, us: u64) -> Self {
        self.mba_timeout_us = us;
        self
    }

    /// Grace periods the BSMA watchdog grants an overdue MBA.
    pub fn watch_retries(mut self, retries: u32) -> Self {
        self.watch_retries = retries;
        self
    }

    /// Backoff schedule BRAs use to re-dispatch a lost MBA.
    pub fn bra_retry(mut self, policy: BackoffPolicy) -> Self {
        self.bra_retry = policy;
        self
    }

    /// Enable token-bucket admission control at every shard's HttpA.
    pub fn admission(mut self, config: AdmissionConfig) -> Self {
        self.admission = Some(config);
        self
    }

    /// Mint an end-to-end deadline for every admitted task.
    pub fn request_deadline_us(mut self, us: u64) -> Self {
        self.request_deadline_us = us;
        self
    }

    /// Guard each marketplace with a circuit breaker fed by MBA trip
    /// reports (each shard's BSMA keeps its own breaker state).
    pub fn breaker(mut self, config: BreakerConfig) -> Self {
        self.breaker = Some(config);
        self
    }

    /// Bound every agent mailbox on every shard (applied after the
    /// creation workflow so provisioning traffic is never shed).
    pub fn mailbox(mut self, config: MailboxConfig) -> Self {
        self.mailbox = Some(config);
        self
    }

    /// Turn on end-to-end request tracing and the latency registry.
    pub fn telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Give every host on every shard a WAL-backed durable store and
    /// switch each shard's buyer-side agents to durable operation. See
    /// [`PlatformBuilder::durability`].
    pub fn durability(mut self, config: DurabilityConfig) -> Self {
        self.durability = Some(config);
        self
    }

    /// Arm self-healing supervision on every shard. See
    /// [`PlatformBuilder::supervision`].
    pub fn supervision(mut self, config: SupervisionConfig) -> Self {
        self.supervision = Some(config);
        self
    }

    /// Assemble the sharded world and run the Fig 4.1 creation workflow
    /// once per shard.
    pub fn build(self) -> ShardedPlatform {
        let shards = self.shards;
        let mut world = ShardedSimWorld::new(self.seed, shards);
        for k in 0..shards {
            *world.shard_mut(k).topology_mut() = self.topology.clone();
        }
        if let Some(cfg) = self.durability {
            world.enable_durability(cfg);
        }
        if let Some(cfg) = self.supervision {
            world.enable_supervision(cfg);
        }
        if self.telemetry {
            world.enable_telemetry();
        }
        for k in 0..shards {
            register_all(world.shard_mut(k).registry_mut());
        }

        // Coordinator Server with its CA — shard 0 owns the market side.
        let coordinator_host = world.add_host(0, "coordinator-server");
        let coordinator = world
            .create_agent(coordinator_host, Box::new(CoordinatorAgent::new()))
            .expect("create coordinator");

        // Marketplaces + their seller servers, all on shard 0.
        let mut markets = Vec::new();
        for (i, listings) in self.listings_per_market.iter().enumerate() {
            let market_host = world.add_host(0, format!("marketplace-{i}"));
            let market_agent = world
                .create_agent(
                    market_host,
                    Box::new(MarketplaceAgent::new(format!("m{i}"))),
                )
                .expect("create marketplace");
            markets.push(MarketRef {
                host: market_host,
                agent: market_agent,
            });
            let reg = Message::new(ecpk::REGISTER_SERVER)
                .with_payload(&RegisterServer {
                    role: ServerRole::Marketplace,
                    host: market_host,
                    agent: market_agent,
                    name: format!("m{i}"),
                })
                .expect("register serializes");
            world
                .send_external(coordinator, reg)
                .expect("register marketplace");
            let seller_host = world.add_host(0, format!("seller-{i}"));
            world
                .create_agent(
                    seller_host,
                    Box::new(SellerAgent::new(
                        i as u32 + 1,
                        format!("seller-{i}"),
                        listings.clone(),
                        vec![market_agent],
                    )),
                )
                .expect("create seller");
        }
        world.run_until_idle();

        // One Buyer Agent Server per shard, each provisioned through the
        // shard-0 Coordinator (Fig 4.1 steps 1-6). For k > 0 the BSMA's
        // step-3 self-dispatch crosses the shard boundary. The 1-shard
        // host name matches [`PlatformBuilder::build`] exactly so the
        // single-shard trace is byte-identical to the unsharded one.
        let mut buyer_hosts = Vec::new();
        for k in 0..shards {
            let name = if shards == 1 {
                "buyer-agent-server".to_string()
            } else {
                format!("buyer-agent-server-{k}")
            };
            let buyer_host = world.add_host(k, name.clone());
            buyer_hosts.push(buyer_host);
            let config = BsmaConfig {
                target: buyer_host,
                coordinator,
                markets: markets.clone(),
                name,
                learner: self.learner,
                similarity: self.similarity.with_ann_seed(self.seed),
                mba_timeout_us: self.mba_timeout_us,
                collaborative_weight: self.collaborative_weight,
                watch_retries: self.watch_retries,
                bra_retry: self.bra_retry,
                admission: self.admission,
                request_deadline_us: self.request_deadline_us,
                breaker: self.breaker,
                durable: self.durability.is_some(),
            };
            let request = Message::new(ecpk::REQUEST_BUYER_SERVER)
                .with_payload(&RequestBuyerServer {
                    host: buyer_host,
                    bsma_type: crate::agents::BSMA_TYPE.to_string(),
                    config: serde_json::json!({ "config": config }),
                })
                .expect("request serializes");
            world
                .send_external(coordinator, request)
                .expect("request buyer server");
        }
        world.run_until_idle();

        // Locate each shard's BSMA (it migrated to that shard's buyer
        // host) and its children.
        let mut stacks = Vec::new();
        for (k, &buyer_host) in buyer_hosts.iter().enumerate() {
            let shard = world.shard(k);
            let mut found = None;
            for id in shard.agents_on(buyer_host) {
                if let Ok(snapshot) = shard.snapshot_of(id) {
                    if let Ok(state) = serde_json::from_value::<Bsma>(snapshot) {
                        if state.is_ready() {
                            found = Some((id, state));
                            break;
                        }
                    }
                }
            }
            let (bsma, state) = found.expect("bsma reached its shard's buyer host and set up");
            stacks.push(BuyerStack {
                buyer_host,
                bsma,
                httpa: state.httpa().expect("httpa created"),
                pa: state.pa().expect("pa created"),
                responses_read: 0,
            });
        }

        // Bound mailboxes only once the platform stands: provisioning
        // traffic must never be shed.
        if let Some(mailbox) = self.mailbox {
            world.set_mailbox(mailbox);
        }

        ShardedPlatform {
            world,
            coordinator,
            markets,
            stacks,
        }
    }
}

/// One shard's buyer-side stack (Buyer Agent Server host, BSMA, HttpA,
/// PA) plus its front-door response cursor.
#[derive(Debug, Clone, Copy)]
struct BuyerStack {
    buyer_host: HostId,
    bsma: AgentId,
    httpa: AgentId,
    pa: AgentId,
    responses_read: usize,
}

/// A platform whose buyer side is partitioned across parallel DES shards.
///
/// Shard 0 hosts the Coordinator, Marketplaces and Seller Servers; every
/// shard runs a full Buyer Agent Server. Consumers hash onto shards by
/// id, and the same browser-level operations as [`Platform`] are exposed
/// — each call routes to the owning shard's HttpA.
pub struct ShardedPlatform {
    world: ShardedSimWorld,
    coordinator: AgentId,
    markets: Vec<MarketRef>,
    stacks: Vec<BuyerStack>,
}

impl ShardedPlatform {
    /// Start building a sharded platform.
    pub fn builder(seed: u64, shards: usize) -> ShardedPlatformBuilder {
        ShardedPlatformBuilder::new(seed, shards)
    }

    /// Number of shards (== number of Buyer Agent Servers).
    pub fn shard_count(&self) -> usize {
        self.stacks.len()
    }

    /// The shard that owns `consumer`'s session.
    pub fn shard_of(&self, consumer: ConsumerId) -> usize {
        agentsim::ids::shard_of(AgentId(consumer.0), self.stacks.len())
    }

    /// The underlying sharded world (merged trace, metrics, clock).
    pub fn world(&self) -> &ShardedSimWorld {
        &self.world
    }

    /// Mutable world access (per-shard topology changes, manual messages).
    pub fn world_mut(&mut self) -> &mut ShardedSimWorld {
        &mut self.world
    }

    /// Counters merged across every shard.
    pub fn metrics(&self) -> agentsim::metrics::Metrics {
        self.world.metrics()
    }

    /// Install a [`ChaosPlan`] on every shard.
    pub fn install_chaos(&mut self, plan: &ChaosPlan) {
        self.world.install_chaos(plan);
    }

    /// Marketplace references, in creation order (all on shard 0).
    pub fn markets(&self) -> &[MarketRef] {
        &self.markets
    }

    /// The Coordinator Agent's id.
    pub fn coordinator(&self) -> AgentId {
        self.coordinator
    }

    /// Shard `k`'s Buyer Agent Server host.
    pub fn buyer_host(&self, k: usize) -> HostId {
        self.stacks[k].buyer_host
    }

    /// Shard `k`'s BSMA agent id.
    pub fn bsma(&self, k: usize) -> AgentId {
        self.stacks[k].bsma
    }

    fn send_front(&mut self, request: FrontRequest) {
        let shard = self.shard_of(request.consumer);
        let msg = Message::new(msgkinds::FRONT_REQUEST)
            .with_payload(&request)
            .expect("front request serializes");
        self.world
            .send_external(self.stacks[shard].httpa, msg)
            .expect("httpa reachable");
    }

    /// Drain responses addressed to `consumer` that arrived at its
    /// shard's HttpA since the last call.
    fn drain_responses(&mut self, consumer: ConsumerId) -> Vec<ResponseBody> {
        let shard = self.shard_of(consumer);
        let stack = &mut self.stacks[shard];
        let snapshot = self
            .world
            .shard(shard)
            .snapshot_of(stack.httpa)
            .expect("httpa active");
        let state: crate::agents::HttpAgent =
            serde_json::from_value(snapshot).expect("httpa state parses");
        let all: Vec<FrontResponse> = state.responses().to_vec();
        let fresh: Vec<ResponseBody> = all[stack.responses_read.min(all.len())..]
            .iter()
            .filter(|r| r.consumer == consumer)
            .map(|r| r.body.clone())
            .collect();
        stack.responses_read = all.len();
        fresh
    }

    fn run_task(&mut self, consumer: ConsumerId, body: FrontRequestBody) -> Vec<ResponseBody> {
        self.send_front(FrontRequest { consumer, body });
        self.world.run_until_idle();
        self.drain_responses(consumer)
    }

    /// Log `consumer` in (creates their BRA on their shard).
    pub fn login(&mut self, consumer: ConsumerId) -> Vec<ResponseBody> {
        self.run_task(consumer, FrontRequestBody::Login)
    }

    /// Log `consumer` out (disposes their BRA).
    pub fn logout(&mut self, consumer: ConsumerId) -> Vec<ResponseBody> {
        self.run_task(consumer, FrontRequestBody::Logout)
    }

    /// Run the Fig 4.2 merchandise-query workflow on `consumer`'s shard;
    /// its MBA migrates to the shard-0 marketplaces and back.
    pub fn query(
        &mut self,
        consumer: ConsumerId,
        keywords: &[&str],
        max_results: usize,
    ) -> Vec<ResponseBody> {
        self.run_task(
            consumer,
            FrontRequestBody::Task(ConsumerTask::Query {
                keywords: keywords.iter().map(|s| s.to_string()).collect(),
                category: None,
                max_results,
            }),
        )
    }

    /// Run the Fig 4.3 buy workflow against marketplace `market_index`.
    pub fn buy(
        &mut self,
        consumer: ConsumerId,
        item: ItemId,
        market_index: usize,
        mode: BuyMode,
    ) -> Vec<ResponseBody> {
        let market = self.markets[market_index];
        self.run_task(
            consumer,
            FrontRequestBody::Task(ConsumerTask::Buy { item, market, mode }),
        )
    }

    /// Submit a task without running the world — use with
    /// [`ShardedPlatform::run_and_drain`] to let many consumers' tasks
    /// overlap in time across shards.
    pub fn submit_task(&mut self, consumer: ConsumerId, task: ConsumerTask) {
        self.send_front(FrontRequest {
            consumer,
            body: FrontRequestBody::Task(task),
        });
    }

    /// Run the world to idle, then return every fresh response from
    /// every shard's HttpA as `(consumer, body)` pairs, in shard order.
    pub fn run_and_drain(&mut self) -> Vec<(ConsumerId, ResponseBody)> {
        self.world.run_until_idle();
        let mut out = Vec::new();
        for (k, stack) in self.stacks.iter_mut().enumerate() {
            let snapshot = self
                .world
                .shard(k)
                .snapshot_of(stack.httpa)
                .expect("httpa active");
            let state: crate::agents::HttpAgent =
                serde_json::from_value(snapshot).expect("httpa state parses");
            let all: Vec<FrontResponse> = state.responses().to_vec();
            out.extend(
                all[stack.responses_read.min(all.len())..]
                    .iter()
                    .map(|r| (r.consumer, r.body.clone())),
            );
            stack.responses_read = all.len();
        }
        out
    }

    /// Snapshot of shard `k`'s BSMA for inspection.
    pub fn bsma_state(&self, k: usize) -> Bsma {
        serde_json::from_value(
            self.world
                .shard(k)
                .snapshot_of(self.stacks[k].bsma)
                .expect("bsma active"),
        )
        .expect("bsma state parses")
    }

    /// Snapshot of shard `k`'s PA (store + UserDB) for inspection.
    pub fn pa_state(&self, k: usize) -> crate::agents::ProfileAgent {
        serde_json::from_value(
            self.world
                .shard(k)
                .snapshot_of(self.stacks[k].pa)
                .expect("pa active"),
        )
        .expect("pa state parses")
    }
}

impl std::fmt::Debug for ShardedPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedPlatform")
            .field("shards", &self.stacks.len())
            .field("markets", &self.markets.len())
            .finish()
    }
}

/// Convenience: build a listing.
pub fn listing(
    id: u64,
    name: &str,
    category: &str,
    sub: &str,
    price_units: u64,
    terms: &[(&str, f64)],
) -> Listing {
    let mut tv = ecp::terms::TermVector::from_pairs(terms.iter().map(|(t, w)| (t.to_string(), *w)));
    tv.add(name.to_lowercase(), 1.0);
    Listing {
        item: Merchandise {
            id: ItemId(id),
            name: name.into(),
            category: ecp::merchandise::CategoryPath::new(category, sub),
            terms: tv,
            list_price: Money::from_units(price_units),
            seller: 0,
        },
        reservation: Money::from_units(price_units * 7 / 10),
        concession: 0.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow;

    fn small_platform(seed: u64) -> Platform {
        Platform::builder(seed)
            .marketplaces(vec![
                vec![
                    listing(1, "Rust Book", "books", "programming", 30, &[("rust", 1.0)]),
                    listing(2, "Go Book", "books", "programming", 25, &[("go", 1.0)]),
                ],
                vec![listing(
                    11,
                    "Jazz Record",
                    "music",
                    "jazz",
                    15,
                    &[("jazz", 1.0)],
                )],
            ])
            .build()
    }

    #[test]
    fn creation_workflow_matches_fig_4_1() {
        let p = small_platform(1);
        workflow::validate(p.world().trace(), workflow::FIG_CREATION)
            .expect("fig 4.1 trace must be complete and ordered");
        let state = p.bsma_state();
        assert!(state.is_ready());
        assert_eq!(state.config.markets.len(), 2);
    }

    #[test]
    fn login_creates_bra_and_logout_disposes_it() {
        let mut p = small_platform(2);
        let responses = p.login(ConsumerId(1));
        assert_eq!(responses, vec![ResponseBody::LoggedIn]);
        assert_eq!(p.bsma_state().sessions().len(), 1);
        let responses = p.logout(ConsumerId(1));
        assert_eq!(responses, vec![ResponseBody::LoggedOut]);
        assert_eq!(p.bsma_state().sessions().len(), 0);
    }

    #[test]
    fn query_without_login_is_an_error() {
        let mut p = small_platform(3);
        let responses = p.query(ConsumerId(1), &["rust"], 5);
        assert!(matches!(&responses[0], ResponseBody::Error(e) if e.contains("not logged in")));
    }

    #[test]
    fn query_workflow_matches_fig_4_2_and_returns_offers() {
        let mut p = small_platform(4);
        p.login(ConsumerId(1));
        let responses = p.query(ConsumerId(1), &["book"], 5);
        assert_eq!(responses.len(), 1);
        match &responses[0] {
            ResponseBody::Recommendations {
                offers,
                recommendations,
                degraded,
                unreachable_markets,
            } => {
                assert_eq!(offers.len(), 2, "both books match, jazz does not");
                assert!(!recommendations.is_empty());
                assert!(!degraded, "clean run is never degraded");
                assert!(unreachable_markets.is_empty());
            }
            other => panic!("expected recommendations, got {other:?}"),
        }
        workflow::validate(p.world().trace(), workflow::FIG_QUERY)
            .expect("fig 4.2 trace must be complete and ordered");
    }

    #[test]
    fn buy_workflow_matches_fig_4_3_and_updates_profile() {
        let mut p = small_platform(5);
        p.login(ConsumerId(1));
        let responses = p.buy(ConsumerId(1), ItemId(1), 0, BuyMode::Direct);
        match &responses[0] {
            ResponseBody::Receipt {
                item,
                price,
                channel,
            } => {
                assert_eq!(item.id, ItemId(1));
                assert_eq!(*price, Money::from_units(30));
                assert_eq!(channel, "direct");
            }
            other => panic!("expected receipt, got {other:?}"),
        }
        workflow::validate(p.world().trace(), workflow::FIG_TRANSACT)
            .expect("fig 4.3 trace must be complete and ordered");
        // the PA recorded the purchase and persisted the profile
        let pa = p.pa_state();
        assert!(pa.store().profile(ConsumerId(1)).unwrap().total_interest() > 0.0);
        assert_eq!(pa.userdb().transaction_count(), 1);
    }

    #[test]
    fn negotiated_buy_closes_within_budget() {
        let mut p = small_platform(6);
        p.login(ConsumerId(1));
        let responses = p.buy(
            ConsumerId(1),
            ItemId(1),
            0,
            BuyMode::Negotiate {
                budget: Money::from_units(28),
                opening_fraction: 0.6,
                raise: 0.1,
                max_rounds: 20,
            },
        );
        match &responses[0] {
            ResponseBody::Receipt { price, channel, .. } => {
                assert!(*price <= Money::from_units(28));
                assert!(channel.contains("negotiated"));
            }
            other => panic!("expected receipt, got {other:?}"),
        }
    }

    #[test]
    fn auction_workflow_reports_result() {
        let mut p = small_platform(7);
        p.login(ConsumerId(1));
        p.open_auction(
            0,
            ItemId(2),
            Money::from_units(5),
            Money::from_units(1),
            SimDuration::from_secs(30),
        );
        let responses = p.auction(ConsumerId(1), ItemId(2), 0, Money::from_units(40));
        match &responses[0] {
            ResponseBody::AuctionResult { won, price, .. } => {
                assert!(won);
                assert_eq!(*price, Some(Money::from_units(5)));
            }
            other => panic!("expected auction result, got {other:?}"),
        }
        workflow::validate(p.world().trace(), workflow::FIG_TRANSACT)
            .expect("fig 4.3 trace for auctions");
    }

    #[test]
    fn bra_is_deactivated_while_mba_roams() {
        let mut p = small_platform(8);
        p.login(ConsumerId(1));
        // run the query only partway: the MBA is out, the BRA must be
        // in stable storage
        p.send_front(FrontRequest {
            consumer: ConsumerId(1),
            body: FrontRequestBody::Task(ConsumerTask::Query {
                keywords: vec!["book".into()],
                category: None,
                max_results: 5,
            }),
        });
        // enough time for dispatch + deactivation (~6us of local hops)
        // but well under the ~200us LAN migration to the marketplace
        p.world_mut().run_for(SimDuration::from_micros(100));
        assert!(
            p.world().stored_count(p.buyer_host()) >= 1,
            "the BRA must be deactivated to storage while its MBA roams"
        );
        assert!(p.world().stored_bytes(p.buyer_host()) > 0);
        p.world_mut().run_until_idle();
        // afterwards the BRA is live again and produced a response
        let got = p.drain_responses(ConsumerId(1));
        assert!(got
            .iter()
            .any(|r| matches!(r, ResponseBody::Recommendations { .. })));
        assert_eq!(p.world().metrics().deactivations, 1);
        assert_eq!(p.world().metrics().activations, 1);
    }

    #[test]
    fn lost_mba_retries_then_degrades_to_cf_only() {
        let mut p = Platform::builder(9)
            .marketplaces(vec![vec![listing(
                1,
                "Rust Book",
                "books",
                "programming",
                30,
                &[("rust", 1.0)],
            )]])
            .mba_timeout_us(2_000_000)
            .build();
        p.login(ConsumerId(1));
        // kill the link so every MBA dies in transit
        let market_host = p.markets()[0].host;
        let buyer_host = p.buyer_host();
        p.world_mut().topology_mut().set_link_symmetric(
            buyer_host,
            market_host,
            agentsim::net::LinkSpec::lan().lossy(1.0),
        );
        let responses = p.query(ConsumerId(1), &["rust"], 5);
        match &responses[0] {
            ResponseBody::Recommendations {
                offers,
                degraded,
                unreachable_markets,
                ..
            } => {
                assert!(offers.is_empty(), "nothing was collected");
                assert!(degraded, "total loss must degrade the reply");
                assert_eq!(unreachable_markets.len(), 1);
            }
            other => panic!("expected degraded recommendations, got {other:?}"),
        }
        let m = p.world().metrics().clone();
        assert!(m.retries >= 1, "the bra must have retried: {m:?}");
        assert_eq!(m.degraded_replies, 1);
        // the BRA is active again and can serve new tasks after healing
        p.world_mut().topology_mut().set_link_symmetric(
            buyer_host,
            market_host,
            agentsim::net::LinkSpec::lan(),
        );
        let responses = p.query(ConsumerId(1), &["rust"], 5);
        assert!(matches!(
            &responses[0],
            ResponseBody::Recommendations {
                degraded: false,
                ..
            }
        ));
    }

    #[test]
    fn lost_buy_mba_still_fails_with_an_error() {
        // a query degrades, but a buy whose MBA vanished must NOT be
        // blindly retried into a double purchase — it errors out
        let mut p = Platform::builder(19)
            .marketplaces(vec![vec![listing(
                1,
                "Rust Book",
                "books",
                "programming",
                30,
                &[("rust", 1.0)],
            )]])
            .mba_timeout_us(2_000_000)
            .bra_retry(BackoffPolicy::none())
            .build();
        p.login(ConsumerId(1));
        let market_host = p.markets()[0].host;
        let buyer_host = p.buyer_host();
        p.world_mut().topology_mut().set_link_symmetric(
            buyer_host,
            market_host,
            agentsim::net::LinkSpec::lan().lossy(1.0),
        );
        let responses = p.buy(ConsumerId(1), ItemId(1), 0, BuyMode::Direct);
        assert!(
            matches!(&responses[0], ResponseBody::Error(e) if e.contains("lost")),
            "lost buy must error: {responses:?}"
        );
    }

    fn small_sharded_platform(seed: u64, shards: usize) -> ShardedPlatform {
        ShardedPlatform::builder(seed, shards)
            .marketplaces(vec![
                vec![
                    listing(1, "Rust Book", "books", "programming", 30, &[("rust", 1.0)]),
                    listing(2, "Go Book", "books", "programming", 25, &[("go", 1.0)]),
                ],
                vec![listing(
                    11,
                    "Jazz Record",
                    "music",
                    "jazz",
                    15,
                    &[("jazz", 1.0)],
                )],
            ])
            .build()
    }

    /// One consumer id per shard, found by walking the hash.
    fn consumer_on_each_shard(p: &ShardedPlatform) -> Vec<ConsumerId> {
        let mut picks: Vec<Option<ConsumerId>> = vec![None; p.shard_count()];
        for c in 1..10_000u64 {
            let shard = p.shard_of(ConsumerId(c));
            if picks[shard].is_none() {
                picks[shard] = Some(ConsumerId(c));
            }
            if picks.iter().all(Option::is_some) {
                break;
            }
        }
        picks
            .into_iter()
            .map(|c| c.expect("hash covers shard"))
            .collect()
    }

    #[test]
    fn sharded_platform_serves_consumers_on_every_shard() {
        let mut p = small_sharded_platform(21, 2);
        assert_eq!(p.shard_count(), 2);
        let consumers = consumer_on_each_shard(&p);
        for &consumer in &consumers {
            assert_eq!(p.login(consumer), vec![ResponseBody::LoggedIn]);
            let responses = p.query(consumer, &["book"], 5);
            match &responses[0] {
                ResponseBody::Recommendations {
                    offers, degraded, ..
                } => {
                    assert_eq!(offers.len(), 2, "both books match for {consumer:?}");
                    assert!(!degraded);
                }
                other => panic!("expected recommendations, got {other:?}"),
            }
        }
        // the shard-1 consumer's MBA crossed the boundary to the shard-0
        // marketplaces and returned; the shard-1 BSMA itself arrived over
        // the boundary at build time
        let m = p.metrics();
        assert!(m.boundary_migrations >= 3, "bsma + mba round trip: {m:?}");
        assert!(
            m.boundary_messages >= 1,
            "provisioning crossed shards: {m:?}"
        );
        assert_eq!(m.migrations_rejected, 0);
        // buys settle on the right shard and record into that shard's PA
        let far = consumers[1];
        let responses = p.buy(far, ItemId(1), 0, BuyMode::Direct);
        assert!(
            matches!(&responses[0], ResponseBody::Receipt { .. }),
            "cross-shard buy must settle: {responses:?}"
        );
        assert_eq!(p.pa_state(1).userdb().transaction_count(), 1);
        assert_eq!(p.pa_state(0).userdb().transaction_count(), 0);
    }

    #[test]
    fn one_shard_platform_is_byte_identical_to_unsharded() {
        let mut flat = small_platform(22);
        let mut sharded = ShardedPlatform::builder(22, 1)
            .marketplaces(vec![
                vec![
                    listing(1, "Rust Book", "books", "programming", 30, &[("rust", 1.0)]),
                    listing(2, "Go Book", "books", "programming", 25, &[("go", 1.0)]),
                ],
                vec![listing(
                    11,
                    "Jazz Record",
                    "music",
                    "jazz",
                    15,
                    &[("jazz", 1.0)],
                )],
            ])
            .build();
        for consumer in [ConsumerId(1), ConsumerId(2)] {
            let a = flat.login(consumer);
            let b = sharded.login(consumer);
            assert_eq!(a, b);
            let a = flat.query(consumer, &["book"], 5);
            let b = sharded.query(consumer, &["book"], 5);
            assert_eq!(a, b);
        }
        let flat_labels: Vec<String> = flat
            .world()
            .trace()
            .labels()
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flat_labels, sharded.world().trace_labels());
        assert_eq!(flat.world().metrics(), &sharded.metrics());
        assert_eq!(sharded.metrics().boundary_messages, 0);
    }

    #[test]
    fn recommendations_reflect_similar_users() {
        let mut p = small_platform(10);
        // seed: consumers 2 and 3 share user 1's taste and also bought
        // the go book
        let rust = listing(1, "Rust Book", "books", "programming", 30, &[("rust", 1.0)]).item;
        let go = listing(2, "Go Book", "books", "programming", 25, &[("go", 1.0)]).item;
        let mut events = Vec::new();
        for c in [2u64, 3] {
            events.push((ConsumerId(c), rust.clone(), BehaviorKind::Purchase));
            events.push((ConsumerId(c), go.clone(), BehaviorKind::Purchase));
        }
        events.push((ConsumerId(1), rust, BehaviorKind::Purchase));
        p.seed_events(&events);
        p.login(ConsumerId(1));
        let responses = p.query(ConsumerId(1), &["book"], 5);
        match &responses[0] {
            ResponseBody::Recommendations {
                recommendations, ..
            } => {
                assert!(
                    recommendations.iter().any(|r| r.item.id == ItemId(2)),
                    "neighbours' go book must be recommended: {recommendations:?}"
                );
                // and the already-purchased rust book is not re-recommended
                // at the top via collaborative weight alone
                assert_eq!(recommendations[0].item.id, ItemId(2));
            }
            other => panic!("expected recommendations, got {other:?}"),
        }
    }
}
