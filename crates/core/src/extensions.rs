//! Future-work features (paper §5.2), implemented.
//!
//! The paper lists four improvement directions; three are recommendation
//! features built here (the fourth — hardened MBA return authentication —
//! lives in [`agentsim::security`]):
//!
//! 2. *"Provide the more kinds of recommendation information such as
//!    weekly hottest merchandise, and tied-sale information"* —
//!    [`WeeklyHottest`] and [`TiedSale`];
//! 3. *"Increase the scope of recommendation mechanism. And apply the
//!    interaction of consumer community"* — [`CommunityGraph`].

use crate::profile::ConsumerId;
use crate::similarity::{profile_similarity, SimilarityConfig};
use crate::store::RecommendStore;
use ecp::merchandise::ItemId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Sliding-window sales ranking: "weekly hottest merchandise".
///
/// Time is whatever unit the caller feeds (`tick` per sale event); the
/// window covers the most recent `window` ticks.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WeeklyHottest {
    events: Vec<(u64, u64)>, // (tick, item)
}

impl WeeklyHottest {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a sale of `item` at `tick`. Ticks must be non-decreasing.
    pub fn record_sale(&mut self, tick: u64, item: ItemId) {
        self.events.push((tick, item.0));
    }

    /// Hottest items within `(now - window, now]`, as `(item, sales)`,
    /// hottest first, at most `k`.
    pub fn hottest(&self, now: u64, window: u64, k: usize) -> Vec<(ItemId, u32)> {
        let floor = now.saturating_sub(window);
        let mut counts: BTreeMap<u64, u32> = BTreeMap::new();
        for (tick, item) in &self.events {
            if *tick > floor && *tick <= now {
                *counts.entry(*item).or_insert(0) += 1;
            }
        }
        let mut ranked: Vec<(ItemId, u32)> =
            counts.into_iter().map(|(i, n)| (ItemId(i), n)).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// Drop events at or before `floor` (keeps memory bounded).
    pub fn prune(&mut self, floor: u64) {
        self.events.retain(|(tick, _)| *tick > floor);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Tied-sale (co-purchase) association miner: "customers who bought X
/// also bought Y", from the checkout baskets recorded in the store.
#[derive(Debug, Clone, Default)]
pub struct TiedSale {
    /// Minimum number of co-occurrences for a pair to be reported.
    pub min_support: u32,
}

impl TiedSale {
    /// Miner with the given support threshold.
    pub fn new(min_support: u32) -> Self {
        TiedSale { min_support }
    }

    /// Items most often bought together with `item`, as
    /// `(other, co-occurrences)`, strongest first, at most `k`.
    pub fn companions(&self, store: &RecommendStore, item: ItemId, k: usize) -> Vec<(ItemId, u32)> {
        let mut counts: BTreeMap<u64, u32> = BTreeMap::new();
        for basket in store.baskets() {
            if basket.contains(&item) {
                for other in basket {
                    if other != item {
                        *counts.entry(other.0).or_insert(0) += 1;
                    }
                }
            }
        }
        let mut ranked: Vec<(ItemId, u32)> = counts
            .into_iter()
            .filter(|(_, n)| *n >= self.min_support)
            .map(|(i, n)| (ItemId(i), n))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// Bundle suggestion for a cart: companions of every cart item,
    /// merged, excluding the cart itself.
    pub fn bundle_for_cart(
        &self,
        store: &RecommendStore,
        cart: &[ItemId],
        k: usize,
    ) -> Vec<(ItemId, u32)> {
        let mut merged: BTreeMap<u64, u32> = BTreeMap::new();
        for item in cart {
            for (other, n) in self.companions(store, *item, usize::MAX) {
                if !cart.contains(&other) {
                    *merged.entry(other.0).or_insert(0) += n;
                }
            }
        }
        let mut ranked: Vec<(ItemId, u32)> =
            merged.into_iter().map(|(i, n)| (ItemId(i), n)).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }
}

/// Consumer community graph: who is similar to whom, built from profile
/// similarity. §2.3: *"if web site creates relationships between
/// customers can also increase loyalty."*
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CommunityGraph {
    edges: BTreeMap<u64, Vec<(u64, f64)>>,
}

impl CommunityGraph {
    /// Build the graph: an edge between every pair with similarity above
    /// `min_similarity`.
    pub fn build(store: &RecommendStore, config: &SimilarityConfig, min_similarity: f64) -> Self {
        let profiles: Vec<(ConsumerId, &crate::profile::Profile)> = store.profiles().collect();
        let mut edges: BTreeMap<u64, Vec<(u64, f64)>> = BTreeMap::new();
        for i in 0..profiles.len() {
            for j in (i + 1)..profiles.len() {
                let (a, pa) = profiles[i];
                let (b, pb) = profiles[j];
                let sim = profile_similarity(pa, pb, config);
                if sim >= min_similarity && sim > 0.0 {
                    edges.entry(a.0).or_default().push((b.0, sim));
                    edges.entry(b.0).or_default().push((a.0, sim));
                }
            }
        }
        for list in edges.values_mut() {
            list.sort_by(|x, y| {
                y.1.partial_cmp(&x.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(x.0.cmp(&y.0))
            });
        }
        CommunityGraph { edges }
    }

    /// Similar consumers of `consumer`, best first.
    pub fn neighbours(&self, consumer: ConsumerId) -> Vec<(ConsumerId, f64)> {
        self.edges
            .get(&consumer.0)
            .map(|l| l.iter().map(|(c, s)| (ConsumerId(*c), *s)).collect())
            .unwrap_or_default()
    }

    /// Connected communities (undirected components), each sorted, largest
    /// first.
    pub fn communities(&self) -> Vec<Vec<ConsumerId>> {
        let mut seen: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        let mut out: Vec<Vec<ConsumerId>> = Vec::new();
        for &start in self.edges.keys() {
            if seen.contains(&start) {
                continue;
            }
            let mut stack = vec![start];
            let mut component = Vec::new();
            while let Some(node) = stack.pop() {
                if !seen.insert(node) {
                    continue;
                }
                component.push(ConsumerId(node));
                if let Some(neigh) = self.edges.get(&node) {
                    stack.extend(neigh.iter().map(|(n, _)| *n));
                }
            }
            component.sort();
            out.push(component);
        }
        out.sort_by(|a, b| b.len().cmp(&a.len()).then(a.first().cmp(&b.first())));
        out
    }

    /// Number of consumers with at least one edge.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learning::BehaviorKind;
    use ecp::merchandise::{CategoryPath, Merchandise, Money};
    use ecp::terms::TermVector;

    fn merch(id: u64, name: &str, cat: &str) -> Merchandise {
        Merchandise {
            id: ItemId(id),
            name: name.into(),
            category: CategoryPath::new(cat, "general"),
            terms: TermVector::from_pairs([(name.to_lowercase(), 1.0)]),
            list_price: Money::from_units(10),
            seller: 1,
        }
    }

    #[test]
    fn weekly_hottest_respects_the_window() {
        let mut h = WeeklyHottest::new();
        // old sales of item 1, recent sales of item 2
        for t in 1..=5 {
            h.record_sale(t, ItemId(1));
        }
        for t in 100..103 {
            h.record_sale(t, ItemId(2));
        }
        h.record_sale(101, ItemId(1));
        let hot = h.hottest(103, 10, 5);
        assert_eq!(hot[0], (ItemId(2), 3));
        assert_eq!(hot[1], (ItemId(1), 1), "only the in-window sale counts");
        // full-history window sees everything
        let all = h.hottest(103, 1000, 5);
        assert_eq!(all[0], (ItemId(1), 6));
    }

    #[test]
    fn weekly_hottest_prune_drops_old_events() {
        let mut h = WeeklyHottest::new();
        h.record_sale(1, ItemId(1));
        h.record_sale(50, ItemId(2));
        h.prune(10);
        assert_eq!(h.len(), 1);
        assert!(h.hottest(50, 100, 5).iter().all(|(i, _)| *i == ItemId(2)));
    }

    fn basket_store() -> RecommendStore {
        let mut s = RecommendStore::new();
        for id in 1..=5 {
            s.upsert_item(merch(id, &format!("item{id}"), "books"));
        }
        // camera (1) + memory card (2) bought together often
        for u in 1..=4u64 {
            s.record_basket(ConsumerId(u), &[ItemId(1), ItemId(2)]);
        }
        s.record_basket(ConsumerId(5), &[ItemId(1), ItemId(3)]);
        s
    }

    #[test]
    fn tied_sale_finds_frequent_companions() {
        let s = basket_store();
        let miner = TiedSale::new(2);
        let comp = miner.companions(&s, ItemId(1), 5);
        assert_eq!(comp, vec![(ItemId(2), 4)], "item 3 is below support 2");
        let lax = TiedSale::new(1);
        let comp = lax.companions(&s, ItemId(1), 5);
        assert_eq!(comp.len(), 2);
    }

    #[test]
    fn tied_sale_bundle_excludes_cart_items() {
        let s = basket_store();
        let miner = TiedSale::new(1);
        let bundle = miner.bundle_for_cart(&s, &[ItemId(1), ItemId(3)], 5);
        assert!(bundle
            .iter()
            .all(|(i, _)| *i != ItemId(1) && *i != ItemId(3)));
        assert_eq!(bundle[0].0, ItemId(2));
    }

    fn community_store() -> RecommendStore {
        let mut s = RecommendStore::new();
        for id in 1..=4 {
            s.upsert_item(merch(id, &format!("book{id}"), "books"));
        }
        for id in 5..=8 {
            s.upsert_item(merch(id, &format!("record{id}"), "music"));
        }
        // two taste communities
        for u in 1..=3u64 {
            for i in 1..=4u64 {
                s.record_event(ConsumerId(u), ItemId(i), BehaviorKind::Purchase);
            }
        }
        for u in 10..=12u64 {
            for i in 5..=8u64 {
                s.record_event(ConsumerId(u), ItemId(i), BehaviorKind::Purchase);
            }
        }
        s
    }

    #[test]
    fn community_graph_separates_taste_clusters() {
        let s = community_store();
        let g = CommunityGraph::build(&s, &SimilarityConfig::default(), 0.5);
        let communities = g.communities();
        assert_eq!(communities.len(), 2);
        assert!(communities.iter().any(|c| c.contains(&ConsumerId(1))
            && c.contains(&ConsumerId(3))
            && !c.contains(&ConsumerId(10))));
    }

    #[test]
    fn community_neighbours_are_ranked() {
        let s = community_store();
        let g = CommunityGraph::build(&s, &SimilarityConfig::default(), 0.1);
        let n = g.neighbours(ConsumerId(1));
        assert_eq!(n.len(), 2);
        assert!(n[0].1 >= n[1].1);
        assert!(g.neighbours(ConsumerId(999)).is_empty());
    }

    #[test]
    fn empty_store_builds_empty_graph() {
        let s = RecommendStore::new();
        let g = CommunityGraph::build(&s, &SimilarityConfig::default(), 0.1);
        assert!(g.is_empty());
        assert!(g.communities().is_empty());
    }
}
