//! Recommenders: the paper's hybrid mechanism plus every baseline §2.3
//! names.
//!
//! * [`HybridRecommender`] — the paper's algorithm (§4.3.1/§4.4): find
//!   similar users by *profile* similarity, take their merchandise
//!   preferences, and compare against the queried merchandise
//!   information.
//! * [`CfRecommender`] — pure collaborative filtering (user-kNN over
//!   observational ratings), the technique §2.3 credits with serendipity
//!   but charges with sparsity and cold-start.
//! * [`ContentRecommender`] — pure information filtering: match the
//!   consumer's own profile against item content; *"do\[es\] not depend on
//!   having other users in the system"*.
//! * [`TopSellerRecommender`] — "top overall sellers on a site", the
//!   non-personalized baseline.
//! * [`RandomRecommender`] — the floor.
//!
//! All implement one [`Recommender`] trait over a shared
//! [`RecommendStore`], so experiment E6 compares like with like.

use crate::profile::ConsumerId;
use crate::similarity::{nearest_neighbours, SimilarityConfig};
use crate::store::RecommendStore;
use ecp::merchandise::{CategoryPath, ItemId, Merchandise};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What the consumer is looking at right now — "the queried merchandise
/// information" of §4.3.1. Empty context means a general recommendation
/// (e.g. the storefront page).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryContext {
    /// Query keywords, if the consumer searched.
    pub keywords: Vec<String>,
    /// Category the consumer is browsing, if any.
    pub category: Option<CategoryPath>,
}

impl QueryContext {
    /// Context from a keyword search.
    pub fn keywords<I, S>(keywords: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        QueryContext {
            keywords: keywords.into_iter().map(Into::into).collect(),
            category: None,
        }
    }

    /// How relevant `item` is to this context, in `[0, 1]`-ish range.
    /// 1.0 for an empty context; 0.0 for a category mismatch.
    pub fn relevance(&self, item: &Merchandise) -> f64 {
        if let Some(cat) = &self.category {
            if &item.category != cat {
                return 0.0;
            }
        }
        if self.keywords.is_empty() {
            1.0
        } else {
            // keyword_score is unbounded above; squash softly
            let s = item.keyword_score(&self.keywords);
            s / (1.0 + s)
        }
    }
}

/// One ranked recommendation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Recommended item.
    pub item: ItemId,
    /// Relative score (higher is better; scales differ per recommender).
    pub score: f64,
}

/// A recommendation strategy over the shared store.
pub trait Recommender {
    /// Short stable name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Produce up to `k` recommendations for `user` in `context`,
    /// best first. Items the user already purchased are excluded.
    fn recommend(
        &self,
        store: &RecommendStore,
        user: ConsumerId,
        context: &QueryContext,
        k: usize,
    ) -> Vec<Recommendation>;
}

fn rank(mut scored: Vec<Recommendation>, k: usize) -> Vec<Recommendation> {
    scored.retain(|r| r.score > 0.0);
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.item.cmp(&b.item))
    });
    scored.truncate(k);
    scored
}

/// Candidate items: known catalog minus the user's past purchases,
/// filtered by context category.
fn candidates<'a>(
    store: &'a RecommendStore,
    user: ConsumerId,
    context: &'a QueryContext,
) -> impl Iterator<Item = &'a Merchandise> {
    let owned = store.purchased_by(user);
    store.catalog().iter().filter(move |m| {
        !owned.contains(&m.id)
            && context
                .category
                .as_ref()
                .map(|c| &m.category == c)
                .unwrap_or(true)
    })
}

/// Non-personalized "top overall sellers" baseline (§2.3).
#[derive(Debug, Clone, Copy, Default)]
pub struct TopSellerRecommender;

impl Recommender for TopSellerRecommender {
    fn name(&self) -> &'static str {
        "top-seller"
    }

    fn recommend(
        &self,
        store: &RecommendStore,
        user: ConsumerId,
        context: &QueryContext,
        k: usize,
    ) -> Vec<Recommendation> {
        let scored = candidates(store, user, context)
            .map(|m| Recommendation {
                item: m.id,
                score: store.units_sold(m.id) as f64 * context.relevance(m).max(0.01),
            })
            .collect();
        rank(scored, k)
    }
}

/// Uniform pseudo-random floor baseline (deterministic in `(seed, user,
/// item)`).
#[derive(Debug, Clone, Copy)]
pub struct RandomRecommender {
    /// Seed mixed into every score.
    pub seed: u64,
}

impl Recommender for RandomRecommender {
    fn name(&self) -> &'static str {
        "random"
    }

    fn recommend(
        &self,
        store: &RecommendStore,
        user: ConsumerId,
        context: &QueryContext,
        k: usize,
    ) -> Vec<Recommendation> {
        let scored = candidates(store, user, context)
            .map(|m| {
                let mut h = self.seed ^ user.0.wrapping_mul(0x9e37_79b9_7f4a_7c15);
                h ^= m.id.0.wrapping_mul(0xbf58_476d_1ce4_e5b9);
                h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
                h ^= h >> 31;
                Recommendation {
                    item: m.id,
                    score: (h % 10_000) as f64 / 10_000.0 + 1e-4,
                }
            })
            .collect();
        rank(scored, k)
    }
}

/// Pure information filtering: the consumer's own profile against item
/// content (§2.3 IF).
#[derive(Debug, Clone, Copy, Default)]
pub struct ContentRecommender;

impl Recommender for ContentRecommender {
    fn name(&self) -> &'static str {
        "content-if"
    }

    fn recommend(
        &self,
        store: &RecommendStore,
        user: ConsumerId,
        context: &QueryContext,
        k: usize,
    ) -> Vec<Recommendation> {
        let Some(profile) = store.profile(user) else {
            // Cold-start consumer: fall back to context relevance alone.
            let scored = candidates(store, user, context)
                .map(|m| Recommendation {
                    item: m.id,
                    score: context.relevance(m),
                })
                .collect();
            return rank(scored, k);
        };
        let scored = candidates(store, user, context)
            .map(|m| {
                let affinity = profile.affinity(&m.category, &m.terms);
                Recommendation {
                    item: m.id,
                    score: affinity * (0.2 + context.relevance(m)),
                }
            })
            .collect();
        rank(scored, k)
    }
}

/// Pure collaborative filtering: user-kNN prediction over observational
/// ratings (§2.3 CF).
#[derive(Debug, Clone, Copy)]
pub struct CfRecommender {
    /// Neighbourhood size.
    pub k_neighbours: usize,
    /// Minimum co-rated items for a neighbour to count.
    pub min_overlap: usize,
}

impl Default for CfRecommender {
    fn default() -> Self {
        CfRecommender {
            k_neighbours: 20,
            min_overlap: 2,
        }
    }
}

impl Recommender for CfRecommender {
    fn name(&self) -> &'static str {
        "cf-knn"
    }

    fn recommend(
        &self,
        store: &RecommendStore,
        user: ConsumerId,
        context: &QueryContext,
        k: usize,
    ) -> Vec<Recommendation> {
        let ratings = store.ratings();
        let scored = candidates(store, user, context)
            .filter_map(|m| {
                // skip items the user already rated at full strength
                let prediction =
                    ratings.predict(user, m.id, self.k_neighbours, self.min_overlap)?;
                Some(Recommendation {
                    item: m.id,
                    score: prediction * (0.2 + context.relevance(m)),
                })
            })
            .collect();
        rank(scored, k)
    }
}

/// The paper's mechanism (§4.3.1 + §4.4): collaborative filtering over
/// *profiles* combined with content matching against the queried
/// merchandise information.
///
/// 1. Find the `k_neighbours` consumers most similar to the target by
///    profile similarity (with the Fig 4.5 threshold-discard rule).
/// 2. Collect the neighbours' merchandise preferences (their observed
///    ratings), weighted by neighbour similarity.
/// 3. Score each candidate by neighbour preference *and* content match
///    (the consumer's own profile affinity and the query context).
/// 4. With no usable neighbours, degrade gracefully to content-only —
///    inheriting IF's independence from other users. For a *completely
///    cold* consumer (no profile at all) the collaborative term falls
///    back to normalized popularity — §2.3's "top overall sellers"
///    basis, the only signal available at that point.
#[derive(Debug, Clone, Copy)]
pub struct HybridRecommender {
    /// Neighbourhood size for the profile-similarity step.
    pub k_neighbours: usize,
    /// Profile-similarity configuration (method, discard threshold).
    pub similarity: SimilarityConfig,
    /// Weight of the collaborative term vs the content term.
    pub collaborative_weight: f64,
}

impl Default for HybridRecommender {
    fn default() -> Self {
        HybridRecommender {
            k_neighbours: 10,
            similarity: SimilarityConfig::default(),
            collaborative_weight: 0.7,
        }
    }
}

impl HybridRecommender {
    /// Reference implementation running the neighbour step as a full
    /// scan ([`nearest_neighbours`] over every profile, re-flattening
    /// each) instead of through the store's index. Output is identical
    /// to [`Recommender::recommend`]; kept for equivalence tests and
    /// benchmarks.
    pub fn recommend_naive(
        &self,
        store: &RecommendStore,
        user: ConsumerId,
        context: &QueryContext,
        k: usize,
    ) -> Vec<Recommendation> {
        let neighbours = match store.profile(user) {
            Some(p) => nearest_neighbours(
                p,
                store.profiles().filter(|(id, _)| *id != user),
                &self.similarity,
                self.k_neighbours,
            ),
            None => Vec::new(),
        };
        self.recommend_with_neighbours(store, user, context, k, &neighbours)
    }

    /// Steps 2–4 of the mechanism, given the step-1 neighbour list.
    fn recommend_with_neighbours(
        &self,
        store: &RecommendStore,
        user: ConsumerId,
        context: &QueryContext,
        k: usize,
        neighbours: &[(ConsumerId, f64)],
    ) -> Vec<Recommendation> {
        let own_profile = store.profile(user);
        // Step 2: neighbours' merchandise preferences, similarity-weighted.
        let mut collab: BTreeMap<u64, f64> = BTreeMap::new();
        let mut total_sim = 0.0;
        for (nid, sim) in neighbours {
            total_sim += sim;
            for (item, rating) in store.ratings().user_ratings(*nid) {
                *collab.entry(item.0).or_insert(0.0) += sim * rating;
            }
        }
        if total_sim > 0.0 {
            for v in collab.values_mut() {
                *v /= total_sim;
            }
        }
        // Step 3: combine with the queried merchandise information. A
        // fully cold consumer has neither neighbours nor affinity; use
        // popularity as the collaborative stand-in so the mechanism
        // still says something useful on day one.
        let cold = own_profile.map(|p| p.is_empty()).unwrap_or(true) && neighbours.is_empty();
        let max_sales = if cold {
            store
                .catalog()
                .iter()
                .map(|m| store.units_sold(m.id))
                .max()
                .unwrap_or(0)
                .max(1) as f64
        } else {
            1.0
        };
        let cw = self.collaborative_weight.clamp(0.0, 1.0);
        let score_one = |m: &&Merchandise| {
            let collaborative = if cold {
                store.units_sold(m.id) as f64 / max_sales
            } else {
                collab.get(&m.id.0).copied().unwrap_or(0.0)
            };
            let affinity = own_profile
                .map(|p| {
                    let a = p.affinity(&m.category, &m.terms);
                    a / (1.0 + a)
                })
                .unwrap_or(0.0);
            let content = 0.5 * affinity + 0.5 * context.relevance(m);
            let score = cw * collaborative + (1.0 - cw) * content;
            Recommendation { item: m.id, score }
        };
        // Candidate scoring is pure per item, so fanning it out over
        // cores and concatenating in chunk order is byte-identical to
        // the sequential map.
        let pool: Vec<&Merchandise> = candidates(store, user, context).collect();
        #[cfg(feature = "parallel")]
        if pool.len() >= 256 {
            return rank(crate::index::par_map(&pool, score_one), k);
        }
        let scored = pool.iter().map(score_one).collect();
        rank(scored, k)
    }
}

impl Recommender for HybridRecommender {
    fn name(&self) -> &'static str {
        "hybrid-abcrm"
    }

    fn recommend(
        &self,
        store: &RecommendStore,
        user: ConsumerId,
        context: &QueryContext,
        k: usize,
    ) -> Vec<Recommendation> {
        // Step 1: similar users — served from the store's posting-list
        // index and flat-profile cache (identical to the full scan the
        // naive path runs; see `RecommendStore::nearest_neighbours`).
        let neighbours = store.nearest_neighbours(user, &self.similarity, self.k_neighbours);
        self.recommend_with_neighbours(store, user, context, k, &neighbours)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learning::BehaviorKind;
    use ecp::merchandise::Money;
    use ecp::terms::TermVector;

    fn merch(id: u64, name: &str, cat: &str, sub: &str) -> Merchandise {
        Merchandise {
            id: ItemId(id),
            name: name.into(),
            category: CategoryPath::new(cat, sub),
            terms: TermVector::from_pairs([(name.to_lowercase(), 1.0), (sub.to_string(), 0.5)]),
            list_price: Money::from_units(10),
            seller: 1,
        }
    }

    /// Store with two taste clusters: users 1-3 buy programming books,
    /// users 4-6 buy jazz records. Item 10 (a programming book) is bought
    /// by users 2,3 but not by user 1.
    fn clustered_store() -> RecommendStore {
        let mut s = RecommendStore::new();
        for id in 1..=9 {
            s.upsert_item(merch(id, &format!("rustbook{id}"), "books", "programming"));
        }
        s.upsert_item(merch(10, "rustbook10", "books", "programming"));
        for id in 11..=20 {
            s.upsert_item(merch(id, &format!("jazzrecord{id}"), "music", "jazz"));
        }
        for user in 1..=3u64 {
            for item in 1..=9u64 {
                if (item + user) % 3 != 0 {
                    s.record_event(ConsumerId(user), ItemId(item), BehaviorKind::Purchase);
                }
            }
        }
        // item 10 liked by user 1's cluster-mates
        s.record_event(ConsumerId(2), ItemId(10), BehaviorKind::Purchase);
        s.record_event(ConsumerId(3), ItemId(10), BehaviorKind::Purchase);
        for user in 4..=6u64 {
            for item in 11..=20u64 {
                if (item + user) % 3 != 0 {
                    s.record_event(ConsumerId(user), ItemId(item), BehaviorKind::Purchase);
                }
            }
        }
        s
    }

    #[test]
    fn hybrid_recommends_cluster_mates_items() {
        let s = clustered_store();
        let recs =
            HybridRecommender::default().recommend(&s, ConsumerId(1), &QueryContext::default(), 5);
        assert!(!recs.is_empty());
        let items: Vec<ItemId> = recs.iter().map(|r| r.item).collect();
        assert!(
            items.contains(&ItemId(10)),
            "item 10 is loved by user 1's neighbours: {items:?}"
        );
        // nothing from the jazz cluster should outrank programming books
        assert!(
            items[0].0 <= 10,
            "top item must be a programming book: {items:?}"
        );
    }

    #[test]
    fn hybrid_excludes_already_purchased() {
        let s = clustered_store();
        let owned = s.purchased_by(ConsumerId(1));
        let recs =
            HybridRecommender::default().recommend(&s, ConsumerId(1), &QueryContext::default(), 20);
        assert!(recs.iter().all(|r| !owned.contains(&r.item)));
    }

    #[test]
    fn hybrid_cold_start_user_degrades_to_context() {
        let s = clustered_store();
        // user 99 has no profile at all; with keywords they still get
        // relevant items (IF-style independence)
        let recs = HybridRecommender::default().recommend(
            &s,
            ConsumerId(99),
            &QueryContext::keywords(["jazzrecord11"]),
            3,
        );
        assert!(
            !recs.is_empty(),
            "cold-start with context must still produce output"
        );
        assert_eq!(recs[0].item, ItemId(11));
    }

    #[test]
    fn cf_fails_cold_start_but_content_does_not() {
        let mut s = clustered_store();
        // brand-new item nobody rated
        s.upsert_item(merch(50, "rustbook50", "books", "programming"));
        let cf =
            CfRecommender::default().recommend(&s, ConsumerId(1), &QueryContext::default(), 50);
        assert!(
            cf.iter().all(|r| r.item != ItemId(50)),
            "CF cannot recommend an unrated item (§2.3 cold-start)"
        );
        let content = ContentRecommender.recommend(&s, ConsumerId(1), &QueryContext::default(), 50);
        assert!(
            content.iter().any(|r| r.item == ItemId(50)),
            "IF matches new content without ratings (§2.3)"
        );
    }

    #[test]
    fn content_matches_own_taste() {
        let s = clustered_store();
        let recs = ContentRecommender.recommend(&s, ConsumerId(1), &QueryContext::default(), 5);
        assert!(!recs.is_empty());
        // user 1 only ever bought programming books
        for r in &recs {
            let m = s.catalog().get(r.item).unwrap();
            assert_eq!(
                m.category.category, "books",
                "IF must stay in the user's taste"
            );
        }
    }

    #[test]
    fn top_seller_is_unpersonalized() {
        let s = clustered_store();
        let a = TopSellerRecommender.recommend(&s, ConsumerId(99), &QueryContext::default(), 3);
        let b = TopSellerRecommender.recommend(&s, ConsumerId(100), &QueryContext::default(), 3);
        assert_eq!(a, b, "top-seller output must not depend on the user");
        assert!(!a.is_empty());
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let s = clustered_store();
        let r1 =
            RandomRecommender { seed: 7 }.recommend(&s, ConsumerId(1), &QueryContext::default(), 5);
        let r2 =
            RandomRecommender { seed: 7 }.recommend(&s, ConsumerId(1), &QueryContext::default(), 5);
        assert_eq!(r1, r2);
        let r3 =
            RandomRecommender { seed: 8 }.recommend(&s, ConsumerId(1), &QueryContext::default(), 5);
        assert_ne!(r1, r3, "different seed should reshuffle");
    }

    #[test]
    fn category_filter_excludes_other_categories() {
        let s = clustered_store();
        let ctx = QueryContext {
            keywords: vec![],
            category: Some(CategoryPath::new("music", "jazz")),
        };
        for rec in [
            HybridRecommender::default().recommend(&s, ConsumerId(1), &ctx, 10),
            ContentRecommender.recommend(&s, ConsumerId(4), &ctx, 10),
            TopSellerRecommender.recommend(&s, ConsumerId(1), &ctx, 10),
        ] {
            for r in rec {
                assert_eq!(s.catalog().get(r.item).unwrap().category.category, "music");
            }
        }
    }

    #[test]
    fn k_truncates_output() {
        let s = clustered_store();
        let recs =
            HybridRecommender::default().recommend(&s, ConsumerId(1), &QueryContext::default(), 2);
        assert!(recs.len() <= 2);
    }

    #[test]
    fn context_relevance_squashes_and_filters() {
        let m = merch(1, "rustbook", "books", "programming");
        let ctx = QueryContext::keywords(["rustbook"]);
        let r = ctx.relevance(&m);
        assert!(r > 0.0 && r <= 1.0);
        let wrong_cat = QueryContext {
            keywords: vec![],
            category: Some(CategoryPath::new("music", "jazz")),
        };
        assert_eq!(wrong_cat.relevance(&m), 0.0);
        assert_eq!(QueryContext::default().relevance(&m), 1.0);
    }
}
