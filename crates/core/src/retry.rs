//! Retry policy: capped exponential backoff on the sim clock.
//!
//! Shared by the BRA (re-dispatching a lost MBA) and the BSMA (re-arming
//! the MBA watchdog). The schedule is a pure function of the attempt
//! number — deterministic, monotone non-decreasing and capped — so a
//! failure under chaos replays identically from the same seed.

use serde::{Deserialize, Serialize};

/// Capped exponential backoff: `delay(n) = min(base << n, cap)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackoffPolicy {
    /// Delay before the first retry (microseconds of sim time).
    pub base_us: u64,
    /// Upper bound on any single delay (microseconds).
    pub cap_us: u64,
    /// Retries after the initial attempt before giving up.
    pub max_retries: u32,
}

impl BackoffPolicy {
    /// Policy with the given base/cap/retry budget.
    pub fn new(base_us: u64, cap_us: u64, max_retries: u32) -> Self {
        BackoffPolicy {
            base_us,
            cap_us,
            max_retries,
        }
    }

    /// A policy that never retries (degrade immediately).
    pub fn none() -> Self {
        BackoffPolicy {
            base_us: 0,
            cap_us: 0,
            max_retries: 0,
        }
    }

    /// Backoff before retry number `attempt` (0-based): doubles each
    /// attempt from `base_us`, saturating at `cap_us`.
    pub fn delay_us(&self, attempt: u32) -> u64 {
        let shifted = if attempt >= 63 {
            u64::MAX
        } else {
            self.base_us.saturating_mul(1u64 << attempt)
        };
        shifted.min(self.cap_us)
    }

    /// Backoff for `attempt` clamped to the request's remaining deadline
    /// budget: `None` means the retry would land after the reply was
    /// already due, so the caller should degrade instead of retrying.
    /// With no deadline (`remaining_us == None`) the plain schedule
    /// applies.
    pub fn delay_within(&self, attempt: u32, remaining_us: Option<u64>) -> Option<u64> {
        let delay = self.delay_us(attempt);
        match remaining_us {
            None => Some(delay),
            Some(rem) if delay < rem => Some(delay),
            Some(_) => None,
        }
    }
}

impl Default for BackoffPolicy {
    /// 0.5 s base, 8 s cap, 2 retries — three total attempts within a
    /// default MBA watchdog window.
    fn default() -> Self {
        BackoffPolicy {
            base_us: 500_000,
            cap_us: 8_000_000,
            max_retries: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_doubles_then_caps() {
        let p = BackoffPolicy::new(100, 350, 5);
        assert_eq!(p.delay_us(0), 100);
        assert_eq!(p.delay_us(1), 200);
        assert_eq!(p.delay_us(2), 350, "capped");
        assert_eq!(p.delay_us(3), 350);
        assert_eq!(p.delay_us(63), 350, "shift overflow saturates at cap");
        assert_eq!(p.delay_us(200), 350);
    }

    #[test]
    fn none_never_delays_or_retries() {
        let p = BackoffPolicy::none();
        assert_eq!(p.max_retries, 0);
        assert_eq!(p.delay_us(0), 0);
    }

    #[test]
    fn retries_never_outlive_the_deadline() {
        let p = BackoffPolicy::new(100, 800, 5);
        // no deadline: plain schedule
        assert_eq!(p.delay_within(0, None), Some(100));
        assert_eq!(p.delay_within(3, None), Some(800));
        // plenty of budget: plain schedule
        assert_eq!(p.delay_within(0, Some(1_000)), Some(100));
        // the retry would land exactly at the deadline: refuse (the reply
        // was already due)
        assert_eq!(p.delay_within(0, Some(100)), None);
        // not enough budget: refuse rather than schedule a doomed retry
        assert_eq!(p.delay_within(2, Some(300)), None);
        // expired budget: refuse even attempt 0
        assert_eq!(p.delay_within(0, Some(0)), None);
    }

    #[test]
    fn policy_round_trips_serde() {
        let p = BackoffPolicy::default();
        let back: BackoffPolicy =
            serde_json::from_str(&serde_json::to_string(&p).unwrap()).unwrap();
        assert_eq!(p, back);
    }
}
