//! Approximate nearest-neighbour search over flattened profiles — the
//! million-user query tier.
//!
//! The exact posting-list path of [`crate::index::ProfileIndex`] scores
//! every consumer sharing at least one term with the target; with broad
//! shared vocabulary that candidate set grows linearly with the
//! population, so at 10^5–10^6 consumers candidate *scoring* becomes the
//! hot path. This module trades a measured sliver of recall for
//! sublinear candidate generation:
//!
//! * [`AnnConfig`] — the `SimilarityConfig::ann` knob: random-hyperplane
//!   LSH with tunable signature width (`bits`), table count (`tables`)
//!   and multiprobe depth (`probes`). Hash seeds derive from the platform
//!   seed (see [`AnnConfig::resolve_seed`]), so the whole structure is a
//!   deterministic function of `(profiles, config)`.
//! * [`LshIndex`] — multi-table signature buckets over the flat-profile
//!   cache, maintained incrementally: a Fig 4.5 feedback delta re-hashes
//!   the consumer's signature from the already-maintained flat vector
//!   (no re-flatten) and moves the consumer only between the buckets
//!   whose signature actually changed.
//! * [`score_packed`] — the batched re-rank kernel: candidates are
//!   scored in fixed-size blocks against interned, contiguous
//!   `(term-id, weight)` arrays (no string compares, no B-tree walks),
//!   with a reusable shared-pair scratch, composing with the `parallel`
//!   feature's deterministic chunk-order merge.
//!
//! Because the re-rank applies the *exact* similarity semantics
//! (discard threshold, `min_overlap`, the configured method) and the
//! neighbour floor filter, ANN results are always a subset of the exact
//! scan's admitted candidates — the index can only *miss* neighbours,
//! never invent them. `tests/ann.rs` and the property suite hold it to a
//! measured recall floor.

use crate::similarity::SimilarityConfig;
use ecp::terms::TermVector;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Fixed fallback hash seed used when neither the config nor a platform
/// seed supplies one (`seed == 0`).
const DEFAULT_ANN_SEED: u64 = 0xabc0_4a11_5eed_0001;

/// Configuration of the approximate neighbour index — the
/// [`SimilarityConfig::ann`] knob. `None` keeps the exact posting-list
/// scan; `Some` routes `nearest_neighbours`/`recommend` through the LSH
/// index transparently (the exact path remains the test oracle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnnConfig {
    /// Hyperplanes per table = signature bits (1..=32). More bits ⇒
    /// smaller buckets ⇒ faster queries, lower recall per table.
    pub bits: u8,
    /// Number of independent hash tables. More tables ⇒ higher recall,
    /// proportionally more memory and per-update hashing.
    pub tables: u8,
    /// Extra buckets probed per table at query time (single-bit flips of
    /// the signature, least-confident bit first). More probes ⇒ higher
    /// recall without extra tables.
    pub probes: u8,
    /// Hyperplane hash seed. `0` means "derive": the platform builders
    /// replace it with a value derived from the platform seed, and
    /// stand-alone stores fall back to a fixed constant — either way the
    /// index is deterministic.
    pub seed: u64,
}

impl Default for AnnConfig {
    fn default() -> Self {
        AnnConfig {
            bits: 16,
            tables: 8,
            probes: 8,
            seed: 0,
        }
    }
}

impl AnnConfig {
    /// The effective hyperplane seed: the explicit seed, or the fixed
    /// fallback when unset.
    pub fn resolved_seed(&self) -> u64 {
        if self.seed == 0 {
            DEFAULT_ANN_SEED
        } else {
            self.seed
        }
    }

    /// Derive the hash seed from a platform seed when none was set
    /// explicitly — same platform seed, same buckets.
    pub fn resolve_seed(mut self, platform_seed: u64) -> Self {
        if self.seed == 0 {
            let derived = splitmix64(platform_seed ^ DEFAULT_ANN_SEED);
            self.seed = if derived == 0 {
                DEFAULT_ANN_SEED
            } else {
                derived
            };
        }
        self
    }

    fn bits(&self) -> u32 {
        u32::from(self.bits).clamp(1, 32)
    }

    fn tables(&self) -> usize {
        usize::from(self.tables).max(1)
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over the term bytes, mixed with the index seed — one string
/// hash per term, from which every table's hyperplane signs derive.
fn term_hash(seed: u64, term: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for b in term.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// 64 hyperplane component signs for `(term, table)` — bit `b` set means
/// hyperplane `b` has a `+1` component for this term, clear means `-1`.
fn sign_word(th: u64, table: usize) -> u64 {
    splitmix64(th ^ (table as u64).wrapping_mul(0xd1b5_4a32_d192_ed03))
}

/// Random-hyperplane LSH over flattened profile vectors: per table, a
/// consumer lands in the bucket keyed by the sign pattern of its vector
/// projected on `bits` pseudo-random ±1 hyperplanes. Cosine-similar
/// vectors agree on most signs and collide in at least one table with
/// high probability.
#[derive(Debug, Clone)]
pub(crate) struct LshIndex {
    cfg: AnnConfig,
    /// Per-consumer signature, one `u32` per table.
    sigs: HashMap<u64, Box<[u32]>>,
    /// Per-table `signature → consumers` buckets (unordered members —
    /// every read path sorts + dedups the union).
    buckets: Vec<HashMap<u32, Vec<u64>>>,
}

impl LshIndex {
    pub(crate) fn new(cfg: AnnConfig) -> Self {
        LshIndex {
            buckets: (0..cfg.tables()).map(|_| HashMap::new()).collect(),
            sigs: HashMap::new(),
            cfg,
        }
    }

    /// Whether this index was built for exactly `cfg` (including the
    /// resolved seed) — a mismatch forces a rebuild.
    pub(crate) fn matches(&self, cfg: &AnnConfig) -> bool {
        self.cfg.bits == cfg.bits
            && self.cfg.tables == cfg.tables
            && self.cfg.resolved_seed() == cfg.resolved_seed()
    }

    /// Number of indexed consumers.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.sigs.len()
    }

    /// Projections of `vector` on every table's hyperplanes, in table ×
    /// bit order. Iterates the vector in term order, so the result — and
    /// therefore every signature — is a pure function of `(vector, cfg)`:
    /// an incrementally maintained vector hashes bit-identically to a
    /// rebuilt one.
    fn projections(&self, vector: &TermVector) -> Vec<f64> {
        let bits = self.cfg.bits() as usize;
        let tables = self.cfg.tables();
        let seed = self.cfg.resolved_seed();
        let mut proj = vec![0.0f64; tables * bits];
        for (term, w) in vector.iter() {
            let th = term_hash(seed, term);
            for t in 0..tables {
                let signs = sign_word(th, t);
                let row = &mut proj[t * bits..(t + 1) * bits];
                for (b, p) in row.iter_mut().enumerate() {
                    if signs & (1u64 << b) != 0 {
                        *p += w;
                    } else {
                        *p -= w;
                    }
                }
            }
        }
        proj
    }

    fn signature_of(proj: &[f64], bits: usize, table: usize) -> u32 {
        let row = &proj[table * bits..(table + 1) * bits];
        let mut sig = 0u32;
        for (b, p) in row.iter().enumerate() {
            if *p >= 0.0 {
                sig |= 1 << b;
            }
        }
        sig
    }

    /// Insert or refresh `id` after its flat vector changed. The
    /// signature is re-hashed from the maintained vector (O(terms ×
    /// tables) integer mixing, no allocation beyond the projection
    /// scratch) and the consumer moves only between buckets whose
    /// signature actually changed.
    pub(crate) fn update(&mut self, id: u64, vector: &TermVector) {
        let bits = self.cfg.bits() as usize;
        let proj = self.projections(vector);
        let fresh: Vec<u32> = (0..self.cfg.tables())
            .map(|t| Self::signature_of(&proj, bits, t))
            .collect();
        match self.sigs.get_mut(&id) {
            Some(old) => {
                for (t, (o, n)) in old.iter_mut().zip(fresh.iter()).enumerate() {
                    if *o != *n {
                        remove_member(&mut self.buckets[t], *o, id);
                        self.buckets[t].entry(*n).or_default().push(id);
                        *o = *n;
                    }
                }
            }
            None => {
                for (t, sig) in fresh.iter().enumerate() {
                    self.buckets[t].entry(*sig).or_default().push(id);
                }
                self.sigs.insert(id, fresh.into_boxed_slice());
            }
        }
    }

    /// Drop `id` from every table. The store currently invalidates the
    /// whole LSH index on profile removal (only the wholesale decay pass
    /// removes profiles), so this is exercised by tests only.
    #[cfg(test)]
    pub(crate) fn remove(&mut self, id: u64) {
        if let Some(sigs) = self.sigs.remove(&id) {
            for (t, sig) in sigs.iter().enumerate() {
                remove_member(&mut self.buckets[t], *sig, id);
            }
        }
    }

    /// Union of the target's buckets across all tables, multiprobed:
    /// per table the primary bucket plus `probes` single-bit flips,
    /// least-confident (smallest |projection|) bit first. `out` is
    /// cleared and left sorted + deduplicated.
    pub(crate) fn candidates(&self, target: &TermVector, probes: u8, out: &mut Vec<u64>) {
        out.clear();
        let bits = self.cfg.bits() as usize;
        let proj = self.projections(target);
        let probes = usize::from(probes).min(bits);
        let mut flip_order: Vec<usize> = (0..bits).collect();
        for (t, table) in self.buckets.iter().enumerate() {
            let sig = Self::signature_of(&proj, bits, t);
            if let Some(members) = table.get(&sig) {
                out.extend_from_slice(members);
            }
            if probes > 0 {
                let row = &proj[t * bits..(t + 1) * bits];
                flip_order.sort_by(|a, b| {
                    row[*a]
                        .abs()
                        .partial_cmp(&row[*b].abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.cmp(b))
                });
                for bit in flip_order.iter().take(probes) {
                    if let Some(members) = table.get(&(sig ^ (1 << bit))) {
                        out.extend_from_slice(members);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }
}

fn remove_member(table: &mut HashMap<u32, Vec<u64>>, sig: u32, id: u64) {
    if let Some(members) = table.get_mut(&sig) {
        if let Some(pos) = members.iter().position(|m| *m == id) {
            members.swap_remove(pos);
        }
        if members.is_empty() {
            table.remove(&sig);
        }
    }
}

/// Candidates are re-ranked in blocks of this many consumers; under the
/// `parallel` feature the blocks fan out across cores and concatenate in
/// block order (deterministic merge, same recipe as
/// [`crate::index::par_map`]).
const RERANK_BLOCK: usize = 64;

/// Score `candidates` against `target` over the index's interned packed
/// vectors, applying the full [`SimilarityConfig`] semantics (discard
/// threshold, `min_overlap`, method) plus the neighbour-floor filter.
///
/// The packed representation is a contiguous `(term-id, weight)` array
/// sorted by term id; scoring is a two-pointer merge over two flat
/// arrays — no string comparisons, no per-candidate allocation (one
/// shared-pair scratch per block). Scores can differ from the exact
/// scanner only in summation order (last-ulp), which is why the exact
/// path stays byte-identical by never routing through this kernel.
pub(crate) fn score_packed(
    index: &crate::index::ProfileIndex,
    target_packed: &[(u32, f64)],
    target_norm: f64,
    target_len: usize,
    candidates: &[u64],
    config: &SimilarityConfig,
) -> Vec<(u64, f64)> {
    let score_block = |block: &&[u64]| -> Vec<(u64, f64)> {
        let mut out = Vec::with_capacity(block.len());
        let mut shared: Vec<(f64, f64)> = Vec::new();
        for id in block.iter() {
            let Some((packed, norm, len)) = index.packed(*id) else {
                continue;
            };
            let s = score_pair(
                target_packed,
                target_norm,
                target_len,
                packed,
                norm,
                len,
                config,
                &mut shared,
            );
            if s > config.neighbour_floor {
                out.push((*id, s));
            }
        }
        out
    };
    let blocks: Vec<&[u64]> = candidates.chunks(RERANK_BLOCK).collect();
    #[cfg(feature = "parallel")]
    if candidates.len() >= 4 * RERANK_BLOCK {
        return crate::index::par_map(&blocks, score_block)
            .into_iter()
            .flatten()
            .collect();
    }
    blocks.iter().flat_map(score_block).collect()
}

/// One pair scored from packed vectors — mirrors
/// `similarity::similarity_impl` exactly (same discard rule, same
/// `min_overlap` gate, same measures) over the merge-ordered shared
/// terms.
#[allow(clippy::too_many_arguments)]
fn score_pair(
    a: &[(u32, f64)],
    a_norm: f64,
    a_len: usize,
    b: &[(u32, f64)],
    b_norm: f64,
    b_len: usize,
    config: &SimilarityConfig,
    shared: &mut Vec<(f64, f64)>,
) -> f64 {
    use crate::similarity::SimilarityMethod;
    shared.clear();
    let mut intersection = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let (wa, wb) = (a[i].1, b[j].1);
                i += 1;
                j += 1;
                intersection += 1;
                if let Some(threshold) = config.discard_threshold {
                    let ratio = if wa >= wb { wa / wb } else { wb / wa };
                    if ratio > threshold {
                        continue;
                    }
                }
                shared.push((wa, wb));
            }
        }
    }
    if shared.len() < config.min_overlap {
        return 0.0;
    }
    match config.method {
        SimilarityMethod::Cosine => {
            let dot: f64 = shared.iter().map(|(x, y)| x * y).sum();
            let denom = a_norm * b_norm;
            if denom == 0.0 {
                0.0
            } else {
                (dot / denom).clamp(0.0, 1.0)
            }
        }
        SimilarityMethod::Pearson => {
            let n = shared.len() as f64;
            if shared.len() < 2 {
                return 0.0;
            }
            let mean_x = shared.iter().map(|(x, _)| x).sum::<f64>() / n;
            let mean_y = shared.iter().map(|(_, y)| y).sum::<f64>() / n;
            let mut cov = 0.0;
            let mut var_x = 0.0;
            let mut var_y = 0.0;
            for (x, y) in shared.iter() {
                cov += (x - mean_x) * (y - mean_y);
                var_x += (x - mean_x).powi(2);
                var_y += (y - mean_y).powi(2);
            }
            let denom = (var_x * var_y).sqrt();
            if denom == 0.0 {
                0.0
            } else {
                (cov / denom).clamp(-1.0, 1.0)
            }
        }
        SimilarityMethod::Jaccard => {
            let union = a_len + b_len - intersection;
            if union == 0 {
                0.0
            } else {
                shared.len() as f64 / union as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_of(pairs: &[(&str, f64)]) -> TermVector {
        TermVector::from_pairs(pairs.iter().map(|(t, w)| (t.to_string(), *w)))
    }

    #[test]
    fn identical_vectors_share_every_signature() {
        let mut lsh = LshIndex::new(AnnConfig::default());
        let v = vec_of(&[("a", 1.0), ("b", 0.5)]);
        lsh.update(1, &v);
        lsh.update(2, &v);
        let mut out = Vec::new();
        lsh.candidates(&v, lsh.cfg.probes, &mut out);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn update_moves_only_changed_buckets() {
        let mut lsh = LshIndex::new(AnnConfig {
            bits: 8,
            tables: 4,
            probes: 0,
            seed: 7,
        });
        let before = vec_of(&[("a", 1.0)]);
        let after = vec_of(&[("zzz", 3.0)]);
        lsh.update(1, &before);
        let old_sigs = lsh.sigs.get(&1).unwrap().clone();
        lsh.update(1, &after);
        let new_sigs = lsh.sigs.get(&1).unwrap().clone();
        // membership is consistent: id 1 is reachable from `after`…
        let mut out = Vec::new();
        lsh.candidates(&after, lsh.cfg.probes, &mut out);
        assert_eq!(out, vec![1]);
        // …and no stale bucket still holds it
        for (t, table) in lsh.buckets.iter().enumerate() {
            for (sig, members) in table {
                if members.contains(&1) {
                    assert_eq!(*sig, new_sigs[t], "stale bucket in table {t}");
                }
            }
        }
        // sanity: the move was real for at least one table (different
        // vectors hash differently with overwhelming probability)
        assert_ne!(old_sigs, new_sigs);
    }

    #[test]
    fn remove_unlinks_every_table() {
        let mut lsh = LshIndex::new(AnnConfig::default());
        let v = vec_of(&[("a", 1.0)]);
        lsh.update(1, &v);
        lsh.remove(1);
        assert_eq!(lsh.len(), 0);
        let mut out = Vec::new();
        lsh.candidates(&v, lsh.cfg.probes, &mut out);
        assert!(out.is_empty());
        for table in &lsh.buckets {
            assert!(table.is_empty());
        }
    }

    #[test]
    fn incremental_signature_equals_rebuild() {
        // the same final vector must hash identically whether the index
        // saw it in one shot or through a chain of updates
        let cfg = AnnConfig {
            bits: 16,
            tables: 8,
            probes: 2,
            seed: 42,
        };
        let mut incremental = LshIndex::new(cfg);
        incremental.update(1, &vec_of(&[("a", 1.0)]));
        incremental.update(1, &vec_of(&[("a", 1.4), ("b", 0.2)]));
        let final_v = vec_of(&[("a", 0.9), ("b", 0.2), ("c", 3.0)]);
        incremental.update(1, &final_v);
        let mut fresh = LshIndex::new(cfg);
        fresh.update(1, &final_v);
        assert_eq!(
            incremental.sigs.get(&1).unwrap(),
            fresh.sigs.get(&1).unwrap()
        );
    }

    #[test]
    fn seed_resolution_derives_from_platform_seed() {
        let cfg = AnnConfig::default();
        assert_eq!(cfg.resolved_seed(), DEFAULT_ANN_SEED);
        let derived = cfg.resolve_seed(1234);
        assert_ne!(derived.seed, 0);
        assert_eq!(derived, AnnConfig::default().resolve_seed(1234));
        assert_ne!(derived.seed, AnnConfig::default().resolve_seed(1235).seed);
        // explicit seeds survive resolution
        let explicit = AnnConfig {
            seed: 99,
            ..AnnConfig::default()
        };
        assert_eq!(explicit.resolve_seed(1234).seed, 99);
    }

    #[test]
    fn similar_vectors_collide_more_than_dissimilar() {
        let cfg = AnnConfig {
            bits: 16,
            tables: 8,
            probes: 0,
            seed: 3,
        };
        let lsh = LshIndex::new(cfg);
        let target = vec_of(&[("a", 1.0), ("b", 1.0), ("c", 1.0), ("d", 1.0)]);
        let near = vec_of(&[("a", 1.1), ("b", 0.9), ("c", 1.0), ("d", 1.0)]);
        let far = vec_of(&[("x", 2.0), ("y", 0.1), ("z", 5.0)]);
        let bits = cfg.bits() as usize;
        let pt = lsh.projections(&target);
        let pn = lsh.projections(&near);
        let pf = lsh.projections(&far);
        let agree = |a: &[f64], b: &[f64]| {
            (0..cfg.tables())
                .filter(|t| {
                    LshIndex::signature_of(a, bits, *t) == LshIndex::signature_of(b, bits, *t)
                })
                .count()
        };
        assert!(agree(&pt, &pn) > agree(&pt, &pf));
    }
}
