//! Query-serving indexes over the recommendation store.
//!
//! The naive similarity step of Fig 4.5 flattens every profile and scores
//! every consumer on every query — O(consumers × terms) per request. This
//! module holds the derived structures [`crate::store::RecommendStore`]
//! maintains incrementally so the hot path only touches plausible
//! candidates:
//!
//! * [`FlatProfile`] — a profile's flattened term vector plus its
//!   precomputed norm, so neither is recomputed per query;
//! * [`ProfileIndex`] — the flat-profile cache plus an inverted
//!   term → consumers posting-list index. Consumers sharing no term with
//!   the target score exactly `0.0` under every similarity method, so
//!   (for a non-negative neighbour floor) scoring only posting-list
//!   candidates is lossless;
//! * [`ItemSimCache`] — memoized item–item cosine similarities for
//!   item-based CF, invalidated wholesale whenever the ratings matrix
//!   version changes;
//! * a bounded top-k selector replicating the reference
//!   "sort by (score desc, id asc), truncate(k)" ranking without sorting
//!   the full candidate list.
//!
//! All structures are rebuildable from the store's primary data; they are
//! never serialized.

use crate::learning::ProfileDelta;
use crate::profile::Profile;
use ecp::terms::TermVector;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// A consumer profile flattened for similarity scoring: the namespaced
/// term vector of [`Profile::flatten`] plus its Euclidean norm.
#[derive(Debug, Clone, Default)]
pub struct FlatProfile {
    /// Flattened (category-namespaced) term vector.
    pub vector: TermVector,
    /// `vector.norm()`, precomputed.
    pub norm: f64,
}

impl FlatProfile {
    /// Flatten `profile` and precompute its norm.
    pub fn of(profile: &Profile) -> Self {
        let vector = profile.flatten();
        let norm = vector.norm();
        FlatProfile { vector, norm }
    }
}

/// Flat-profile cache plus inverted term → consumer posting lists, plus
/// the interned "packed" mirror of each flat vector used by the ANN
/// re-rank kernel: terms are mapped to dense `u32` ids (assigned on
/// first sight, never recycled) and each consumer's vector is stored as
/// a contiguous `(term-id, weight)` array sorted by id, so candidate
/// scoring is a two-pointer merge over flat memory instead of a B-tree
/// walk with string compares.
#[derive(Debug, Clone, Default)]
pub struct ProfileIndex {
    flats: BTreeMap<u64, FlatProfile>,
    postings: BTreeMap<String, BTreeSet<u64>>,
    packed: HashMap<u64, Vec<(u32, f64)>>,
    term_ids: HashMap<String, u32>,
    next_term_id: u32,
}

/// Borrowed view of a packed flat vector: sorted `(term-id, weight)`
/// pairs, cached Euclidean norm, and term count.
pub(crate) type PackedView<'a> = (&'a [(u32, f64)], f64, usize);

impl ProfileIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build an index over `profiles` from scratch.
    pub fn rebuild<'a, I>(profiles: I) -> Self
    where
        I: IntoIterator<Item = (u64, &'a Profile)>,
    {
        let mut index = ProfileIndex::new();
        for (id, profile) in profiles {
            index.update(id, profile);
        }
        index
    }

    /// Insert or refresh the entry for `id` after its profile changed.
    pub fn update(&mut self, id: u64, profile: &Profile) {
        self.unlink(id);
        let flat = FlatProfile::of(profile);
        for (term, _) in flat.vector.iter() {
            self.postings
                .entry(term.to_string())
                .or_default()
                .insert(id);
        }
        let packed = self.pack(&flat.vector);
        self.packed.insert(id, packed);
        self.flats.insert(id, flat);
    }

    /// Apply a [`ProfileDelta`] from the incremental learning path: only
    /// the changed flat keys are touched in the vector, postings and
    /// packed mirror — O(changed terms × log profile) instead of a full
    /// re-flatten — and the norm is recomputed from the maintained
    /// vector, which keeps it bit-identical to a fresh
    /// [`FlatProfile::of`] (the maintained weights *are* the flatten
    /// output; only re-deriving them wholesale is skipped).
    pub fn apply_delta(&mut self, id: u64, delta: &ProfileDelta) {
        let flat = self.flats.entry(id).or_default();
        let packed = self.packed.entry(id).or_default();
        let mut dirty = false;
        for (key, new_w) in delta.changes() {
            let old_w = flat.vector.weight(key);
            if new_w > 0.0 {
                if old_w.to_bits() == new_w.to_bits() {
                    continue;
                }
                dirty = true;
                flat.vector.set(key.clone(), new_w);
                let tid = intern(&mut self.term_ids, &mut self.next_term_id, key);
                match packed.binary_search_by_key(&tid, |(t, _)| *t) {
                    Ok(pos) => packed[pos].1 = new_w,
                    Err(pos) => packed.insert(pos, (tid, new_w)),
                }
                if old_w == 0.0 {
                    self.postings.entry(key.clone()).or_default().insert(id);
                }
            } else if old_w != 0.0 {
                dirty = true;
                flat.vector.set(key.clone(), 0.0);
                if let Some(tid) = self.term_ids.get(key) {
                    if let Ok(pos) = packed.binary_search_by_key(tid, |(t, _)| *t) {
                        packed.remove(pos);
                    }
                }
                if let Some(set) = self.postings.get_mut(key) {
                    set.remove(&id);
                    if set.is_empty() {
                        self.postings.remove(key);
                    }
                }
            }
        }
        if dirty {
            flat.norm = flat.vector.norm();
        }
    }

    /// Drop the entry for `id` (profile removed from the store).
    pub fn remove(&mut self, id: u64) {
        self.unlink(id);
        self.flats.remove(&id);
        self.packed.remove(&id);
    }

    fn unlink(&mut self, id: u64) {
        if let Some(old) = self.flats.get(&id) {
            for (term, _) in old.vector.iter() {
                if let Some(set) = self.postings.get_mut(term) {
                    set.remove(&id);
                    if set.is_empty() {
                        self.postings.remove(term);
                    }
                }
            }
        }
    }

    /// Cached flat profile of `id`, if indexed.
    pub fn flat(&self, id: u64) -> Option<&FlatProfile> {
        self.flats.get(&id)
    }

    /// Iterate `(consumer, flat profile)` in ascending id order.
    pub fn flats(&self) -> impl Iterator<Item = (u64, &FlatProfile)> {
        self.flats.iter().map(|(id, f)| (*id, f))
    }

    /// Consumers sharing at least one term with `target`, ascending,
    /// deduplicated — the only consumers that can score above zero.
    pub fn candidates(&self, target: &TermVector) -> Vec<u64> {
        let mut out = Vec::new();
        self.candidates_into(target, &mut out);
        out
    }

    /// [`ProfileIndex::candidates`] into a caller-owned scratch buffer:
    /// `out` is cleared, filled with the posting-list union, sorted and
    /// deduplicated. A reused buffer makes the hot query path
    /// allocation-free at steady state (`benches/query_hot_path.rs
    /// --assert-no-alloc` holds it to zero).
    pub fn candidates_into(&self, target: &TermVector, out: &mut Vec<u64>) {
        out.clear();
        for (term, _) in target.iter() {
            if let Some(set) = self.postings.get(term) {
                out.extend(set.iter().copied());
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// The interned packed mirror of `id`'s flat vector for the ANN
    /// re-rank kernel: `(sorted (term-id, weight) pairs, norm, term
    /// count)`.
    pub(crate) fn packed(&self, id: u64) -> Option<PackedView<'_>> {
        let flat = self.flats.get(&id)?;
        let packed = self.packed.get(&id)?;
        Some((packed.as_slice(), flat.norm, packed.len()))
    }

    fn pack(&mut self, vector: &TermVector) -> Vec<(u32, f64)> {
        let mut packed: Vec<(u32, f64)> = vector
            .iter()
            .map(|(term, w)| (intern(&mut self.term_ids, &mut self.next_term_id, term), w))
            .collect();
        packed.sort_unstable_by_key(|(t, _)| *t);
        packed
    }

    /// Number of indexed consumers.
    pub fn len(&self) -> usize {
        self.flats.len()
    }

    /// Whether no consumer is indexed.
    pub fn is_empty(&self) -> bool {
        self.flats.is_empty()
    }

    /// Number of distinct indexed terms (posting lists).
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }
}

/// Intern `term`, assigning the next dense id on first sight. A free
/// function (not a method) so callers can hold disjoint borrows of the
/// index's other fields.
fn intern(term_ids: &mut HashMap<String, u32>, next: &mut u32, term: &str) -> u32 {
    if let Some(id) = term_ids.get(term) {
        return *id;
    }
    let id = *next;
    *next += 1;
    term_ids.insert(term.to_string(), id);
    id
}

/// Default [`ItemSimCache`] capacity — pairs, not bytes. At ~40 bytes a
/// pair this bounds the cache near 2.5 MB.
pub const ITEM_SIM_CACHE_CAPACITY: usize = 65_536;

/// Memoized item–item cosine similarities, keyed by
/// `(min(a, b), max(a, b), min_overlap)` — [`crate::itemcf::item_cosine`]
/// is symmetric, bitwise — valid only for one ratings-matrix version and
/// bounded in size: when a generation outgrows `capacity`, the oldest
/// inserted pairs are evicted FIFO. Evictions are tagged by cause —
/// `invalidated` (version roll dropped a still-fresh generation) vs
/// `capacity_evicted` (the bound pushed out live entries) — so telemetry
/// can tell "the matrix churns" from "the cache is too small".
#[derive(Debug, Clone)]
pub struct ItemSimCache {
    version: u64,
    sims: HashMap<(u64, u64, usize), Option<f64>>,
    /// Insertion order of the current generation, for FIFO eviction.
    order: VecDeque<(u64, u64, usize)>,
    capacity: usize,
    hits: u64,
    misses: u64,
    invalidated: u64,
    capacity_evicted: u64,
}

impl Default for ItemSimCache {
    fn default() -> Self {
        ItemSimCache {
            version: 0,
            sims: HashMap::new(),
            order: VecDeque::new(),
            capacity: ITEM_SIM_CACHE_CAPACITY,
            hits: 0,
            misses: 0,
            invalidated: 0,
            capacity_evicted: 0,
        }
    }
}

impl ItemSimCache {
    /// Cached similarity for `key`, if computed at `version`. A version
    /// mismatch clears the cache (the ratings matrix changed). Hit/miss
    /// tallies feed the telemetry registry's cache-effectiveness gauges.
    pub fn lookup(&mut self, version: u64, key: (u64, u64, usize)) -> Option<Option<f64>> {
        self.roll(version);
        let found = self.sims.get(&key).copied();
        if found.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        found
    }

    /// Lifetime `(hits, misses)` of [`ItemSimCache::lookup`]. Survives
    /// version rolls: effectiveness is a property of the workload, not of
    /// one matrix generation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Lifetime `(invalidated, capacity_evicted)` eviction tallies:
    /// entries dropped because their ratings-matrix generation rolled vs
    /// entries pushed out of a live generation by the capacity bound.
    pub fn eviction_stats(&self) -> (u64, u64) {
        (self.invalidated, self.capacity_evicted)
    }

    /// Change the capacity bound (pairs). Shrinking below the current
    /// population evicts FIFO immediately.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        self.enforce_capacity();
    }

    /// Record a computed similarity at `version`.
    pub fn insert(&mut self, version: u64, key: (u64, u64, usize), sim: Option<f64>) {
        self.roll(version);
        if self.sims.insert(key, sim).is_none() {
            self.order.push_back(key);
            self.enforce_capacity();
        }
    }

    fn enforce_capacity(&mut self) {
        while self.sims.len() > self.capacity {
            let Some(oldest) = self.order.pop_front() else {
                break;
            };
            if self.sims.remove(&oldest).is_some() {
                self.capacity_evicted += 1;
            }
        }
    }

    fn roll(&mut self, version: u64) {
        if self.version != version {
            self.invalidated += self.sims.len() as u64;
            self.sims.clear();
            self.order.clear();
            self.version = version;
        }
    }

    /// Number of cached pairs (for tests and diagnostics).
    pub fn len(&self) -> usize {
        self.sims.len()
    }

    /// Whether the cache holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.sims.is_empty()
    }
}

/// One scored candidate during top-k selection. `Ord` is "better":
/// greater means higher score, ties broken towards the *smaller* id —
/// exactly the reference comparator
/// `sort_by(score desc, id asc)`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RankEntry {
    pub id: u64,
    pub score: f64,
}

impl Ord for RankEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for RankEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for RankEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for RankEntry {}

/// Best `k` of `scored` under the reference ordering
/// `sort_by(score desc, id asc); truncate(k)`, selected with a bounded
/// min-heap instead of a full sort. Output is identical to the reference
/// because the ordering is total over unique ids.
pub(crate) fn top_k(scored: Vec<(u64, f64)>, k: usize) -> Vec<(u64, f64)> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<Reverse<RankEntry>> = BinaryHeap::with_capacity(k + 1);
    for (id, score) in scored {
        let entry = RankEntry { id, score };
        if heap.len() < k {
            heap.push(Reverse(entry));
        } else if let Some(Reverse(worst)) = heap.peek() {
            if entry > *worst {
                heap.pop();
                heap.push(Reverse(entry));
            }
        }
    }
    let mut best: Vec<RankEntry> = heap.into_iter().map(|Reverse(e)| e).collect();
    best.sort_by(|a, b| b.cmp(a));
    best.into_iter().map(|e| (e.id, e.score)).collect()
}

/// Map `f` over `items` on all available cores, preserving order — the
/// result is element-for-element identical to `items.iter().map(f)`.
/// Chunks are scored independently and concatenated in chunk order, so
/// the merge is deterministic.
#[cfg(feature = "parallel")]
pub(crate) fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(|| part.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for handle in handles {
            out.extend(handle.join().expect("par_map worker panicked"));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(pairs: &[(&str, &str, &str, f64)]) -> Profile {
        let mut p = Profile::new();
        for (cat, sub, term, w) in pairs {
            p.category_mut(cat).sub_mut(sub).set(*term, *w);
        }
        p
    }

    #[test]
    fn update_replaces_old_postings() {
        let mut index = ProfileIndex::new();
        index.update(1, &profile(&[("books", "prog", "rust", 1.0)]));
        assert_eq!(
            index.candidates(&index.flat(1).unwrap().vector.clone()),
            vec![1]
        );
        // profile drifts to a different term: the old posting must vanish
        index.update(1, &profile(&[("music", "jazz", "sax", 1.0)]));
        let old_term = TermVector::from_pairs([("books/prog/rust", 1.0)]);
        assert!(index.candidates(&old_term).is_empty());
        let new_term = TermVector::from_pairs([("music/jazz/sax", 1.0)]);
        assert_eq!(index.candidates(&new_term), vec![1]);
        assert_eq!(index.term_count(), 1);
    }

    #[test]
    fn remove_unlinks_everything() {
        let mut index = ProfileIndex::new();
        index.update(1, &profile(&[("books", "prog", "rust", 1.0)]));
        index.update(2, &profile(&[("books", "prog", "rust", 1.0)]));
        index.remove(1);
        assert!(index.flat(1).is_none());
        let term = TermVector::from_pairs([("books/prog/rust", 1.0)]);
        assert_eq!(index.candidates(&term), vec![2]);
        index.remove(2);
        assert!(index.is_empty());
        assert_eq!(index.term_count(), 0);
    }

    #[test]
    fn candidates_union_is_sorted_and_deduplicated() {
        let mut index = ProfileIndex::new();
        index.update(3, &profile(&[("b", "p", "x", 1.0), ("b", "p", "y", 1.0)]));
        index.update(1, &profile(&[("b", "p", "x", 1.0)]));
        index.update(2, &profile(&[("b", "p", "y", 1.0)]));
        let target = TermVector::from_pairs([("b/p/x", 1.0), ("b/p/y", 1.0)]);
        assert_eq!(index.candidates(&target), vec![1, 2, 3]);
    }

    #[test]
    fn flat_norm_matches_fresh_computation() {
        let p = profile(&[
            ("books", "prog", "rust", 2.0),
            ("music", "jazz", "sax", 0.5),
        ]);
        let flat = FlatProfile::of(&p);
        assert_eq!(flat.vector, p.flatten());
        assert_eq!(flat.norm.to_bits(), p.flatten().norm().to_bits());
    }

    #[test]
    fn top_k_matches_reference_sort() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..50 {
            let n = rng.gen_range(0..40usize);
            let scored: Vec<(u64, f64)> = (0..n)
                .map(|i| (i as u64, (rng.gen_range(0..5u32) as f64) / 4.0))
                .collect();
            for k in [0usize, 1, 3, 10, 100] {
                let mut reference = scored.clone();
                reference.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                reference.truncate(k);
                assert_eq!(top_k(scored.clone(), k), reference);
            }
        }
    }

    #[test]
    fn item_sim_cache_invalidates_on_version_change() {
        let mut cache = ItemSimCache::default();
        cache.insert(1, (1, 2, 2), Some(0.5));
        assert_eq!(cache.lookup(1, (1, 2, 2)), Some(Some(0.5)));
        // same version, unknown key
        assert_eq!(cache.lookup(1, (1, 3, 2)), None);
        // version moves on: everything is stale
        assert_eq!(cache.lookup(2, (1, 2, 2)), None);
        assert!(cache.is_empty());
        assert_eq!(cache.eviction_stats(), (1, 0));
    }

    #[test]
    fn item_sim_cache_capacity_evicts_fifo_and_tags_cause() {
        let mut cache = ItemSimCache::default();
        cache.set_capacity(2);
        cache.insert(1, (1, 2, 2), Some(0.1));
        cache.insert(1, (1, 3, 2), Some(0.2));
        cache.insert(1, (1, 4, 2), Some(0.3));
        // oldest pair went out by capacity, not invalidation
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup(1, (1, 2, 2)), None);
        assert_eq!(cache.lookup(1, (1, 3, 2)), Some(Some(0.2)));
        assert_eq!(cache.eviction_stats(), (0, 1));
        // overwriting a live key must not double-count it in the order
        cache.insert(1, (1, 3, 2), Some(0.25));
        assert_eq!(cache.len(), 2);
        // a version roll tags the survivors as invalidated
        assert_eq!(cache.lookup(2, (1, 3, 2)), None);
        assert_eq!(cache.eviction_stats(), (2, 1));
    }

    #[test]
    fn candidates_into_reuses_buffer_and_matches_allocating_path() {
        let mut index = ProfileIndex::new();
        index.update(3, &profile(&[("b", "p", "x", 1.0), ("b", "p", "y", 1.0)]));
        index.update(1, &profile(&[("b", "p", "x", 1.0)]));
        index.update(2, &profile(&[("b", "p", "y", 1.0)]));
        let target = TermVector::from_pairs([("b/p/x", 1.0), ("b/p/y", 1.0)]);
        let mut scratch = vec![99, 98, 97];
        index.candidates_into(&target, &mut scratch);
        assert_eq!(scratch, index.candidates(&target));
        assert_eq!(scratch, vec![1, 2, 3]);
        // the buffer is reused, not reallocated, once warm
        let cap = scratch.capacity();
        index.candidates_into(&target, &mut scratch);
        assert_eq!(scratch.capacity(), cap);
    }

    #[test]
    fn apply_delta_tracks_full_update() {
        use crate::learning::ProfileDelta;
        let mut incremental = ProfileIndex::new();
        let mut full = ProfileIndex::new();
        let start = profile(&[("b", "p", "x", 1.0), ("b", "p", "y", 0.5)]);
        incremental.update(7, &start);
        full.update(7, &start);
        // drift: y strengthens, x vanishes, z appears
        let mut next = profile(&[("b", "p", "y", 0.9), ("b", "p", "z", 0.4)]);
        next.category_mut("b").terms.set("seed", 0.2);
        let delta = ProfileDelta::from_pairs([
            ("b/p/x".to_string(), 0.0),
            ("b/p/y".to_string(), 0.9),
            ("b/p/z".to_string(), 0.4),
            ("b//seed".to_string(), 0.2),
        ]);
        incremental.apply_delta(7, &delta);
        full.update(7, &next);
        let (a, b) = (incremental.flat(7).unwrap(), full.flat(7).unwrap());
        assert_eq!(a.vector, b.vector);
        assert_eq!(a.norm.to_bits(), b.norm.to_bits());
        assert_eq!(incremental.term_count(), full.term_count());
        let probe = TermVector::from_pairs([("b/p/x", 1.0)]);
        assert!(incremental.candidates(&probe).is_empty());
        let probe = TermVector::from_pairs([("b/p/z", 1.0)]);
        assert_eq!(incremental.candidates(&probe), vec![7]);
        // packed mirror stayed in sync
        let (packed, norm, len) = incremental.packed(7).unwrap();
        assert_eq!(len, 3);
        assert!(packed.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(norm.to_bits(), b.norm.to_bits());
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        assert_eq!(par_map(&items, |x| x * 3 + 1), seq);
        let empty: Vec<u64> = Vec::new();
        assert!(par_map(&empty, |x| *x).is_empty());
    }
}
