//! Query-serving indexes over the recommendation store.
//!
//! The naive similarity step of Fig 4.5 flattens every profile and scores
//! every consumer on every query — O(consumers × terms) per request. This
//! module holds the derived structures [`crate::store::RecommendStore`]
//! maintains incrementally so the hot path only touches plausible
//! candidates:
//!
//! * [`FlatProfile`] — a profile's flattened term vector plus its
//!   precomputed norm, so neither is recomputed per query;
//! * [`ProfileIndex`] — the flat-profile cache plus an inverted
//!   term → consumers posting-list index. Consumers sharing no term with
//!   the target score exactly `0.0` under every similarity method, so
//!   (for a non-negative neighbour floor) scoring only posting-list
//!   candidates is lossless;
//! * [`ItemSimCache`] — memoized item–item cosine similarities for
//!   item-based CF, invalidated wholesale whenever the ratings matrix
//!   version changes;
//! * a bounded top-k selector replicating the reference
//!   "sort by (score desc, id asc), truncate(k)" ranking without sorting
//!   the full candidate list.
//!
//! All structures are rebuildable from the store's primary data; they are
//! never serialized.

use crate::profile::Profile;
use ecp::terms::TermVector;
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A consumer profile flattened for similarity scoring: the namespaced
/// term vector of [`Profile::flatten`] plus its Euclidean norm.
#[derive(Debug, Clone, Default)]
pub struct FlatProfile {
    /// Flattened (category-namespaced) term vector.
    pub vector: TermVector,
    /// `vector.norm()`, precomputed.
    pub norm: f64,
}

impl FlatProfile {
    /// Flatten `profile` and precompute its norm.
    pub fn of(profile: &Profile) -> Self {
        let vector = profile.flatten();
        let norm = vector.norm();
        FlatProfile { vector, norm }
    }
}

/// Flat-profile cache plus inverted term → consumer posting lists.
#[derive(Debug, Clone, Default)]
pub struct ProfileIndex {
    flats: BTreeMap<u64, FlatProfile>,
    postings: BTreeMap<String, BTreeSet<u64>>,
}

impl ProfileIndex {
    /// Empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build an index over `profiles` from scratch.
    pub fn rebuild<'a, I>(profiles: I) -> Self
    where
        I: IntoIterator<Item = (u64, &'a Profile)>,
    {
        let mut index = ProfileIndex::new();
        for (id, profile) in profiles {
            index.update(id, profile);
        }
        index
    }

    /// Insert or refresh the entry for `id` after its profile changed.
    pub fn update(&mut self, id: u64, profile: &Profile) {
        self.unlink(id);
        let flat = FlatProfile::of(profile);
        for (term, _) in flat.vector.iter() {
            self.postings
                .entry(term.to_string())
                .or_default()
                .insert(id);
        }
        self.flats.insert(id, flat);
    }

    /// Drop the entry for `id` (profile removed from the store).
    pub fn remove(&mut self, id: u64) {
        self.unlink(id);
        self.flats.remove(&id);
    }

    fn unlink(&mut self, id: u64) {
        if let Some(old) = self.flats.get(&id) {
            for (term, _) in old.vector.iter() {
                if let Some(set) = self.postings.get_mut(term) {
                    set.remove(&id);
                    if set.is_empty() {
                        self.postings.remove(term);
                    }
                }
            }
        }
    }

    /// Cached flat profile of `id`, if indexed.
    pub fn flat(&self, id: u64) -> Option<&FlatProfile> {
        self.flats.get(&id)
    }

    /// Iterate `(consumer, flat profile)` in ascending id order.
    pub fn flats(&self) -> impl Iterator<Item = (u64, &FlatProfile)> {
        self.flats.iter().map(|(id, f)| (*id, f))
    }

    /// Consumers sharing at least one term with `target`, ascending,
    /// deduplicated — the only consumers that can score above zero.
    pub fn candidates(&self, target: &TermVector) -> Vec<u64> {
        let mut out: BTreeSet<u64> = BTreeSet::new();
        for (term, _) in target.iter() {
            if let Some(set) = self.postings.get(term) {
                out.extend(set.iter().copied());
            }
        }
        out.into_iter().collect()
    }

    /// Number of indexed consumers.
    pub fn len(&self) -> usize {
        self.flats.len()
    }

    /// Whether no consumer is indexed.
    pub fn is_empty(&self) -> bool {
        self.flats.is_empty()
    }

    /// Number of distinct indexed terms (posting lists).
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }
}

/// Memoized item–item cosine similarities, keyed by
/// `(min(a, b), max(a, b), min_overlap)` — [`crate::itemcf::item_cosine`]
/// is symmetric, bitwise — and valid only for one ratings-matrix version.
#[derive(Debug, Clone, Default)]
pub struct ItemSimCache {
    version: u64,
    sims: HashMap<(u64, u64, usize), Option<f64>>,
    hits: u64,
    misses: u64,
}

impl ItemSimCache {
    /// Cached similarity for `key`, if computed at `version`. A version
    /// mismatch clears the cache (the ratings matrix changed). Hit/miss
    /// tallies feed the telemetry registry's cache-effectiveness gauges.
    pub fn lookup(&mut self, version: u64, key: (u64, u64, usize)) -> Option<Option<f64>> {
        self.roll(version);
        let found = self.sims.get(&key).copied();
        if found.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        found
    }

    /// Lifetime `(hits, misses)` of [`ItemSimCache::lookup`]. Survives
    /// version rolls: effectiveness is a property of the workload, not of
    /// one matrix generation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Record a computed similarity at `version`.
    pub fn insert(&mut self, version: u64, key: (u64, u64, usize), sim: Option<f64>) {
        self.roll(version);
        self.sims.insert(key, sim);
    }

    fn roll(&mut self, version: u64) {
        if self.version != version {
            self.sims.clear();
            self.version = version;
        }
    }

    /// Number of cached pairs (for tests and diagnostics).
    pub fn len(&self) -> usize {
        self.sims.len()
    }

    /// Whether the cache holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.sims.is_empty()
    }
}

/// One scored candidate during top-k selection. `Ord` is "better":
/// greater means higher score, ties broken towards the *smaller* id —
/// exactly the reference comparator
/// `sort_by(score desc, id asc)`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RankEntry {
    pub id: u64,
    pub score: f64,
}

impl Ord for RankEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score
            .partial_cmp(&other.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for RankEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for RankEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for RankEntry {}

/// Best `k` of `scored` under the reference ordering
/// `sort_by(score desc, id asc); truncate(k)`, selected with a bounded
/// min-heap instead of a full sort. Output is identical to the reference
/// because the ordering is total over unique ids.
pub(crate) fn top_k(scored: Vec<(u64, f64)>, k: usize) -> Vec<(u64, f64)> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<Reverse<RankEntry>> = BinaryHeap::with_capacity(k + 1);
    for (id, score) in scored {
        let entry = RankEntry { id, score };
        if heap.len() < k {
            heap.push(Reverse(entry));
        } else if let Some(Reverse(worst)) = heap.peek() {
            if entry > *worst {
                heap.pop();
                heap.push(Reverse(entry));
            }
        }
    }
    let mut best: Vec<RankEntry> = heap.into_iter().map(|Reverse(e)| e).collect();
    best.sort_by(|a, b| b.cmp(a));
    best.into_iter().map(|e| (e.id, e.score)).collect()
}

/// Map `f` over `items` on all available cores, preserving order — the
/// result is element-for-element identical to `items.iter().map(f)`.
/// Chunks are scored independently and concatenated in chunk order, so
/// the merge is deterministic.
#[cfg(feature = "parallel")]
pub(crate) fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(|| part.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for handle in handles {
            out.extend(handle.join().expect("par_map worker panicked"));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(pairs: &[(&str, &str, &str, f64)]) -> Profile {
        let mut p = Profile::new();
        for (cat, sub, term, w) in pairs {
            p.category_mut(cat).sub_mut(sub).set(*term, *w);
        }
        p
    }

    #[test]
    fn update_replaces_old_postings() {
        let mut index = ProfileIndex::new();
        index.update(1, &profile(&[("books", "prog", "rust", 1.0)]));
        assert_eq!(
            index.candidates(&index.flat(1).unwrap().vector.clone()),
            vec![1]
        );
        // profile drifts to a different term: the old posting must vanish
        index.update(1, &profile(&[("music", "jazz", "sax", 1.0)]));
        let old_term = TermVector::from_pairs([("books/prog/rust", 1.0)]);
        assert!(index.candidates(&old_term).is_empty());
        let new_term = TermVector::from_pairs([("music/jazz/sax", 1.0)]);
        assert_eq!(index.candidates(&new_term), vec![1]);
        assert_eq!(index.term_count(), 1);
    }

    #[test]
    fn remove_unlinks_everything() {
        let mut index = ProfileIndex::new();
        index.update(1, &profile(&[("books", "prog", "rust", 1.0)]));
        index.update(2, &profile(&[("books", "prog", "rust", 1.0)]));
        index.remove(1);
        assert!(index.flat(1).is_none());
        let term = TermVector::from_pairs([("books/prog/rust", 1.0)]);
        assert_eq!(index.candidates(&term), vec![2]);
        index.remove(2);
        assert!(index.is_empty());
        assert_eq!(index.term_count(), 0);
    }

    #[test]
    fn candidates_union_is_sorted_and_deduplicated() {
        let mut index = ProfileIndex::new();
        index.update(3, &profile(&[("b", "p", "x", 1.0), ("b", "p", "y", 1.0)]));
        index.update(1, &profile(&[("b", "p", "x", 1.0)]));
        index.update(2, &profile(&[("b", "p", "y", 1.0)]));
        let target = TermVector::from_pairs([("b/p/x", 1.0), ("b/p/y", 1.0)]);
        assert_eq!(index.candidates(&target), vec![1, 2, 3]);
    }

    #[test]
    fn flat_norm_matches_fresh_computation() {
        let p = profile(&[
            ("books", "prog", "rust", 2.0),
            ("music", "jazz", "sax", 0.5),
        ]);
        let flat = FlatProfile::of(&p);
        assert_eq!(flat.vector, p.flatten());
        assert_eq!(flat.norm.to_bits(), p.flatten().norm().to_bits());
    }

    #[test]
    fn top_k_matches_reference_sort() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..50 {
            let n = rng.gen_range(0..40usize);
            let scored: Vec<(u64, f64)> = (0..n)
                .map(|i| (i as u64, (rng.gen_range(0..5u32) as f64) / 4.0))
                .collect();
            for k in [0usize, 1, 3, 10, 100] {
                let mut reference = scored.clone();
                reference.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                reference.truncate(k);
                assert_eq!(top_k(scored.clone(), k), reference);
            }
        }
    }

    #[test]
    fn item_sim_cache_invalidates_on_version_change() {
        let mut cache = ItemSimCache::default();
        cache.insert(1, (1, 2, 2), Some(0.5));
        assert_eq!(cache.lookup(1, (1, 2, 2)), Some(Some(0.5)));
        // same version, unknown key
        assert_eq!(cache.lookup(1, (1, 3, 2)), None);
        // version moves on: everything is stale
        assert_eq!(cache.lookup(2, (1, 2, 2)), None);
        assert!(cache.is_empty());
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        assert_eq!(par_map(&items, |x| x * 3 + 1), seq);
        let empty: Vec<u64> = Vec::new();
        assert!(par_map(&empty, |x| *x).is_empty());
    }
}
