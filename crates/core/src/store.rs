//! The recommendation mechanism's working data: profiles, ratings,
//! catalog knowledge and sales — an in-memory view of UserDB.
//!
//! Every consumer behaviour flows through [`RecommendStore::record_event`],
//! which simultaneously (a) updates the consumer profile by the Fig 4.5
//! rule, (b) files an observational rating for CF, and (c) maintains the
//! sales ledger and purchase baskets used by the top-seller baseline and
//! the tied-sale extension.

use crate::learning::{BehaviorEvent, BehaviorKind, LearnerConfig, ProfileLearner};
use crate::profile::{ConsumerId, Profile};
use crate::ratings::RatingsMatrix;
use ecp::merchandise::{Catalog, ItemId, Merchandise};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Aggregated mechanism state the recommenders read.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RecommendStore {
    /// Profile learner applied on every event.
    pub learner: ProfileLearner,
    profiles: BTreeMap<u64, Profile>,
    ratings: RatingsMatrix,
    catalog: Catalog,
    sales: BTreeMap<u64, u32>,
    purchased: BTreeMap<u64, BTreeSet<u64>>,
    baskets: Vec<Vec<u64>>,
}

impl RecommendStore {
    /// Empty store with default learner configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty store with an explicit learner configuration.
    pub fn with_learner(config: LearnerConfig) -> Self {
        RecommendStore { learner: ProfileLearner::new(config), ..Self::default() }
    }

    /// Make an item known to the mechanism (from marketplace offers or
    /// seller catalogs).
    pub fn upsert_item(&mut self, item: Merchandise) {
        self.catalog.add(item);
    }

    /// Known catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Record one behaviour event against a known item: updates profile,
    /// ratings, and (for purchases and auction wins) the sales ledger.
    pub fn record_event(&mut self, consumer: ConsumerId, item: ItemId, kind: BehaviorKind) {
        let Some(merch) = self.catalog.get(item).cloned() else {
            return;
        };
        let event = BehaviorEvent::new(kind, merch.category.clone(), merch.terms.clone());
        let profile = self.profiles.entry(consumer.0).or_default();
        self.learner.apply(profile, &event);
        self.ratings.observe_behavior(consumer, item, kind);
        if matches!(kind, BehaviorKind::Purchase | BehaviorKind::AuctionWin) {
            *self.sales.entry(item.0).or_insert(0) += 1;
            self.purchased.entry(consumer.0).or_default().insert(item.0);
        }
    }

    /// Record a multi-item checkout basket (drives tied-sale mining).
    pub fn record_basket(&mut self, consumer: ConsumerId, items: &[ItemId]) {
        for item in items {
            self.record_event(consumer, *item, BehaviorKind::Purchase);
        }
        if items.len() > 1 {
            self.baskets.push(items.iter().map(|i| i.0).collect());
        }
    }

    /// Profile of `consumer`, if any behaviour was recorded.
    pub fn profile(&self, consumer: ConsumerId) -> Option<&Profile> {
        self.profiles.get(&consumer.0)
    }

    /// Insert or replace a profile wholesale (used when loading from
    /// UserDB).
    pub fn put_profile(&mut self, consumer: ConsumerId, profile: Profile) {
        self.profiles.insert(consumer.0, profile);
    }

    /// Iterate `(consumer, profile)`.
    pub fn profiles(&self) -> impl Iterator<Item = (ConsumerId, &Profile)> {
        self.profiles.iter().map(|(c, p)| (ConsumerId(*c), p))
    }

    /// Number of consumers with profiles.
    pub fn consumer_count(&self) -> usize {
        self.profiles.len()
    }

    /// The observational ratings matrix.
    pub fn ratings(&self) -> &RatingsMatrix {
        &self.ratings
    }

    /// Units sold of `item` (purchases + auction wins).
    pub fn units_sold(&self, item: ItemId) -> u32 {
        self.sales.get(&item.0).copied().unwrap_or(0)
    }

    /// Items `consumer` has purchased.
    pub fn purchased_by(&self, consumer: ConsumerId) -> BTreeSet<ItemId> {
        self.purchased
            .get(&consumer.0)
            .map(|s| s.iter().map(|i| ItemId(*i)).collect())
            .unwrap_or_default()
    }

    /// Best sellers as `(item, units)`, best first.
    pub fn top_sellers(&self, k: usize) -> Vec<(ItemId, u32)> {
        let mut ranked: Vec<(ItemId, u32)> =
            self.sales.iter().map(|(i, n)| (ItemId(*i), *n)).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// Recorded multi-item baskets (for association mining).
    pub fn baskets(&self) -> impl Iterator<Item = Vec<ItemId>> + '_ {
        self.baskets.iter().map(|b| b.iter().map(|i| ItemId(*i)).collect())
    }

    /// Decay every profile's interest by `factor` and compact to the
    /// learner's term budget — the PA's periodic maintenance pass
    /// (drifting interests fade; empty profiles disappear).
    pub fn decay_all_profiles(&mut self, factor: f64) {
        let max_terms = self.learner.config.max_terms;
        for profile in self.profiles.values_mut() {
            for (_, cp) in profile.iter_mut_categories() {
                cp.terms.scale(factor);
                for v in cp.subs.values_mut() {
                    v.scale(factor);
                }
            }
            profile.compact(max_terms);
        }
        self.profiles.retain(|_, p| !p.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecp::merchandise::{CategoryPath, Money};
    use ecp::terms::TermVector;

    fn merch(id: u64, name: &str) -> Merchandise {
        Merchandise {
            id: ItemId(id),
            name: name.into(),
            category: CategoryPath::new("books", "programming"),
            terms: TermVector::from_pairs([(name.to_lowercase(), 1.0)]),
            list_price: Money::from_units(10),
            seller: 1,
        }
    }

    fn store_with_items(n: u64) -> RecommendStore {
        let mut s = RecommendStore::new();
        for id in 1..=n {
            s.upsert_item(merch(id, &format!("item{id}")));
        }
        s
    }

    #[test]
    fn record_event_touches_profile_ratings_and_sales() {
        let mut s = store_with_items(2);
        s.record_event(ConsumerId(1), ItemId(1), BehaviorKind::Purchase);
        assert!(s.profile(ConsumerId(1)).unwrap().total_interest() > 0.0);
        assert_eq!(s.ratings().rating(ConsumerId(1), ItemId(1)), Some(1.0));
        assert_eq!(s.units_sold(ItemId(1)), 1);
        assert!(s.purchased_by(ConsumerId(1)).contains(&ItemId(1)));
    }

    #[test]
    fn query_events_do_not_count_as_sales() {
        let mut s = store_with_items(1);
        s.record_event(ConsumerId(1), ItemId(1), BehaviorKind::Query);
        assert_eq!(s.units_sold(ItemId(1)), 0);
        assert!(s.purchased_by(ConsumerId(1)).is_empty());
        assert!(s.ratings().rating(ConsumerId(1), ItemId(1)).is_some());
    }

    #[test]
    fn unknown_item_events_are_ignored() {
        let mut s = store_with_items(1);
        s.record_event(ConsumerId(1), ItemId(99), BehaviorKind::Purchase);
        assert!(s.profile(ConsumerId(1)).is_none());
        assert_eq!(s.ratings().len(), 0);
    }

    #[test]
    fn top_sellers_rank_by_units() {
        let mut s = store_with_items(3);
        for _ in 0..3 {
            s.record_event(ConsumerId(1), ItemId(2), BehaviorKind::Purchase);
        }
        s.record_event(ConsumerId(1), ItemId(1), BehaviorKind::Purchase);
        let top = s.top_sellers(2);
        assert_eq!(top[0].0, ItemId(2));
        assert_eq!(top[0].1, 3);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn baskets_record_only_multi_item_checkouts() {
        let mut s = store_with_items(3);
        s.record_basket(ConsumerId(1), &[ItemId(1)]);
        s.record_basket(ConsumerId(1), &[ItemId(2), ItemId(3)]);
        let baskets: Vec<Vec<ItemId>> = s.baskets().collect();
        assert_eq!(baskets.len(), 1);
        assert_eq!(baskets[0], vec![ItemId(2), ItemId(3)]);
        // all items still counted as purchases
        assert_eq!(s.units_sold(ItemId(1)), 1);
        assert_eq!(s.units_sold(ItemId(2)), 1);
    }

    #[test]
    fn put_profile_round_trips() {
        let mut s = RecommendStore::new();
        let mut p = Profile::new();
        p.category_mut("books").terms.set("x", 1.0);
        s.put_profile(ConsumerId(9), p.clone());
        assert_eq!(s.profile(ConsumerId(9)), Some(&p));
        assert_eq!(s.consumer_count(), 1);
        assert_eq!(s.profiles().count(), 1);
    }
}
