//! The recommendation mechanism's working data: profiles, ratings,
//! catalog knowledge and sales — an in-memory view of UserDB.
//!
//! Every consumer behaviour flows through [`RecommendStore::record_event`],
//! which simultaneously (a) updates the consumer profile by the Fig 4.5
//! rule, (b) files an observational rating for CF, and (c) maintains the
//! sales ledger and purchase baskets used by the top-seller baseline and
//! the tied-sale extension.

use crate::ann::LshIndex;
use crate::index::{FlatProfile, ItemSimCache, ProfileIndex};
use crate::learning::{BehaviorEvent, BehaviorKind, LearnerConfig, ProfileLearner};
use crate::profile::{ConsumerId, Profile};
use crate::ratings::RatingsMatrix;
use crate::similarity::{vector_similarity_with_norms, SimilarityConfig};
use ecp::merchandise::{Catalog, ItemId, Merchandise};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Aggregated mechanism state the recommenders read.
///
/// Alongside the primary data the store maintains two derived
/// structures (see [`crate::index`]): a [`ProfileIndex`] kept in lock
/// step with `profiles` by every mutating method, and an [`ItemSimCache`]
/// memoizing item–item cosines per ratings-matrix version. Neither is
/// serialized — deserialization rebuilds the index from the profiles and
/// starts with a cold cache, so round-tripping a store preserves every
/// query answer.
#[derive(Debug, Default)]
pub struct RecommendStore {
    /// Profile learner applied on every event.
    pub learner: ProfileLearner,
    profiles: BTreeMap<u64, Profile>,
    ratings: RatingsMatrix,
    catalog: Catalog,
    sales: BTreeMap<u64, u32>,
    purchased: BTreeMap<u64, BTreeSet<u64>>,
    baskets: Vec<Vec<u64>>,
    index: ProfileIndex,
    item_sims: Mutex<ItemSimCache>,
    /// Lazily built LSH index for [`SimilarityConfig::ann`] queries,
    /// kept in lock step with `index` by the incremental update paths
    /// and invalidated (rebuilt on next ANN query) by wholesale ones.
    ann: Mutex<Option<LshIndex>>,
    /// Reusable candidate-id scratch so steady-state queries don't
    /// allocate for candidate generation.
    query_scratch: Mutex<Vec<u64>>,
}

impl Clone for RecommendStore {
    fn clone(&self) -> Self {
        RecommendStore {
            learner: self.learner,
            profiles: self.profiles.clone(),
            ratings: self.ratings.clone(),
            catalog: self.catalog.clone(),
            sales: self.sales.clone(),
            purchased: self.purchased.clone(),
            baskets: self.baskets.clone(),
            index: self.index.clone(),
            item_sims: Mutex::new(self.item_sims.lock().clone()),
            ann: Mutex::new(self.ann.lock().clone()),
            query_scratch: Mutex::new(Vec::new()),
        }
    }
}

// Manual serde impls: the JSON shape is exactly what the old derive
// produced for the seven data fields (PA snapshots embed this store), and
// the derived structures stay out of the payload.
impl Serialize for RecommendStore {
    fn serialize_value(&self) -> serde::value::Value {
        let mut m = serde::value::Map::new();
        m.insert("learner".to_string(), self.learner.serialize_value());
        m.insert("profiles".to_string(), self.profiles.serialize_value());
        m.insert("ratings".to_string(), self.ratings.serialize_value());
        m.insert("catalog".to_string(), self.catalog.serialize_value());
        m.insert("sales".to_string(), self.sales.serialize_value());
        m.insert("purchased".to_string(), self.purchased.serialize_value());
        m.insert("baskets".to_string(), self.baskets.serialize_value());
        serde::value::Value::Object(m)
    }
}

impl Deserialize for RecommendStore {
    fn deserialize_value(v: &serde::value::Value) -> Result<Self, serde::Error> {
        let m = serde::__expect_object(v, "RecommendStore")?;
        let profiles: BTreeMap<u64, Profile> = serde::__get_field(m, "RecommendStore", "profiles")?;
        let index = ProfileIndex::rebuild(profiles.iter().map(|(id, p)| (*id, p)));
        Ok(RecommendStore {
            learner: serde::__get_field(m, "RecommendStore", "learner")?,
            ratings: serde::__get_field(m, "RecommendStore", "ratings")?,
            catalog: serde::__get_field(m, "RecommendStore", "catalog")?,
            sales: serde::__get_field(m, "RecommendStore", "sales")?,
            purchased: serde::__get_field(m, "RecommendStore", "purchased")?,
            baskets: serde::__get_field(m, "RecommendStore", "baskets")?,
            profiles,
            index,
            item_sims: Mutex::new(ItemSimCache::default()),
            ann: Mutex::new(None),
            query_scratch: Mutex::new(Vec::new()),
        })
    }
}

impl RecommendStore {
    /// Empty store with default learner configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty store with an explicit learner configuration.
    pub fn with_learner(config: LearnerConfig) -> Self {
        RecommendStore {
            learner: ProfileLearner::new(config),
            ..Self::default()
        }
    }

    /// Make an item known to the mechanism (from marketplace offers or
    /// seller catalogs).
    pub fn upsert_item(&mut self, item: Merchandise) {
        self.catalog.add(item);
    }

    /// Known catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Record one behaviour event against a known item: updates profile,
    /// ratings, and (for purchases and auction wins) the sales ledger.
    pub fn record_event(&mut self, consumer: ConsumerId, item: ItemId, kind: BehaviorKind) {
        let Some(merch) = self.catalog.get(item).cloned() else {
            return;
        };
        let event = BehaviorEvent::new(kind, merch.category, merch.terms);
        let profile = self.profiles.entry(consumer.0).or_default();
        // incremental path: the Fig 4.5 update reports its flat-index
        // footprint and only those entries are touched — no re-flatten,
        // cost O(changed terms) regardless of profile size
        let delta = self.learner.apply_indexed(profile, &event);
        self.index.apply_delta(consumer.0, &delta);
        if !delta.is_empty() {
            if let Some(lsh) = self.ann.get_mut().as_mut() {
                if let Some(flat) = self.index.flat(consumer.0) {
                    lsh.update(consumer.0, &flat.vector);
                }
            }
        }
        self.ratings.observe_behavior(consumer, item, kind);
        if matches!(kind, BehaviorKind::Purchase | BehaviorKind::AuctionWin) {
            *self.sales.entry(item.0).or_insert(0) += 1;
            self.purchased.entry(consumer.0).or_default().insert(item.0);
        }
    }

    /// Record a multi-item checkout basket (drives tied-sale mining).
    pub fn record_basket(&mut self, consumer: ConsumerId, items: &[ItemId]) {
        for item in items {
            self.record_event(consumer, *item, BehaviorKind::Purchase);
        }
        if items.len() > 1 {
            self.baskets.push(items.iter().map(|i| i.0).collect());
        }
    }

    /// Profile of `consumer`, if any behaviour was recorded.
    pub fn profile(&self, consumer: ConsumerId) -> Option<&Profile> {
        self.profiles.get(&consumer.0)
    }

    /// Insert or replace a profile wholesale (used when loading from
    /// UserDB).
    pub fn put_profile(&mut self, consumer: ConsumerId, profile: Profile) {
        self.index.update(consumer.0, &profile);
        if let Some(lsh) = self.ann.get_mut().as_mut() {
            if let Some(flat) = self.index.flat(consumer.0) {
                lsh.update(consumer.0, &flat.vector);
            }
        }
        self.profiles.insert(consumer.0, profile);
    }

    /// Iterate `(consumer, profile)`.
    pub fn profiles(&self) -> impl Iterator<Item = (ConsumerId, &Profile)> {
        self.profiles.iter().map(|(c, p)| (ConsumerId(*c), p))
    }

    /// Number of consumers with profiles.
    pub fn consumer_count(&self) -> usize {
        self.profiles.len()
    }

    /// The observational ratings matrix.
    pub fn ratings(&self) -> &RatingsMatrix {
        &self.ratings
    }

    /// Units sold of `item` (purchases + auction wins).
    pub fn units_sold(&self, item: ItemId) -> u32 {
        self.sales.get(&item.0).copied().unwrap_or(0)
    }

    /// Items `consumer` has purchased.
    pub fn purchased_by(&self, consumer: ConsumerId) -> BTreeSet<ItemId> {
        self.purchased
            .get(&consumer.0)
            .map(|s| s.iter().map(|i| ItemId(*i)).collect())
            .unwrap_or_default()
    }

    /// Best sellers as `(item, units)`, best first.
    pub fn top_sellers(&self, k: usize) -> Vec<(ItemId, u32)> {
        let mut ranked: Vec<(ItemId, u32)> =
            self.sales.iter().map(|(i, n)| (ItemId(*i), *n)).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// Recorded multi-item baskets (for association mining).
    pub fn baskets(&self) -> impl Iterator<Item = Vec<ItemId>> + '_ {
        self.baskets
            .iter()
            .map(|b| b.iter().map(|i| ItemId(*i)).collect())
    }

    /// Decay every profile's interest by `factor` and compact to the
    /// learner's term budget — the PA's periodic maintenance pass
    /// (drifting interests fade; empty profiles disappear).
    pub fn decay_all_profiles(&mut self, factor: f64) {
        let max_terms = self.learner.config.max_terms;
        for profile in self.profiles.values_mut() {
            for (_, cp) in profile.iter_mut_categories() {
                cp.terms.scale(factor);
                for v in cp.subs.values_mut() {
                    v.scale(factor);
                }
            }
            profile.compact(max_terms);
        }
        self.profiles.retain(|_, p| !p.is_empty());
        // every profile changed: rebuilding wholesale costs the same as
        // touching each entry and leaves no stale postings behind
        self.index = ProfileIndex::rebuild(self.profiles.iter().map(|(id, p)| (*id, p)));
        // every signature is stale too — rebuilt lazily on the next ANN
        // query
        *self.ann.get_mut() = None;
    }

    /// The query-serving profile index (flat-profile cache + posting
    /// lists), maintained in lock step with the profiles.
    pub fn profile_index(&self) -> &ProfileIndex {
        &self.index
    }

    /// Cached flattened profile (vector + norm) of `consumer`, if any.
    pub fn flat_profile(&self, consumer: ConsumerId) -> Option<&FlatProfile> {
        self.index.flat(consumer.0)
    }

    /// The `k` consumers most similar to `consumer`, best first —
    /// identical output to running
    /// [`crate::similarity::nearest_neighbours`] over
    /// [`Self::profiles`] minus the consumer themself, but served from
    /// the index: only consumers sharing at least one flattened term
    /// with the target are scored (lossless, because zero-overlap pairs
    /// score exactly `0.0` under every method and the default
    /// `neighbour_floor` of `0.0` filters them), the flattened vectors
    /// and norms come from the cache, and the ranking uses a bounded
    /// top-k heap instead of a full sort. A negative
    /// [`SimilarityConfig::neighbour_floor`] admits zero-similarity
    /// candidates, so pruning would be lossy — that case falls back to
    /// scanning every cached flat profile.
    pub fn nearest_neighbours(
        &self,
        consumer: ConsumerId,
        config: &SimilarityConfig,
        k: usize,
    ) -> Vec<(ConsumerId, f64)> {
        let Some(target) = self.index.flat(consumer.0) else {
            return Vec::new();
        };
        if config.neighbour_floor < 0.0 {
            // pruning (posting-list or LSH) is lossy here: scan everyone
            let candidates: Vec<u64> = self
                .index
                .flats()
                .map(|(id, _)| id)
                .filter(|id| *id != consumer.0)
                .collect();
            let scored = self.score_profile_candidates(target, &candidates, config);
            return Self::finish_top_k(scored, k);
        }
        if let Some(ann_cfg) = config.ann {
            // ANN path: candidates from LSH buckets, re-ranked with the
            // exact measure over the packed vectors
            let mut scratch = self.query_scratch.lock();
            self.with_ann(&ann_cfg, |lsh| {
                lsh.candidates(&target.vector, ann_cfg.probes, &mut scratch);
            });
            scratch.retain(|id| *id != consumer.0);
            let scored = if let Some((tp, tnorm, tlen)) = self.index.packed(consumer.0) {
                crate::ann::score_packed(&self.index, tp, tnorm, tlen, &scratch, config)
            } else {
                Vec::new()
            };
            return Self::finish_top_k(scored, k);
        }
        let mut scratch = self.query_scratch.lock();
        self.index.candidates_into(&target.vector, &mut scratch);
        scratch.retain(|id| *id != consumer.0);
        let scored = self.score_profile_candidates(target, &scratch, config);
        Self::finish_top_k(scored, k)
    }

    fn finish_top_k(scored: Vec<(u64, f64)>, k: usize) -> Vec<(ConsumerId, f64)> {
        crate::index::top_k(scored, k)
            .into_iter()
            .map(|(id, s)| (ConsumerId(id), s))
            .collect()
    }

    /// Run `f` against the LSH index for `cfg`, building (or rebuilding,
    /// if the last build used different parameters) it from the flat
    /// cache first if needed.
    fn with_ann<R>(&self, cfg: &crate::ann::AnnConfig, f: impl FnOnce(&LshIndex) -> R) -> R {
        let mut guard = self.ann.lock();
        let stale = !guard.as_ref().is_some_and(|lsh| lsh.matches(cfg));
        if stale {
            let mut lsh = LshIndex::new(*cfg);
            for (id, flat) in self.index.flats() {
                lsh.update(id, &flat.vector);
            }
            *guard = Some(lsh);
        }
        f(guard.as_ref().expect("ANN index just ensured"))
    }

    /// Pre-build the LSH index for `config` (if `config.ann` is set) so
    /// the first query doesn't pay the build — benches and batch jobs.
    pub fn warm_ann(&self, config: &SimilarityConfig) {
        if let Some(ann_cfg) = config.ann {
            self.with_ann(&ann_cfg, |_| ());
        }
    }

    /// Reference full-scan neighbour search (flattens every profile per
    /// call). Kept for equivalence tests and benchmarks; prefer
    /// [`Self::nearest_neighbours`].
    pub fn nearest_neighbours_naive(
        &self,
        consumer: ConsumerId,
        config: &SimilarityConfig,
        k: usize,
    ) -> Vec<(ConsumerId, f64)> {
        let Some(profile) = self.profile(consumer) else {
            return Vec::new();
        };
        crate::similarity::nearest_neighbours(
            profile,
            self.profiles().filter(|(id, _)| *id != consumer),
            config,
            k,
        )
    }

    fn score_profile_candidates(
        &self,
        target: &FlatProfile,
        candidates: &[u64],
        config: &SimilarityConfig,
    ) -> Vec<(u64, f64)> {
        let score_one = |id: &u64| -> Option<(u64, f64)> {
            let flat = self.index.flat(*id)?;
            let s = vector_similarity_with_norms(
                &target.vector,
                target.norm,
                &flat.vector,
                flat.norm,
                config,
            );
            (s > config.neighbour_floor).then_some((*id, s))
        };
        #[cfg(feature = "parallel")]
        if candidates.len() >= 64 {
            return crate::index::par_map(candidates, score_one)
                .into_iter()
                .flatten()
                .collect();
        }
        candidates.iter().filter_map(score_one).collect()
    }

    /// [`crate::itemcf::item_cosine`] served through the store's
    /// memoized cache. The cache key is the unordered item pair plus
    /// `min_overlap` (the cosine is symmetric), and the whole cache is
    /// dropped whenever the ratings matrix version moves — so the answer
    /// is always identical to recomputing from scratch.
    pub fn item_cosine_cached(&self, a: ItemId, b: ItemId, min_overlap: usize) -> Option<f64> {
        let key = (a.0.min(b.0), a.0.max(b.0), min_overlap);
        let version = self.ratings.version();
        let mut cache = self.item_sims.lock();
        if let Some(hit) = cache.lookup(version, key) {
            return hit;
        }
        let sim = crate::itemcf::item_cosine(&self.ratings, a, b, min_overlap);
        cache.insert(version, key, sim);
        sim
    }

    /// Number of item pairs currently memoized (tests and diagnostics).
    pub fn item_sim_cache_len(&self) -> usize {
        self.item_sims.lock().len()
    }

    /// Lifetime `(hits, misses)` of the item-similarity cache.
    pub fn item_sim_cache_stats(&self) -> (u64, u64) {
        self.item_sims.lock().stats()
    }

    /// Lifetime `(invalidated, capacity_evicted)` of the item-similarity
    /// cache — see [`ItemSimCache::eviction_stats`].
    pub fn item_sim_eviction_stats(&self) -> (u64, u64) {
        self.item_sims.lock().eviction_stats()
    }

    /// Bound the item-similarity cache to `capacity` pairs.
    pub fn set_item_sim_cache_capacity(&self, capacity: usize) {
        self.item_sims.lock().set_capacity(capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecp::merchandise::{CategoryPath, Money};
    use ecp::terms::TermVector;

    fn merch(id: u64, name: &str) -> Merchandise {
        Merchandise {
            id: ItemId(id),
            name: name.into(),
            category: CategoryPath::new("books", "programming"),
            terms: TermVector::from_pairs([(name.to_lowercase(), 1.0)]),
            list_price: Money::from_units(10),
            seller: 1,
        }
    }

    fn store_with_items(n: u64) -> RecommendStore {
        let mut s = RecommendStore::new();
        for id in 1..=n {
            s.upsert_item(merch(id, &format!("item{id}")));
        }
        s
    }

    #[test]
    fn record_event_touches_profile_ratings_and_sales() {
        let mut s = store_with_items(2);
        s.record_event(ConsumerId(1), ItemId(1), BehaviorKind::Purchase);
        assert!(s.profile(ConsumerId(1)).unwrap().total_interest() > 0.0);
        assert_eq!(s.ratings().rating(ConsumerId(1), ItemId(1)), Some(1.0));
        assert_eq!(s.units_sold(ItemId(1)), 1);
        assert!(s.purchased_by(ConsumerId(1)).contains(&ItemId(1)));
    }

    #[test]
    fn query_events_do_not_count_as_sales() {
        let mut s = store_with_items(1);
        s.record_event(ConsumerId(1), ItemId(1), BehaviorKind::Query);
        assert_eq!(s.units_sold(ItemId(1)), 0);
        assert!(s.purchased_by(ConsumerId(1)).is_empty());
        assert!(s.ratings().rating(ConsumerId(1), ItemId(1)).is_some());
    }

    #[test]
    fn unknown_item_events_are_ignored() {
        let mut s = store_with_items(1);
        s.record_event(ConsumerId(1), ItemId(99), BehaviorKind::Purchase);
        assert!(s.profile(ConsumerId(1)).is_none());
        assert_eq!(s.ratings().len(), 0);
    }

    #[test]
    fn top_sellers_rank_by_units() {
        let mut s = store_with_items(3);
        for _ in 0..3 {
            s.record_event(ConsumerId(1), ItemId(2), BehaviorKind::Purchase);
        }
        s.record_event(ConsumerId(1), ItemId(1), BehaviorKind::Purchase);
        let top = s.top_sellers(2);
        assert_eq!(top[0].0, ItemId(2));
        assert_eq!(top[0].1, 3);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn baskets_record_only_multi_item_checkouts() {
        let mut s = store_with_items(3);
        s.record_basket(ConsumerId(1), &[ItemId(1)]);
        s.record_basket(ConsumerId(1), &[ItemId(2), ItemId(3)]);
        let baskets: Vec<Vec<ItemId>> = s.baskets().collect();
        assert_eq!(baskets.len(), 1);
        assert_eq!(baskets[0], vec![ItemId(2), ItemId(3)]);
        // all items still counted as purchases
        assert_eq!(s.units_sold(ItemId(1)), 1);
        assert_eq!(s.units_sold(ItemId(2)), 1);
    }

    #[test]
    fn put_profile_round_trips() {
        let mut s = RecommendStore::new();
        let mut p = Profile::new();
        p.category_mut("books").terms.set("x", 1.0);
        s.put_profile(ConsumerId(9), p.clone());
        assert_eq!(s.profile(ConsumerId(9)), Some(&p));
        assert_eq!(s.consumer_count(), 1);
        assert_eq!(s.profiles().count(), 1);
    }

    /// The incrementally maintained index must always equal a from-scratch
    /// rebuild of the current profiles.
    fn assert_index_fresh(s: &RecommendStore) {
        let rebuilt = crate::index::ProfileIndex::rebuild(s.profiles().map(|(c, p)| (c.0, p)));
        assert_eq!(s.profile_index().len(), rebuilt.len());
        assert_eq!(s.profile_index().term_count(), rebuilt.term_count());
        for (id, flat) in rebuilt.flats() {
            let live = s.profile_index().flat(id).expect("indexed consumer");
            assert_eq!(live.vector, flat.vector);
            assert_eq!(live.norm.to_bits(), flat.norm.to_bits());
        }
    }

    #[test]
    fn index_tracks_every_mutation_path() {
        let mut s = store_with_items(3);
        assert_index_fresh(&s);
        s.record_event(ConsumerId(1), ItemId(1), BehaviorKind::Purchase);
        s.record_event(ConsumerId(2), ItemId(2), BehaviorKind::Browse);
        assert_index_fresh(&s);
        let mut p = Profile::new();
        p.category_mut("garden").sub_mut("tools").set("spade", 2.0);
        s.put_profile(ConsumerId(1), p);
        assert_index_fresh(&s);
        s.decay_all_profiles(1e-12); // decays everyone to (near) nothing
        assert_index_fresh(&s);
        assert_eq!(s.consumer_count(), 0);
        assert!(s.profile_index().is_empty());
    }

    #[test]
    fn indexed_neighbours_match_reference_scan() {
        let mut s = store_with_items(3);
        for u in 1..=6u64 {
            s.record_event(ConsumerId(u), ItemId(1 + u % 3), BehaviorKind::Purchase);
            s.record_event(ConsumerId(u), ItemId(1 + (u + 1) % 3), BehaviorKind::Browse);
        }
        let cfg = crate::similarity::SimilarityConfig::default();
        for u in 1..=6u64 {
            assert_eq!(
                s.nearest_neighbours(ConsumerId(u), &cfg, 3),
                s.nearest_neighbours_naive(ConsumerId(u), &cfg, 3),
            );
        }
        assert!(s.nearest_neighbours(ConsumerId(999), &cfg, 3).is_empty());
    }

    #[test]
    fn ann_neighbours_are_a_subset_of_exact_with_matching_scores() {
        use crate::ann::AnnConfig;
        let mut s = store_with_items(6);
        for u in 1..=40u64 {
            s.record_event(ConsumerId(u), ItemId(1 + u % 6), BehaviorKind::Purchase);
            s.record_event(ConsumerId(u), ItemId(1 + (u + 1) % 6), BehaviorKind::Browse);
            s.record_event(ConsumerId(u), ItemId(1 + (u + 3) % 6), BehaviorKind::Query);
        }
        // generous parameters: few bits, many probes ⇒ near-exhaustive
        let ann = crate::similarity::SimilarityConfig {
            ann: Some(AnnConfig {
                bits: 2,
                tables: 8,
                probes: 2,
                seed: 5,
            }),
            ..crate::similarity::SimilarityConfig::default()
        };
        let exact = crate::similarity::SimilarityConfig::default();
        for u in 1..=40u64 {
            let approx = s.nearest_neighbours(ConsumerId(u), &ann, 10);
            let full = s.nearest_neighbours(ConsumerId(u), &exact, 40);
            for (id, score) in &approx {
                let reference = full
                    .iter()
                    .find(|(fid, _)| fid == id)
                    .unwrap_or_else(|| panic!("ANN neighbour {id} not in exact scan"));
                assert!(
                    (reference.1 - score).abs() < 1e-12,
                    "re-rank score drifted for {id}: {} vs {}",
                    reference.1,
                    score
                );
            }
            // determinism: asking twice gives the same answer
            assert_eq!(approx, s.nearest_neighbours(ConsumerId(u), &ann, 10));
        }
        // mutations keep the LSH in lock step with the flat cache:
        // feedback after the index is built must be reflected
        s.record_event(ConsumerId(41), ItemId(1), BehaviorKind::Purchase);
        s.record_event(ConsumerId(42), ItemId(1), BehaviorKind::Purchase);
        let nn = s.nearest_neighbours(ConsumerId(41), &ann, 40);
        assert!(
            nn.iter().any(|(id, _)| *id == ConsumerId(42)),
            "freshly added twin consumer must be findable via ANN"
        );
    }

    #[test]
    fn item_cosine_cache_hits_and_invalidates() {
        let mut s = store_with_items(2);
        for u in 1..=4u64 {
            s.record_event(ConsumerId(u), ItemId(1), BehaviorKind::Purchase);
            s.record_event(ConsumerId(u), ItemId(2), BehaviorKind::Purchase);
        }
        let fresh = crate::itemcf::item_cosine(s.ratings(), ItemId(1), ItemId(2), 2);
        assert_eq!(s.item_cosine_cached(ItemId(1), ItemId(2), 2), fresh);
        assert_eq!(s.item_sim_cache_len(), 1);
        // symmetric argument order hits the same entry
        assert_eq!(s.item_cosine_cached(ItemId(2), ItemId(1), 2), fresh);
        assert_eq!(s.item_sim_cache_len(), 1);
        // a new observation moves the ratings version: cache must refill
        s.record_event(ConsumerId(9), ItemId(1), BehaviorKind::Query);
        let updated = crate::itemcf::item_cosine(s.ratings(), ItemId(1), ItemId(2), 2);
        assert_eq!(s.item_cosine_cached(ItemId(1), ItemId(2), 2), updated);
        assert_eq!(s.item_sim_cache_len(), 1);
        assert_ne!(fresh, updated, "norm of item 1 changed with the new rater");
    }

    #[test]
    fn serde_round_trip_rebuilds_the_index() {
        let mut s = store_with_items(3);
        s.record_event(ConsumerId(1), ItemId(1), BehaviorKind::Purchase);
        s.record_event(ConsumerId(2), ItemId(2), BehaviorKind::AuctionWin);
        s.item_cosine_cached(ItemId(1), ItemId(2), 1); // warm the cache
        let back: RecommendStore =
            serde_json::from_value(serde_json::to_value(&s).unwrap()).unwrap();
        assert_index_fresh(&back);
        assert_eq!(back.consumer_count(), s.consumer_count());
        assert_eq!(back.ratings(), s.ratings());
        assert_eq!(
            back.item_sim_cache_len(),
            0,
            "cache starts cold after deserialize"
        );
        let cfg = crate::similarity::SimilarityConfig::default();
        assert_eq!(
            back.nearest_neighbours(ConsumerId(1), &cfg, 5),
            s.nearest_neighbours(ConsumerId(1), &cfg, 5),
        );
    }
}
