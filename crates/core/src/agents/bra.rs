//! The Buyer Recommend Agent (BRA).
//!
//! §3.3: *"A BRA stands for online consumer. The main functions of BRA
//! are: (1) Loading Profiles. (2) Providing the assistance of merchandise
//! query and the other bargain functions. (3) Creating recommendation
//! information."*
//!
//! One BRA exists per logged-in consumer (§4.1 principle 1: created at
//! login, disposed at logout). On a task it loads the profile from the
//! PA, creates and dispatches an MBA, and is deactivated by the BSMA
//! while the MBA roams. When the MBA returns (and its result is replayed
//! to the reactivated BRA) the BRA asks the PA for similar users'
//! preferences and generates the recommendation information it sends back
//! through the HttpA.

use crate::agents::mba::{MbaTask, MobileBuyerAgent};
use crate::agents::msg::{
    kinds, BraResponse, ConsumerTask, MarketRef, MbaLost, MbaRegister, MbaResult, PaLoad,
    PaProfile, PaRecord, PaSimilar, PaSimilarReply, RecommendedItem, ResponseBody, RoutedTask,
};
use crate::learning::BehaviorKind;
use crate::profile::{ConsumerId, Profile};
use agentsim::agent::{Agent, Ctx};
use agentsim::ids::AgentId;
use agentsim::message::Message;
use ecp::merchandise::Merchandise;
use ecp::protocol::Offer;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Agent-type tag of [`BuyerRecommendAgent`].
pub const BRA_TYPE: &str = "bra";

/// Task state the BRA is driving.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(clippy::enum_variant_names)] // Await* reads better than bare nouns
enum Pending {
    /// Waiting for the PA profile before dispatching the MBA.
    AwaitProfile { task: ConsumerTask },
    /// MBA dispatched; awaiting its result (arrives after reactivation).
    AwaitMba { task: ConsumerTask },
    /// Offers in hand; awaiting the PA's similar-user data.
    AwaitSimilar {
        task: ConsumerTask,
        offers: Vec<Offer>,
    },
}

/// The Buyer Recommend Agent.
#[derive(Debug, Serialize, Deserialize)]
pub struct BuyerRecommendAgent {
    consumer: ConsumerId,
    bsma: AgentId,
    pa: AgentId,
    httpa: AgentId,
    markets: Vec<MarketRef>,
    profile: Option<Profile>,
    pending: Option<Pending>,
    /// Weight of the collaborative term when ranking.
    collaborative_weight: f64,
    /// Neighbours requested from the PA.
    k_neighbours: usize,
    /// Microseconds before a roaming MBA is presumed lost.
    mba_timeout_us: u64,
    /// Recommendations produced over this session (for inspection).
    recommendations_made: u32,
}

impl BuyerRecommendAgent {
    /// Create a BRA for `consumer`, wired to its server-side peers.
    pub fn new(
        consumer: ConsumerId,
        bsma: AgentId,
        pa: AgentId,
        httpa: AgentId,
        markets: Vec<MarketRef>,
    ) -> Self {
        BuyerRecommendAgent {
            consumer,
            bsma,
            pa,
            httpa,
            markets,
            profile: None,
            pending: None,
            collaborative_weight: 0.7,
            k_neighbours: 10,
            mba_timeout_us: 600_000_000, // 10 simulated minutes
            recommendations_made: 0,
        }
    }

    /// Override the hybrid ranking weight (ablation knob).
    pub fn with_collaborative_weight(mut self, w: f64) -> Self {
        self.collaborative_weight = w.clamp(0.0, 1.0);
        self
    }

    /// Override the MBA loss timeout.
    pub fn with_mba_timeout_us(mut self, us: u64) -> Self {
        self.mba_timeout_us = us;
        self
    }

    fn respond(&mut self, ctx: &mut Ctx<'_>, body: ResponseBody) {
        let msg = Message::new(kinds::BRA_RESPONSE)
            .with_payload(&BraResponse {
                consumer: self.consumer,
                body,
            })
            .expect("response serializes");
        ctx.send(self.httpa, msg);
    }

    fn start_task(&mut self, ctx: &mut Ctx<'_>, task: ConsumerTask) {
        if self.pending.is_some() {
            self.respond(ctx, ResponseBody::Error("busy with a previous task".into()));
            return;
        }
        let fig = task.figure();
        ctx.note(format!("{fig}/step04 bra requests profile from pa"));
        let load = Message::new(kinds::PA_LOAD)
            .with_payload(&PaLoad {
                consumer: self.consumer,
                figure: fig.to_string(),
            })
            .expect("load serializes");
        ctx.send(self.pa, load);
        self.pending = Some(Pending::AwaitProfile { task });
    }

    fn dispatch_mba(&mut self, ctx: &mut Ctx<'_>, task: ConsumerTask) {
        let fig = task.figure();
        let (mba_task, itinerary) = match &task {
            ConsumerTask::Query {
                keywords,
                category,
                max_results,
            } => (
                MbaTask::Query {
                    keywords: keywords.clone(),
                    category: category.clone(),
                    max_results: *max_results,
                },
                self.markets.clone(),
            ),
            ConsumerTask::Buy { item, market, mode } => (
                MbaTask::Buy {
                    item: *item,
                    mode: *mode,
                },
                vec![*market],
            ),
            ConsumerTask::Auction {
                item,
                market,
                limit,
            } => (
                MbaTask::Auction {
                    item: *item,
                    limit: *limit,
                },
                vec![*market],
            ),
        };
        let create_step = if fig == "fig4.2" { "step07" } else { "step06" };
        ctx.note(format!(
            "{fig}/{create_step} bra creates mba and assigns task"
        ));
        let mba = ctx.create_agent(Box::new(MobileBuyerAgent::new(
            ctx.host(),
            self.bsma,
            ctx.self_id(),
            self.consumer,
            mba_task,
            itinerary,
        )));
        let register_step = if fig == "fig4.2" { "step08" } else { "step07" };
        ctx.note(format!("{fig}/{register_step} bra registers mba with bsma"));
        let register = Message::new(kinds::MBA_REGISTER)
            .with_payload(&MbaRegister {
                mba,
                bra: ctx.self_id(),
                consumer: self.consumer,
                timeout_us: self.mba_timeout_us,
                figure: fig.to_string(),
            })
            .expect("register serializes");
        ctx.send(self.bsma, register);
        self.pending = Some(Pending::AwaitMba { task });
    }

    /// Rank candidates: the paper's combination of similar users'
    /// preferences with the queried merchandise information and the
    /// consumer's own profile.
    fn generate_recommendations(
        &self,
        offers: &[Offer],
        data: &PaSimilarReply,
        task: &ConsumerTask,
        k: usize,
    ) -> Vec<RecommendedItem> {
        let (keywords, category) = match task {
            ConsumerTask::Query {
                keywords, category, ..
            } => (keywords.clone(), category.clone()),
            _ => (Vec::new(), None),
        };
        let context = crate::recommend::QueryContext { keywords, category };
        // candidate pool: queried offers + neighbour preferences
        let mut pool: BTreeMap<u64, (Merchandise, f64)> = BTreeMap::new();
        for (m, w) in &data.neighbour_preferences {
            pool.insert(m.id.0, (m.clone(), *w));
        }
        for offer in offers {
            pool.entry(offer.item.id.0)
                .or_insert((offer.item.clone(), 0.0));
        }
        let cw = self.collaborative_weight;
        let n_neighbours = data.neighbours.len();
        let mut recs: Vec<RecommendedItem> = pool
            .into_values()
            .map(|(m, collab)| {
                let affinity = {
                    let a = data.profile.affinity(&m.category, &m.terms);
                    a / (1.0 + a)
                };
                let relevance = context.relevance(&m);
                let content = 0.5 * affinity + 0.5 * relevance;
                let score = cw * collab + (1.0 - cw) * content;
                // explanation: name the dominant signal
                let collab_part = cw * collab;
                let affinity_part = (1.0 - cw) * 0.5 * affinity;
                let relevance_part = (1.0 - cw) * 0.5 * relevance;
                let reason = if collab_part >= affinity_part && collab_part >= relevance_part {
                    format!("preferred by {n_neighbours} consumers with similar taste")
                } else if affinity_part >= relevance_part {
                    format!("matches your interest in {}", m.category)
                } else {
                    "matches your search".to_string()
                };
                RecommendedItem {
                    item: m,
                    score,
                    reason,
                }
            })
            .filter(|r| r.score > 0.0)
            .collect();
        recs.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.item.id.cmp(&b.item.id))
        });
        recs.truncate(k);
        recs
    }

    fn record_behavior(
        &self,
        ctx: &mut Ctx<'_>,
        item: &Merchandise,
        kind: BehaviorKind,
        price: Option<ecp::merchandise::Money>,
    ) {
        let record = Message::new(kinds::PA_RECORD)
            .with_payload(&PaRecord {
                consumer: self.consumer,
                item: item.clone(),
                kind,
                price,
                at_us: ctx.now().as_micros(),
            })
            .expect("record serializes");
        ctx.send(self.pa, record);
    }

    fn handle_mba_result(&mut self, ctx: &mut Ctx<'_>, result: MbaResult) {
        let Some(Pending::AwaitMba { task }) = self.pending.take() else {
            ctx.note("bra: unexpected mba result dropped");
            return;
        };
        match result {
            MbaResult::Offers(offers) => {
                // record the query behaviour against the top offers
                for offer in offers.iter().take(3) {
                    self.record_behavior(ctx, &offer.item, BehaviorKind::Query, None);
                }
                let similar = Message::new(kinds::PA_SIMILAR)
                    .with_payload(&PaSimilar {
                        consumer: self.consumer,
                        offers: offers.iter().map(|o| o.item.clone()).collect(),
                        k_neighbours: self.k_neighbours,
                    })
                    .expect("similar serializes");
                ctx.send(self.pa, similar);
                self.pending = Some(Pending::AwaitSimilar { task, offers });
            }
            MbaResult::Bought {
                item,
                price,
                negotiated,
                rounds,
            } => {
                ctx.note("fig4.3/step13 bra records transaction and pa updates profile");
                let kind = if negotiated {
                    BehaviorKind::Negotiate
                } else {
                    BehaviorKind::Purchase
                };
                // negotiation that closed a deal is still a purchase
                self.record_behavior(ctx, &item, BehaviorKind::Purchase, Some(price));
                if negotiated {
                    self.record_behavior(ctx, &item, kind, Some(price));
                }
                ctx.note("fig4.3/step14 bra responds with receipt");
                self.respond(
                    ctx,
                    ResponseBody::Receipt {
                        item,
                        price,
                        channel: if negotiated {
                            format!("negotiated in {rounds} rounds")
                        } else {
                            "direct".into()
                        },
                    },
                );
            }
            MbaResult::BuyFailed { reason, .. } => {
                ctx.note("fig4.3/step13 bra records failed trade");
                ctx.note("fig4.3/step14 bra responds with failure");
                self.respond(ctx, ResponseBody::Error(reason));
            }
            MbaResult::AuctionDone {
                item,
                won,
                price,
                bids,
            } => {
                ctx.note("fig4.3/step13 bra records auction outcome");
                if bids > 0 {
                    self.record_behavior(ctx, &item, BehaviorKind::Bid, None);
                }
                if won {
                    self.record_behavior(ctx, &item, BehaviorKind::AuctionWin, price);
                }
                ctx.note("fig4.3/step14 bra responds with auction result");
                self.respond(ctx, ResponseBody::AuctionResult { item, won, price });
            }
        }
    }
}

impl Agent for BuyerRecommendAgent {
    fn agent_type(&self) -> &'static str {
        BRA_TYPE
    }

    fn snapshot(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("bra state serializes")
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        match msg.kind.as_str() {
            kinds::BRA_TASK => {
                if let Ok(routed) = msg.payload_as::<RoutedTask>() {
                    self.start_task(ctx, routed.task);
                }
            }
            kinds::PA_PROFILE => {
                let Ok(profile) = msg.payload_as::<PaProfile>() else {
                    return;
                };
                self.profile = Some(profile.profile);
                let Some(Pending::AwaitProfile { task }) = self.pending.take() else {
                    return;
                };
                let fig = task.figure();
                let step = if fig == "fig4.2" { "step06" } else { "step05" };
                ctx.note(format!("{fig}/{step} bra received profile"));
                self.dispatch_mba(ctx, task);
            }
            kinds::MBA_RESULT => {
                if let Ok(result) = msg.payload_as::<MbaResult>() {
                    self.handle_mba_result(ctx, result);
                }
            }
            kinds::PA_SIMILAR_REPLY => {
                let Ok(data) = msg.payload_as::<PaSimilarReply>() else {
                    return;
                };
                let Some(Pending::AwaitSimilar { task, offers }) = self.pending.take() else {
                    return;
                };
                ctx.note(
                    "fig4.2/step14 bra generates recommendation from similar users and offers",
                );
                self.profile = Some(data.profile.clone());
                let max = match &task {
                    ConsumerTask::Query { max_results, .. } => (*max_results).max(5),
                    _ => 5,
                };
                let recommendations = self.generate_recommendations(&offers, &data, &task, max);
                self.recommendations_made += 1;
                ctx.note("fig4.2/step15 bra responds with recommendations");
                self.respond(
                    ctx,
                    ResponseBody::Recommendations {
                        offers,
                        recommendations,
                    },
                );
            }
            kinds::MBA_LOST => {
                if let Ok(lost) = msg.payload_as::<MbaLost>() {
                    ctx.note(format!("bra: mba {} presumed lost", lost.mba));
                    self.pending = None;
                    self.respond(
                        ctx,
                        ResponseBody::Error("mobile buyer agent lost in transit".into()),
                    );
                }
            }
            other => {
                ctx.note(format!("bra: unhandled kind {other}"));
            }
        }
    }

    fn on_disposal(&mut self, ctx: &mut Ctx<'_>) {
        ctx.note(format!("bra for {} terminated at logout", self.consumer));
    }
}

// Integration-style tests for the BRA live in the server module and the
// workspace `tests/` directory, where a full Buyer Agent Server exists;
// unit tests here cover the pure ranking logic.
#[cfg(test)]
mod tests {
    use super::*;
    use ecp::merchandise::{CategoryPath, ItemId, Money};
    use ecp::terms::TermVector;

    fn merch(id: u64, name: &str) -> Merchandise {
        Merchandise {
            id: ItemId(id),
            name: name.into(),
            category: CategoryPath::new("books", "programming"),
            terms: TermVector::from_pairs([(name.to_lowercase(), 1.0)]),
            list_price: Money::from_units(10),
            seller: 1,
        }
    }

    fn bra() -> BuyerRecommendAgent {
        BuyerRecommendAgent::new(ConsumerId(1), AgentId(2), AgentId(3), AgentId(4), vec![])
    }

    fn reply_with(prefs: Vec<(Merchandise, f64)>) -> PaSimilarReply {
        let mut profile = Profile::new();
        profile
            .category_mut("books")
            .sub_mut("programming")
            .set("rustbook1", 1.0);
        PaSimilarReply {
            consumer: ConsumerId(1),
            profile,
            neighbours: vec![(ConsumerId(2), 0.9)],
            neighbour_preferences: prefs,
        }
    }

    #[test]
    fn recommendations_prefer_neighbour_endorsed_items() {
        let b = bra();
        let offers = vec![Offer {
            item: merch(1, "rustbook1"),
            marketplace: agentsim::ids::HostId(1),
            price: Money::from_units(10),
        }];
        let data = reply_with(vec![(merch(2, "rustbook2"), 0.9)]);
        let task = ConsumerTask::Query {
            keywords: vec!["rustbook1".into()],
            category: None,
            max_results: 5,
        };
        let recs = b.generate_recommendations(&offers, &data, &task, 5);
        assert_eq!(recs.len(), 2);
        // neighbour-endorsed item 2 has collab 0.9; offer item 1 has high
        // content relevance. With cw=0.7, item 2 should lead.
        assert_eq!(recs[0].item.id, ItemId(2));
        assert!(recs[0].score > recs[1].score);
        // explanations name the dominant signal
        assert!(
            recs[0].reason.contains("similar taste"),
            "neighbour-driven item must say so: {}",
            recs[0].reason
        );
    }

    #[test]
    fn zero_collaborative_weight_makes_content_dominate() {
        let b = bra().with_collaborative_weight(0.0);
        let offers = vec![Offer {
            item: merch(1, "rustbook1"),
            marketplace: agentsim::ids::HostId(1),
            price: Money::from_units(10),
        }];
        let data = reply_with(vec![(merch(2, "unrelated-thing"), 0.99)]);
        let task = ConsumerTask::Query {
            keywords: vec!["rustbook1".into()],
            category: None,
            max_results: 5,
        };
        let recs = b.generate_recommendations(&offers, &data, &task, 5);
        assert_eq!(
            recs[0].item.id,
            ItemId(1),
            "pure content ranks the matching offer first"
        );
    }

    #[test]
    fn recommendations_truncate_at_k() {
        let b = bra();
        let data = reply_with(
            (1..=20)
                .map(|i| (merch(i, &format!("rustbook{i}")), 0.5))
                .collect(),
        );
        let task = ConsumerTask::Query {
            keywords: vec![],
            category: None,
            max_results: 20,
        };
        let recs = b.generate_recommendations(&[], &data, &task, 3);
        assert_eq!(recs.len(), 3);
    }

    #[test]
    fn bra_state_round_trips_serde() {
        let b = bra().with_collaborative_weight(0.4);
        let v = serde_json::to_value(&b).unwrap();
        let back: BuyerRecommendAgent = serde_json::from_value(v).unwrap();
        assert_eq!(back.consumer, ConsumerId(1));
        assert!((back.collaborative_weight - 0.4).abs() < 1e-12);
    }
}
