//! The Buyer Recommend Agent (BRA).
//!
//! §3.3: *"A BRA stands for online consumer. The main functions of BRA
//! are: (1) Loading Profiles. (2) Providing the assistance of merchandise
//! query and the other bargain functions. (3) Creating recommendation
//! information."*
//!
//! One BRA exists per logged-in consumer (§4.1 principle 1: created at
//! login, disposed at logout). On a task it loads the profile from the
//! PA, creates and dispatches an MBA, and is deactivated by the BSMA
//! while the MBA roams. When the MBA returns (and its result is replayed
//! to the reactivated BRA) the BRA asks the PA for similar users'
//! preferences and generates the recommendation information it sends back
//! through the HttpA.

use crate::agents::mba::{MbaTask, MobileBuyerAgent};
use crate::agents::msg::{
    kinds, BraResponse, ConsumerTask, MarketRef, MarketStatus, MbaLost, MbaRegister, MbaResult,
    PaLoad, PaProfile, PaRecord, PaSimilar, PaSimilarReply, RecommendedItem, ResponseBody,
    RoutedTask,
};
use crate::learning::BehaviorKind;
use crate::profile::{ConsumerId, Profile};
use crate::retry::BackoffPolicy;
use agentsim::agent::{Agent, Ctx};
use agentsim::clock::{SimDuration, SimTime};
use agentsim::ids::{AgentId, HostId};
use agentsim::message::Message;
use ecp::merchandise::Merchandise;
use ecp::protocol::{self as ecpk, BuyConfirm, LedgerQuery, LedgerReply, Offer};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Agent-type tag of [`BuyerRecommendAgent`].
pub const BRA_TYPE: &str = "bra";

/// Timer tag for re-dispatching an MBA after a backoff delay.
const RETRY_TAG: u64 = 0x42_52_41; // "BRA"

/// Task state the BRA is driving.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(clippy::enum_variant_names)] // Await* reads better than bare nouns
enum Pending {
    /// Waiting for the PA profile before dispatching the MBA.
    AwaitProfile { task: ConsumerTask },
    /// MBA dispatched; awaiting its result (arrives after reactivation).
    AwaitMba {
        task: ConsumerTask,
        /// The MBA whose result (or loss notice) we expect.
        mba: AgentId,
        /// Dispatch attempts so far (0 = first try).
        attempt: u32,
        /// Durable purchase-intent id (buy tasks under durability only).
        #[serde(default)]
        intent: Option<u64>,
    },
    /// Last MBA lost; backoff timer armed before the next dispatch.
    AwaitRetry {
        task: ConsumerTask,
        attempt: u32,
        /// Durable purchase-intent id carried unchanged into the retry.
        #[serde(default)]
        intent: Option<u64>,
    },
    /// Durable buy whose MBA was lost with the outcome in doubt; the
    /// marketplace ledger has been asked whether the intent committed.
    AwaitLedger {
        task: ConsumerTask,
        intent: u64,
        market: MarketRef,
        attempt: u32,
    },
    /// Offers in hand; awaiting the PA's similar-user data.
    AwaitSimilar {
        task: ConsumerTask,
        offers: Vec<Offer>,
        /// True when falling back to CF-only (no marketplace reached).
        degraded: bool,
        /// Marketplaces that produced no offers this task.
        unreachable: Vec<MarketRef>,
    },
}

/// The Buyer Recommend Agent.
#[derive(Debug, Serialize, Deserialize)]
pub struct BuyerRecommendAgent {
    consumer: ConsumerId,
    bsma: AgentId,
    pa: AgentId,
    httpa: AgentId,
    markets: Vec<MarketRef>,
    profile: Option<Profile>,
    pending: Option<Pending>,
    /// Weight of the collaborative term when ranking.
    collaborative_weight: f64,
    /// Neighbours requested from the PA.
    k_neighbours: usize,
    /// Microseconds before a roaming MBA is presumed lost.
    mba_timeout_us: u64,
    /// Recommendations produced over this session (for inspection).
    recommendations_made: u32,
    /// Backoff schedule for re-dispatching a lost MBA.
    #[serde(default)]
    retry: BackoffPolicy,
    /// Marketplaces the BSMA flagged as circuit-open for the current
    /// task; the MBA must skip them.
    #[serde(default)]
    blocked_markets: Vec<MarketRef>,
    /// True when the host journals state durably: buys carry a WAL-logged
    /// intent id and in-doubt outcomes are resolved against the
    /// marketplace ledger instead of failed outright.
    #[serde(default)]
    durable: bool,
    /// Purchase intents minted by this BRA so far (intent-id sequence).
    #[serde(default)]
    intents_minted: u64,
}

impl BuyerRecommendAgent {
    /// Create a BRA for `consumer`, wired to its server-side peers.
    pub fn new(
        consumer: ConsumerId,
        bsma: AgentId,
        pa: AgentId,
        httpa: AgentId,
        markets: Vec<MarketRef>,
    ) -> Self {
        BuyerRecommendAgent {
            consumer,
            bsma,
            pa,
            httpa,
            markets,
            profile: None,
            pending: None,
            collaborative_weight: 0.7,
            k_neighbours: 10,
            mba_timeout_us: 600_000_000, // 10 simulated minutes
            recommendations_made: 0,
            retry: BackoffPolicy::default(),
            blocked_markets: Vec::new(),
            durable: false,
            intents_minted: 0,
        }
    }

    /// Turn on the durable-purchase protocol (intent ids + ledger
    /// resolution). Only meaningful on a world with durability enabled.
    pub fn with_durability(mut self) -> Self {
        self.durable = true;
        self
    }

    /// Override the MBA re-dispatch backoff schedule.
    pub fn with_retry_policy(mut self, retry: BackoffPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Override the hybrid ranking weight (ablation knob).
    pub fn with_collaborative_weight(mut self, w: f64) -> Self {
        self.collaborative_weight = w.clamp(0.0, 1.0);
        self
    }

    /// Override the MBA loss timeout.
    pub fn with_mba_timeout_us(mut self, us: u64) -> Self {
        self.mba_timeout_us = us;
        self
    }

    fn respond(&mut self, ctx: &mut Ctx<'_>, body: ResponseBody) {
        // The reply itself must never be dropped as expired: a degraded
        // answer at (or just past) the deadline still beats silence, so
        // strip the deadline before the send stamps it.
        if ctx.deadline().is_some() {
            ctx.clear_deadline();
        }
        let msg = Message::new(kinds::BRA_RESPONSE)
            .with_payload(&BraResponse {
                consumer: self.consumer,
                body,
            })
            .expect("response serializes");
        ctx.send(self.httpa, msg);
    }

    fn start_task(&mut self, ctx: &mut Ctx<'_>, task: ConsumerTask, blocked: Vec<MarketRef>) {
        if self.pending.is_some() {
            self.respond(ctx, ResponseBody::Error("busy with a previous task".into()));
            return;
        }
        self.blocked_markets = blocked;
        // A buy/auction aimed at a circuit-open marketplace cannot
        // proceed at all: fail fast rather than loading a profile for a
        // dispatch that is already refused.
        if let ConsumerTask::Buy { market, .. } | ConsumerTask::Auction { market, .. } = &task {
            if self.blocked_markets.contains(market) {
                ctx.note(format!(
                    "bra: marketplace {} circuit open, refusing transaction",
                    market.agent
                ));
                self.respond(
                    ctx,
                    ResponseBody::Error("marketplace unavailable: circuit open".into()),
                );
                return;
            }
        }
        let fig = task.figure();
        ctx.note(format!("{fig}/step04 bra requests profile from pa"));
        let load = Message::new(kinds::PA_LOAD)
            .with_payload(&PaLoad {
                consumer: self.consumer,
                figure: fig.to_string(),
            })
            .expect("load serializes");
        ctx.send(self.pa, load);
        self.pending = Some(Pending::AwaitProfile { task });
    }

    /// Mint a fresh purchase-intent id: the BRA's globally-unique agent
    /// id in the high bits, a per-BRA sequence number in the low 16. A
    /// BRA drives one task at a time, so the sequence cannot wrap within
    /// a purchase's lifetime.
    fn mint_intent(&mut self, ctx: &Ctx<'_>) -> u64 {
        self.intents_minted += 1;
        (ctx.self_id().0 << 16) | (self.intents_minted & 0xFFFF)
    }

    fn dispatch_mba(
        &mut self,
        ctx: &mut Ctx<'_>,
        task: ConsumerTask,
        attempt: u32,
        prior_intent: Option<u64>,
    ) {
        let fig = task.figure();
        // Durable buys carry a WAL-logged intent id so the marketplace
        // can dedupe a re-driven purchase. Minted once, before the first
        // dispatch (write-ahead); retries reuse it unchanged.
        let intent = match (&task, prior_intent) {
            (_, Some(i)) => Some(i),
            (ConsumerTask::Buy { item, market, .. }, None) if self.durable => {
                let i = self.mint_intent(ctx);
                ctx.journal_intent(
                    i,
                    serde_json::json!({
                        "consumer": self.consumer,
                        "item": item,
                        "market": market.agent,
                    }),
                );
                Some(i)
            }
            _ => None,
        };
        let (mba_task, itinerary) = match &task {
            ConsumerTask::Query {
                keywords,
                category,
                max_results,
            } => (
                MbaTask::Query {
                    keywords: keywords.clone(),
                    category: category.clone(),
                    max_results: *max_results,
                },
                self.markets
                    .iter()
                    .filter(|m| !self.blocked_markets.contains(m))
                    .copied()
                    .collect(),
            ),
            ConsumerTask::Buy { item, market, mode } => (
                MbaTask::Buy {
                    item: *item,
                    mode: *mode,
                    intent,
                },
                vec![*market],
            ),
            ConsumerTask::Auction {
                item,
                market,
                limit,
            } => (
                MbaTask::Auction {
                    item: *item,
                    limit: *limit,
                },
                vec![*market],
            ),
        };
        if itinerary.is_empty() && !self.blocked_markets.is_empty() {
            // every marketplace is circuit-open: skip the doomed trip and
            // answer immediately from the cached profile (CF-only)
            ctx.note("bra: all marketplaces circuit open, degrading to cached-profile cf");
            let similar = Message::new(kinds::PA_SIMILAR)
                .with_payload(&PaSimilar {
                    consumer: self.consumer,
                    offers: Vec::new(),
                    k_neighbours: self.k_neighbours,
                })
                .expect("similar serializes");
            ctx.send(self.pa, similar);
            self.pending = Some(Pending::AwaitSimilar {
                task,
                offers: Vec::new(),
                degraded: true,
                unreachable: self.blocked_markets.clone(),
            });
            return;
        }
        let create_step = if fig == "fig4.2" { "step07" } else { "step06" };
        ctx.note(format!(
            "{fig}/{create_step} bra creates mba and assigns task"
        ));
        let mba = ctx.create_agent(Box::new(
            MobileBuyerAgent::new(
                ctx.host(),
                self.bsma,
                ctx.self_id(),
                self.consumer,
                mba_task,
                itinerary,
            )
            // give up on an unresponsive marketplace well before the BSMA
            // watchdog gives up on the whole trip
            .with_market_wait_us(self.mba_timeout_us / 4),
        ));
        let register_step = if fig == "fig4.2" { "step08" } else { "step07" };
        ctx.note(format!("{fig}/{register_step} bra registers mba with bsma"));
        let register = Message::new(kinds::MBA_REGISTER)
            .with_payload(&MbaRegister {
                mba,
                bra: ctx.self_id(),
                consumer: self.consumer,
                timeout_us: self.mba_timeout_us,
                figure: fig.to_string(),
            })
            .expect("register serializes");
        ctx.send(self.bsma, register);
        self.pending = Some(Pending::AwaitMba {
            task,
            mba,
            attempt,
            intent,
        });
    }

    /// Rank candidates: the paper's combination of similar users'
    /// preferences with the queried merchandise information and the
    /// consumer's own profile.
    /// `cw` is the collaborative weight for this reply — normally
    /// [`Self::collaborative_weight`], forced to 1.0 for a degraded
    /// CF-only reply where no fresh offers exist to content-rank.
    fn generate_recommendations(
        &self,
        offers: &[Offer],
        data: &PaSimilarReply,
        task: &ConsumerTask,
        k: usize,
        cw: f64,
    ) -> Vec<RecommendedItem> {
        let (keywords, category) = match task {
            ConsumerTask::Query {
                keywords, category, ..
            } => (keywords.clone(), category.clone()),
            _ => (Vec::new(), None),
        };
        let context = crate::recommend::QueryContext { keywords, category };
        // candidate pool: queried offers + neighbour preferences
        let mut pool: BTreeMap<u64, (Merchandise, f64)> = BTreeMap::new();
        for (m, w) in &data.neighbour_preferences {
            pool.insert(m.id.0, (m.clone(), *w));
        }
        for offer in offers {
            pool.entry(offer.item.id.0)
                .or_insert((offer.item.clone(), 0.0));
        }
        let n_neighbours = data.neighbours.len();
        let mut recs: Vec<RecommendedItem> = pool
            .into_values()
            .map(|(m, collab)| {
                let affinity = {
                    let a = data.profile.affinity(&m.category, &m.terms);
                    a / (1.0 + a)
                };
                let relevance = context.relevance(&m);
                let content = 0.5 * affinity + 0.5 * relevance;
                let score = cw * collab + (1.0 - cw) * content;
                // explanation: name the dominant signal
                let collab_part = cw * collab;
                let affinity_part = (1.0 - cw) * 0.5 * affinity;
                let relevance_part = (1.0 - cw) * 0.5 * relevance;
                let reason = if collab_part >= affinity_part && collab_part >= relevance_part {
                    format!("preferred by {n_neighbours} consumers with similar taste")
                } else if affinity_part >= relevance_part {
                    format!("matches your interest in {}", m.category)
                } else {
                    "matches your search".to_string()
                };
                RecommendedItem {
                    item: m,
                    score,
                    reason,
                }
            })
            .filter(|r| r.score > 0.0)
            .collect();
        recs.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.item.id.cmp(&b.item.id))
        });
        recs.truncate(k);
        recs
    }

    fn record_behavior(
        &self,
        ctx: &mut Ctx<'_>,
        item: &Merchandise,
        kind: BehaviorKind,
        price: Option<ecp::merchandise::Money>,
    ) {
        let record = Message::new(kinds::PA_RECORD)
            .with_payload(&PaRecord {
                consumer: self.consumer,
                item: item.clone(),
                kind,
                price,
                at_us: ctx.now().as_micros(),
            })
            .expect("record serializes");
        ctx.send(self.pa, record);
    }

    fn handle_mba_result(&mut self, ctx: &mut Ctx<'_>, from: Option<AgentId>, result: MbaResult) {
        // match non-destructively: a stale result from a superseded MBA
        // must not wipe whatever state the live attempt is in
        let (task, mba, intent) = match &self.pending {
            Some(Pending::AwaitMba {
                task, mba, intent, ..
            }) => (task.clone(), *mba, *intent),
            _ => {
                ctx.note("bra: unexpected mba result dropped");
                return;
            }
        };
        if from.is_some() && from != Some(mba) {
            // a superseded MBA (already retried or written off) made it
            // home after all; the live attempt's result is the one we want
            ctx.note("bra: stale result from superseded mba ignored");
            return;
        }
        self.pending = None;
        match result {
            MbaResult::Offers { offers, reports } => {
                // record the query behaviour against the top offers
                for offer in offers.iter().take(3) {
                    self.record_behavior(ctx, &offer.item, BehaviorKind::Query, None);
                }
                // partial-result tagging: marketplaces that never answered
                let unreachable: Vec<MarketRef> = reports
                    .iter()
                    .filter(|r| r.status != MarketStatus::Visited)
                    .map(|r| r.market)
                    .collect();
                let degraded = !reports.is_empty()
                    && !reports.iter().any(|r| r.status == MarketStatus::Visited);
                if degraded {
                    ctx.note("bra: no marketplace reachable, degrading to cached-profile cf");
                }
                let similar = Message::new(kinds::PA_SIMILAR)
                    .with_payload(&PaSimilar {
                        consumer: self.consumer,
                        offers: offers.iter().map(|o| o.item.clone()).collect(),
                        k_neighbours: self.k_neighbours,
                    })
                    .expect("similar serializes");
                ctx.send(self.pa, similar);
                self.pending = Some(Pending::AwaitSimilar {
                    task,
                    offers,
                    degraded,
                    unreachable,
                });
            }
            MbaResult::Bought {
                item,
                price,
                negotiated,
                rounds,
            } => {
                ctx.note("fig4.3/step13 bra records transaction and pa updates profile");
                if let Some(intent) = intent {
                    ctx.journal_commit(
                        intent,
                        serde_json::to_value(&BuyConfirm {
                            item: item.clone(),
                            price,
                        })
                        .unwrap_or(serde_json::Value::Null),
                    );
                }
                let kind = if negotiated {
                    BehaviorKind::Negotiate
                } else {
                    BehaviorKind::Purchase
                };
                // negotiation that closed a deal is still a purchase
                self.record_behavior(ctx, &item, BehaviorKind::Purchase, Some(price));
                if negotiated {
                    self.record_behavior(ctx, &item, kind, Some(price));
                }
                ctx.note("fig4.3/step14 bra responds with receipt");
                self.respond(
                    ctx,
                    ResponseBody::Receipt {
                        item,
                        price,
                        channel: if negotiated {
                            format!("negotiated in {rounds} rounds")
                        } else {
                            "direct".into()
                        },
                    },
                );
            }
            MbaResult::BuyFailed { reason, .. } => {
                ctx.note("fig4.3/step13 bra records failed trade");
                if let Some(intent) = intent {
                    // the marketplace definitively rejected/failed the buy,
                    // so the intent resolves to a clean abort
                    ctx.journal_abort(intent, reason.clone());
                }
                ctx.note("fig4.3/step14 bra responds with failure");
                self.respond(ctx, ResponseBody::Error(reason));
            }
            MbaResult::AuctionDone {
                item,
                won,
                price,
                bids,
            } => {
                ctx.note("fig4.3/step13 bra records auction outcome");
                if bids > 0 {
                    self.record_behavior(ctx, &item, BehaviorKind::Bid, None);
                }
                if won {
                    self.record_behavior(ctx, &item, BehaviorKind::AuctionWin, price);
                }
                ctx.note("fig4.3/step14 bra responds with auction result");
                self.respond(ctx, ResponseBody::AuctionResult { item, won, price });
            }
        }
    }
}

impl Agent for BuyerRecommendAgent {
    fn agent_type(&self) -> &'static str {
        BRA_TYPE
    }

    fn snapshot(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("bra state serializes")
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        match msg.kind.as_str() {
            kinds::BRA_TASK => {
                if let Ok(routed) = msg.payload_as::<RoutedTask>() {
                    self.start_task(ctx, routed.task, routed.blocked_markets);
                }
            }
            kinds::PA_PROFILE => {
                let Ok(profile) = msg.payload_as::<PaProfile>() else {
                    return;
                };
                self.profile = Some(profile.profile);
                let task = match &self.pending {
                    Some(Pending::AwaitProfile { task }) => task.clone(),
                    _ => return, // stale profile; keep the live state
                };
                self.pending = None;
                let fig = task.figure();
                let step = if fig == "fig4.2" { "step06" } else { "step05" };
                ctx.note(format!("{fig}/{step} bra received profile"));
                self.dispatch_mba(ctx, task, 0, None);
            }
            kinds::MBA_RESULT => {
                if let Ok(result) = msg.payload_as::<MbaResult>() {
                    self.handle_mba_result(ctx, msg.from, result);
                }
            }
            kinds::PA_SIMILAR_REPLY => {
                let Ok(data) = msg.payload_as::<PaSimilarReply>() else {
                    return;
                };
                let (task, offers, degraded, unreachable) = match &self.pending {
                    Some(Pending::AwaitSimilar {
                        task,
                        offers,
                        degraded,
                        unreachable,
                    }) => (task.clone(), offers.clone(), *degraded, unreachable.clone()),
                    _ => return, // stale similar-reply; keep the live state
                };
                self.pending = None;
                ctx.note(
                    "fig4.2/step14 bra generates recommendation from similar users and offers",
                );
                self.profile = Some(data.profile.clone());
                let max = match &task {
                    ConsumerTask::Query { max_results, .. } => (*max_results).max(5),
                    _ => 5,
                };
                // a degraded reply has no fresh offers to content-rank, so
                // it leans entirely on the neighbours' preferences
                let cw = if degraded {
                    1.0
                } else {
                    self.collaborative_weight
                };
                let recommendations = self.generate_recommendations(&offers, &data, &task, max, cw);
                self.recommendations_made += 1;
                if degraded {
                    ctx.note("fig4.2/step15 bra responds with degraded cf-only recommendations");
                    ctx.count_degraded_reply();
                } else {
                    ctx.note("fig4.2/step15 bra responds with recommendations");
                }
                self.respond(
                    ctx,
                    ResponseBody::Recommendations {
                        offers,
                        recommendations,
                        degraded,
                        unreachable_markets: unreachable,
                    },
                );
            }
            kinds::MBA_LOST => {
                let Ok(lost) = msg.payload_as::<MbaLost>() else {
                    return;
                };
                let (task, mba, attempt, intent) = match &self.pending {
                    Some(Pending::AwaitMba {
                        task,
                        mba,
                        attempt,
                        intent,
                    }) => (task.clone(), *mba, *attempt, *intent),
                    _ => {
                        ctx.note(format!(
                            "bra: loss notice for {} with no task in flight",
                            lost.mba
                        ));
                        return;
                    }
                };
                if lost.mba != mba {
                    ctx.note(format!("bra: stale loss notice for {} ignored", lost.mba));
                    return;
                }
                self.pending = None;
                ctx.note(format!("bra: mba {mba} presumed lost"));
                // A durable buy whose MBA vanished has an unknown outcome:
                // the purchase may or may not have gone through. Ask the
                // marketplace ledger before deciding to retry or abort —
                // never blindly re-run a buy (at-most-once).
                if let (ConsumerTask::Buy { market, .. }, Some(intent)) = (&task, intent) {
                    let market = *market;
                    ctx.note(format!(
                        "bra: purchase intent {intent} in doubt, querying marketplace ledger"
                    ));
                    let query = Message::new(ecpk::kinds::LEDGER_QUERY)
                        .with_payload(&LedgerQuery { intent })
                        .expect("ledger query serializes");
                    ctx.send(market.agent, query);
                    self.pending = Some(Pending::AwaitLedger {
                        task,
                        intent,
                        market,
                        attempt,
                    });
                    return;
                }
                if attempt < self.retry.max_retries {
                    // clamp the retry to the request's remaining deadline
                    // budget: a retry that would land after the reply was
                    // due degrades instead. The loss notice travels
                    // deadline-free, so the budget arrives in its payload.
                    let budget = lost
                        .deadline_us
                        .map(|d| d.saturating_sub(ctx.now().as_micros()))
                        .or_else(|| ctx.remaining_us());
                    match self.retry.delay_within(attempt, budget) {
                        Some(delay) => {
                            ctx.note(format!(
                                "bra: retrying task in {delay}us (attempt {})",
                                attempt + 1
                            ));
                            ctx.count_retry();
                            // the retried dispatch still runs under the
                            // original request deadline
                            if let Some(d) = lost.deadline_us {
                                ctx.set_deadline(SimTime(d));
                            }
                            self.pending = Some(Pending::AwaitRetry {
                                task,
                                attempt: attempt + 1,
                                intent: None,
                            });
                            ctx.set_timer(SimDuration::from_micros(delay), RETRY_TAG);
                            return;
                        }
                        None => {
                            ctx.note("bra: no deadline budget for another dispatch, degrading now");
                        }
                    }
                }
                match &task {
                    ConsumerTask::Query { .. } => {
                        // retries exhausted: degrade to CF-only built from
                        // the cached profile rather than failing the query
                        ctx.note("bra: retries exhausted, degrading to cached-profile cf");
                        let similar = Message::new(kinds::PA_SIMILAR)
                            .with_payload(&PaSimilar {
                                consumer: self.consumer,
                                offers: Vec::new(),
                                k_neighbours: self.k_neighbours,
                            })
                            .expect("similar serializes");
                        ctx.send(self.pa, similar);
                        self.pending = Some(Pending::AwaitSimilar {
                            task,
                            offers: Vec::new(),
                            degraded: true,
                            unreachable: self.markets.clone(),
                        });
                    }
                    _ => {
                        // buys and auctions must not be blindly re-run once
                        // the outcome is unknown; fail them explicitly
                        self.respond(
                            ctx,
                            ResponseBody::Error("mobile buyer agent lost in transit".into()),
                        );
                    }
                }
            }
            ecpk::kinds::LEDGER_REPLY => {
                let Ok(reply) = msg.payload_as::<LedgerReply>() else {
                    return;
                };
                let (task, intent, attempt) = match &self.pending {
                    Some(Pending::AwaitLedger {
                        task,
                        intent,
                        attempt,
                        ..
                    }) => (task.clone(), *intent, *attempt),
                    _ => {
                        ctx.note("bra: stale ledger reply dropped");
                        return;
                    }
                };
                if reply.intent != intent {
                    ctx.note(format!(
                        "bra: ledger reply for foreign intent {}",
                        reply.intent
                    ));
                    return;
                }
                self.pending = None;
                match reply.committed {
                    Some(confirm) => {
                        // the lost MBA did complete the purchase before
                        // vanishing: honour it exactly once from the ledger
                        ctx.note(format!(
                            "bra: intent {intent} committed at marketplace, recovered from ledger"
                        ));
                        ctx.count_ledger_resolution();
                        ctx.journal_commit(
                            intent,
                            serde_json::to_value(&confirm).unwrap_or(serde_json::Value::Null),
                        );
                        self.record_behavior(
                            ctx,
                            &confirm.item,
                            BehaviorKind::Purchase,
                            Some(confirm.price),
                        );
                        self.respond(
                            ctx,
                            ResponseBody::Receipt {
                                item: confirm.item,
                                price: confirm.price,
                                channel: "recovered from marketplace ledger".into(),
                            },
                        );
                    }
                    None => {
                        // never committed: a retry under the same intent is
                        // safe (the ledger will dedupe a late duplicate)
                        if attempt < self.retry.max_retries {
                            let budget = ctx.remaining_us();
                            if let Some(delay) = self.retry.delay_within(attempt, budget) {
                                ctx.note(format!(
                                    "bra: intent {intent} not committed, retrying in {delay}us (attempt {})",
                                    attempt + 1
                                ));
                                ctx.count_retry();
                                self.pending = Some(Pending::AwaitRetry {
                                    task,
                                    attempt: attempt + 1,
                                    intent: Some(intent),
                                });
                                ctx.set_timer(SimDuration::from_micros(delay), RETRY_TAG);
                                return;
                            }
                        }
                        ctx.note(format!("bra: intent {intent} aborted after ledger check"));
                        ctx.journal_abort(
                            intent,
                            "mba lost; marketplace ledger shows no commit and retries exhausted",
                        );
                        self.respond(
                            ctx,
                            ResponseBody::Error(
                                "purchase aborted: buyer agent lost and marketplace ledger shows no commit"
                                    .into(),
                            ),
                        );
                    }
                }
            }
            other => {
                ctx.note(format!("bra: unhandled kind {other}"));
            }
        }
    }

    fn on_rehomed(&mut self, ctx: &mut Ctx<'_>, new_home: HostId) {
        // BRAs keep no host field of their own (peers are agent ids, and
        // MBA placement follows the BSMA's target) — just log the move.
        ctx.note(format!("bra: rehomed to failover host {new_home}"));
    }

    fn on_recovered(&mut self, ctx: &mut Ctx<'_>, _deltas: &[serde_json::Value]) {
        // The host died and came back: the WAL restored our state, but any
        // message already sent to a peer may have produced a reply that
        // died with the host, and armed timers are gone. Re-drive whatever
        // stage the task was in; every peer handler tolerates duplicates.
        match self.pending.clone() {
            Some(Pending::AwaitProfile { task }) => {
                ctx.note("bra: recovered mid profile-load, re-requesting profile");
                let load = Message::new(kinds::PA_LOAD)
                    .with_payload(&PaLoad {
                        consumer: self.consumer,
                        figure: task.figure().to_string(),
                    })
                    .expect("load serializes");
                ctx.send(self.pa, load);
            }
            Some(Pending::AwaitSimilar { offers, .. }) => {
                ctx.note("bra: recovered mid similar-query, re-requesting neighbours");
                let similar = Message::new(kinds::PA_SIMILAR)
                    .with_payload(&PaSimilar {
                        consumer: self.consumer,
                        offers: offers.iter().map(|o| o.item.clone()).collect(),
                        k_neighbours: self.k_neighbours,
                    })
                    .expect("similar serializes");
                ctx.send(self.pa, similar);
            }
            Some(Pending::AwaitRetry { .. }) => {
                // the backoff timer died with the host; re-arm it
                ctx.note("bra: recovered mid retry-backoff, re-arming dispatch timer");
                ctx.set_timer(SimDuration::from_micros(1_000), RETRY_TAG);
            }
            Some(Pending::AwaitLedger { intent, market, .. }) => {
                ctx.note(format!(
                    "bra: recovered mid ledger-query, re-querying intent {intent}"
                ));
                let query = Message::new(ecpk::kinds::LEDGER_QUERY)
                    .with_payload(&LedgerQuery { intent })
                    .expect("ledger query serializes");
                ctx.send(market.agent, query);
            }
            Some(Pending::AwaitMba { task, mba, .. }) => {
                // The MBA is out roaming (or lost). Normally the BSMA's
                // own recovery re-arms the watchdog, but if the crash hit
                // between MBA creation and registration the BSMA never
                // saw this trip — re-register so the watchdog exists.
                // The BSMA dedupes by MBA id, so this is a no-op when the
                // watch survived.
                ctx.note(format!(
                    "bra: recovered with mba {mba} outstanding, re-registering watch"
                ));
                let register = Message::new(kinds::MBA_REGISTER)
                    .with_payload(&MbaRegister {
                        mba,
                        bra: ctx.self_id(),
                        consumer: self.consumer,
                        timeout_us: self.mba_timeout_us,
                        figure: task.figure().to_string(),
                    })
                    .expect("register serializes");
                ctx.send(self.bsma, register);
            }
            None => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag != RETRY_TAG {
            return;
        }
        let Some(Pending::AwaitRetry {
            task,
            attempt,
            intent,
        }) = self.pending.take()
        else {
            return;
        };
        ctx.note(format!("bra: re-dispatching mba (attempt {attempt})"));
        self.dispatch_mba(ctx, task, attempt, intent);
    }

    fn on_disposal(&mut self, ctx: &mut Ctx<'_>) {
        ctx.note(format!("bra for {} terminated at logout", self.consumer));
    }
}

// Integration-style tests for the BRA live in the server module and the
// workspace `tests/` directory, where a full Buyer Agent Server exists;
// unit tests here cover the pure ranking logic.
#[cfg(test)]
mod tests {
    use super::*;
    use ecp::merchandise::{CategoryPath, ItemId, Money};
    use ecp::terms::TermVector;

    fn merch(id: u64, name: &str) -> Merchandise {
        Merchandise {
            id: ItemId(id),
            name: name.into(),
            category: CategoryPath::new("books", "programming"),
            terms: TermVector::from_pairs([(name.to_lowercase(), 1.0)]),
            list_price: Money::from_units(10),
            seller: 1,
        }
    }

    fn bra() -> BuyerRecommendAgent {
        BuyerRecommendAgent::new(ConsumerId(1), AgentId(2), AgentId(3), AgentId(4), vec![])
    }

    fn reply_with(prefs: Vec<(Merchandise, f64)>) -> PaSimilarReply {
        let mut profile = Profile::new();
        profile
            .category_mut("books")
            .sub_mut("programming")
            .set("rustbook1", 1.0);
        PaSimilarReply {
            consumer: ConsumerId(1),
            profile,
            neighbours: vec![(ConsumerId(2), 0.9)],
            neighbour_preferences: prefs,
        }
    }

    #[test]
    fn recommendations_prefer_neighbour_endorsed_items() {
        let b = bra();
        let offers = vec![Offer {
            item: merch(1, "rustbook1"),
            marketplace: agentsim::ids::HostId(1),
            price: Money::from_units(10),
        }];
        let data = reply_with(vec![(merch(2, "rustbook2"), 0.9)]);
        let task = ConsumerTask::Query {
            keywords: vec!["rustbook1".into()],
            category: None,
            max_results: 5,
        };
        let recs = b.generate_recommendations(&offers, &data, &task, 5, b.collaborative_weight);
        assert_eq!(recs.len(), 2);
        // neighbour-endorsed item 2 has collab 0.9; offer item 1 has high
        // content relevance. With cw=0.7, item 2 should lead.
        assert_eq!(recs[0].item.id, ItemId(2));
        assert!(recs[0].score > recs[1].score);
        // explanations name the dominant signal
        assert!(
            recs[0].reason.contains("similar taste"),
            "neighbour-driven item must say so: {}",
            recs[0].reason
        );
    }

    #[test]
    fn zero_collaborative_weight_makes_content_dominate() {
        let b = bra().with_collaborative_weight(0.0);
        let offers = vec![Offer {
            item: merch(1, "rustbook1"),
            marketplace: agentsim::ids::HostId(1),
            price: Money::from_units(10),
        }];
        let data = reply_with(vec![(merch(2, "unrelated-thing"), 0.99)]);
        let task = ConsumerTask::Query {
            keywords: vec!["rustbook1".into()],
            category: None,
            max_results: 5,
        };
        let recs = b.generate_recommendations(&offers, &data, &task, 5, b.collaborative_weight);
        assert_eq!(
            recs[0].item.id,
            ItemId(1),
            "pure content ranks the matching offer first"
        );
    }

    #[test]
    fn recommendations_truncate_at_k() {
        let b = bra();
        let data = reply_with(
            (1..=20)
                .map(|i| (merch(i, &format!("rustbook{i}")), 0.5))
                .collect(),
        );
        let task = ConsumerTask::Query {
            keywords: vec![],
            category: None,
            max_results: 20,
        };
        let recs = b.generate_recommendations(&[], &data, &task, 3, b.collaborative_weight);
        assert_eq!(recs.len(), 3);
    }

    #[test]
    fn bra_state_round_trips_serde() {
        let b = bra().with_collaborative_weight(0.4);
        let v = serde_json::to_value(&b).unwrap();
        let back: BuyerRecommendAgent = serde_json::from_value(v).unwrap();
        assert_eq!(back.consumer, ConsumerId(1));
        assert!((back.collaborative_weight - 0.4).abs() < 1e-12);
    }
}
