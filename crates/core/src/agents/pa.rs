//! The Profile Agent (PA).
//!
//! §3.3: *"Each recommendation mechanism contains only one PA. PA stands
//! for creating or updating user profile. When consumer query, buy or
//! join auction PA will generate the newer consumer profile to record
//! consumer behavior."*
//!
//! The PA owns the UserDB (profiles + transactions) and the in-memory
//! [`RecommendStore`]; every behaviour recorded through [`kinds::PA_RECORD`]
//! runs the Fig 4.5 update and is persisted. [`kinds::PA_SIMILAR`] answers
//! with the consumer's profile, their nearest neighbours (Fig 4.5
//! similarity with threshold discard) and the neighbours' merchandise
//! preferences — the data the BRA turns into recommendation information.

use crate::agents::msg::{kinds, PaLoad, PaProfile, PaRecord, PaSimilar, PaSimilarReply};
use crate::learning::{BehaviorKind, LearnerConfig};
use crate::profile::Profile;
use crate::similarity::SimilarityConfig;
use crate::store::RecommendStore;
use crate::userdb::{TradeChannel, TransactionRecord, UserDb};
use agentsim::agent::{Agent, Ctx, DurablePolicy};
use agentsim::message::Message;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Agent-type tag of [`ProfileAgent`].
pub const PA_TYPE: &str = "pa";

/// Periodic profile-maintenance settings (§5.2 item 1, "improve the
/// profile algorithm"): every `interval_us` of simulated time the PA
/// decays all interest weights by `decay` and compacts profiles, so
/// abandoned interests fade out.
///
/// **Caution:** an enabled maintenance cycle re-arms its timer forever —
/// drive such worlds with `run_until`/`run_for`, not `run_until_idle`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaintenanceConfig {
    /// Simulated microseconds between passes.
    pub interval_us: u64,
    /// Multiplicative decay per pass, in `(0, 1)`.
    pub decay: f64,
}

const MAINTENANCE_TIMER_TAG: u64 = u64::MAX;

/// The Profile Agent. Static on the Buyer Agent Server.
#[derive(Debug, Serialize, Deserialize)]
pub struct ProfileAgent {
    store: RecommendStore,
    userdb: UserDb,
    similarity: SimilarityConfig,
    #[serde(default)]
    maintenance: Option<MaintenanceConfig>,
    #[serde(default)]
    maintenance_passes: u32,
    /// Item-sim cache tallies already exported to the telemetry registry
    /// (the delta base, so counters stay exact across migrations).
    #[serde(default)]
    cache_hits_emitted: u64,
    #[serde(default)]
    cache_misses_emitted: u64,
    #[serde(default)]
    cache_invalidated_emitted: u64,
    #[serde(default)]
    cache_capacity_evicted_emitted: u64,
    /// Journal every recorded behaviour as a WAL delta instead of having
    /// the platform snapshot the (large) full PA capsule per callback.
    #[serde(default)]
    durable: bool,
}

impl ProfileAgent {
    /// Fresh PA with the given learner and similarity configuration.
    pub fn new(learner: LearnerConfig, similarity: SimilarityConfig) -> Self {
        ProfileAgent {
            store: RecommendStore::with_learner(learner),
            userdb: UserDb::new(),
            similarity,
            maintenance: None,
            maintenance_passes: 0,
            cache_hits_emitted: 0,
            cache_misses_emitted: 0,
            cache_invalidated_emitted: 0,
            cache_capacity_evicted_emitted: 0,
            durable: false,
        }
    }

    /// Journal behaviour records as durable deltas (replayed on crash
    /// recovery). Only meaningful on a world with durability enabled.
    pub fn with_durability(mut self) -> Self {
        self.durable = true;
        self
    }

    /// Enable the periodic interest-decay maintenance cycle.
    pub fn with_maintenance(mut self, maintenance: MaintenanceConfig) -> Self {
        self.maintenance = Some(maintenance);
        self
    }

    /// Maintenance passes executed so far.
    pub fn maintenance_passes(&self) -> u32 {
        self.maintenance_passes
    }

    /// Access the in-memory store (tests, offline seeding).
    pub fn store(&self) -> &RecommendStore {
        &self.store
    }

    /// Mutable store access (offline seeding of populations).
    pub fn store_mut(&mut self) -> &mut RecommendStore {
        &mut self.store
    }

    /// The UserDB.
    pub fn userdb(&self) -> &UserDb {
        &self.userdb
    }

    fn load_or_create(&mut self, consumer: crate::profile::ConsumerId) -> Profile {
        if let Some(p) = self.store.profile(consumer) {
            return p.clone();
        }
        // not in memory: try the durable store, else fresh
        let loaded = self
            .userdb
            .load_profile(consumer)
            .ok()
            .flatten()
            .unwrap_or_default();
        self.store.put_profile(consumer, loaded.clone());
        loaded
    }

    fn record(&mut self, ctx: &mut Ctx<'_>, rec: PaRecord) {
        if self.durable {
            // write-ahead: the delta reaches the WAL before the learned
            // update it describes can be observed by anyone
            match serde_json::to_value(&rec) {
                Ok(delta) => ctx.journal_delta(delta),
                Err(e) => ctx.note(format!("pa: behaviour delta serialize failed: {e}")),
            }
        }
        self.apply_record(ctx, rec);
    }

    fn apply_record(&mut self, ctx: &mut Ctx<'_>, rec: PaRecord) {
        self.store.upsert_item(rec.item.clone());
        self.store.record_event(rec.consumer, rec.item.id, rec.kind);
        // persist the updated profile (UserDB write — Fig 4.2 step 5 /
        // Fig 4.3 step 13 end up here)
        if let Some(p) = self.store.profile(rec.consumer) {
            let p = p.clone();
            if let Err(e) = self.userdb.save_profile(rec.consumer, &p) {
                ctx.note(format!("pa: profile persist failed: {e}"));
            }
        }
        if matches!(rec.kind, BehaviorKind::Purchase | BehaviorKind::AuctionWin) {
            let tx = TransactionRecord {
                consumer: rec.consumer,
                item: rec.item.id,
                price: rec.price.unwrap_or(rec.item.list_price),
                channel: match rec.kind {
                    BehaviorKind::AuctionWin => TradeChannel::Auction,
                    _ => TradeChannel::Direct,
                },
                at_us: rec.at_us,
            };
            if let Err(e) = self.userdb.record_transaction(&tx) {
                ctx.note(format!("pa: transaction persist failed: {e}"));
            }
        }
    }

    fn similar(&mut self, req: &PaSimilar) -> PaSimilarReply {
        // make the queried merchandise known
        for offer in &req.offers {
            self.store.upsert_item(offer.clone());
        }
        let profile = self.load_or_create(req.consumer);
        // load_or_create guarantees the consumer is in the store (and
        // thus the index), so the indexed search answers exactly what
        // the full profile scan would.
        let neighbours =
            self.store
                .nearest_neighbours(req.consumer, &self.similarity, req.k_neighbours);
        // similarity-weighted neighbour preferences
        let mut prefs: BTreeMap<u64, f64> = BTreeMap::new();
        let mut total_sim = 0.0;
        for (nid, sim) in &neighbours {
            total_sim += sim;
            for (item, rating) in self.store.ratings().user_ratings(*nid) {
                *prefs.entry(item.0).or_insert(0.0) += sim * rating;
            }
        }
        let owned = self.store.purchased_by(req.consumer);
        let mut neighbour_preferences: Vec<(ecp::merchandise::Merchandise, f64)> = prefs
            .into_iter()
            .filter_map(|(item, mut w)| {
                if total_sim > 0.0 {
                    w /= total_sim;
                }
                let id = ecp::merchandise::ItemId(item);
                if owned.contains(&id) {
                    return None;
                }
                self.store.catalog().get(id).map(|m| (m.clone(), w))
            })
            .collect();
        neighbour_preferences.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.id.cmp(&b.0.id))
        });
        neighbour_preferences.truncate(64);
        PaSimilarReply {
            consumer: req.consumer,
            profile,
            neighbours,
            neighbour_preferences,
        }
    }
}

impl Agent for ProfileAgent {
    fn agent_type(&self) -> &'static str {
        PA_TYPE
    }

    fn snapshot(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("pa state serializes")
    }

    fn durable_policy(&self) -> DurablePolicy {
        if self.durable {
            DurablePolicy::Deltas
        } else {
            DurablePolicy::Capsule
        }
    }

    fn on_recovered(&mut self, ctx: &mut Ctx<'_>, deltas: &[serde_json::Value]) {
        // Replay every behaviour recorded since the baseline capsule was
        // captured. apply_record (not record) so the replay does not
        // re-journal deltas the WAL already holds.
        let mut replayed = 0usize;
        for delta in deltas {
            match serde_json::from_value::<PaRecord>(delta.clone()) {
                Ok(rec) => {
                    self.apply_record(ctx, rec);
                    replayed += 1;
                }
                Err(e) => ctx.note(format!("pa: unreadable journalled delta skipped: {e}")),
            }
        }
        if replayed > 0 {
            ctx.note(format!(
                "pa: recovered, replayed {replayed} journalled behaviour records"
            ));
        }
        if let Some(m) = self.maintenance {
            // the maintenance timer died with the host; re-arm the cycle
            ctx.set_timer(
                agentsim::clock::SimDuration::from_micros(m.interval_us),
                MAINTENANCE_TIMER_TAG,
            );
        }
    }

    fn on_creation(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(m) = self.maintenance {
            ctx.set_timer(
                agentsim::clock::SimDuration::from_micros(m.interval_us),
                MAINTENANCE_TIMER_TAG,
            );
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag != MAINTENANCE_TIMER_TAG {
            return;
        }
        let Some(m) = self.maintenance else {
            return;
        };
        self.store.decay_all_profiles(m.decay.clamp(0.0, 1.0));
        self.maintenance_passes += 1;
        ctx.note(format!(
            "pa maintenance pass {}: decayed all profiles by {:.2}",
            self.maintenance_passes, m.decay
        ));
        // persist the decayed profiles (store and userdb are disjoint
        // fields, so the iterator borrow and the mutable save coexist)
        let store = &self.store;
        let userdb = &mut self.userdb;
        for (consumer, profile) in store.profiles() {
            if let Err(e) = userdb.save_profile(consumer, profile) {
                ctx.note(format!("pa: decayed profile persist failed: {e}"));
            }
        }
        ctx.set_timer(
            agentsim::clock::SimDuration::from_micros(m.interval_us),
            MAINTENANCE_TIMER_TAG,
        );
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        match msg.kind.as_str() {
            kinds::PA_LOAD => {
                if let Ok(req) = msg.payload_as::<PaLoad>() {
                    // Fig 4.2 step 5: the PA reads the profile from UserDB.
                    if req.figure == "fig4.2" {
                        ctx.note("fig4.2/step05 pa loads profile from userdb");
                    }
                    let profile = self.load_or_create(req.consumer);
                    let reply = Message::new(kinds::PA_PROFILE)
                        .with_payload(&PaProfile {
                            consumer: req.consumer,
                            profile,
                        })
                        .expect("profile serializes");
                    ctx.reply(&msg, reply);
                }
            }
            kinds::PA_RECORD => {
                if let Ok(rec) = msg.payload_as::<PaRecord>() {
                    self.record(ctx, rec);
                }
            }
            kinds::PA_SIMILAR => {
                if let Ok(req) = msg.payload_as::<PaSimilar>() {
                    let reply_payload = self.similar(&req);
                    ctx.inc_counter("pa.similar_requests", 1);
                    ctx.observe("pa.neighbours_found", reply_payload.neighbours.len() as u64);
                    // export the item-sim cache effectiveness as deltas
                    let (hits, misses) = self.store.item_sim_cache_stats();
                    ctx.inc_counter(
                        "cache.item_sim.hits",
                        hits.saturating_sub(self.cache_hits_emitted),
                    );
                    ctx.inc_counter(
                        "cache.item_sim.misses",
                        misses.saturating_sub(self.cache_misses_emitted),
                    );
                    self.cache_hits_emitted = hits;
                    self.cache_misses_emitted = misses;
                    // eviction causes, so dashboards can tell matrix
                    // churn from an undersized cache
                    let (invalidated, capacity_evicted) = self.store.item_sim_eviction_stats();
                    ctx.inc_counter(
                        "cache.item_sim.invalidated",
                        invalidated.saturating_sub(self.cache_invalidated_emitted),
                    );
                    ctx.inc_counter(
                        "cache.item_sim.capacity_evicted",
                        capacity_evicted.saturating_sub(self.cache_capacity_evicted_emitted),
                    );
                    self.cache_invalidated_emitted = invalidated;
                    self.cache_capacity_evicted_emitted = capacity_evicted;
                    let reply = Message::new(kinds::PA_SIMILAR_REPLY)
                        .with_payload(&reply_payload)
                        .expect("similar reply serializes");
                    ctx.reply(&msg, reply);
                }
            }
            other => {
                ctx.note(format!("pa: unhandled kind {other}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ConsumerId;
    use agentsim::sim::SimWorld;
    use ecp::merchandise::{CategoryPath, ItemId, Merchandise, Money};
    use ecp::terms::TermVector;

    fn merch(id: u64, name: &str) -> Merchandise {
        Merchandise {
            id: ItemId(id),
            name: name.into(),
            category: CategoryPath::new("books", "programming"),
            terms: TermVector::from_pairs([(name.to_lowercase(), 1.0)]),
            list_price: Money::from_units(20),
            seller: 1,
        }
    }

    /// Captures replies for assertions.
    #[derive(Debug, Default, Serialize, Deserialize)]
    struct Sink {
        replies: Vec<(String, serde_json::Value)>,
    }

    impl Agent for Sink {
        fn agent_type(&self) -> &'static str {
            "sink"
        }
        fn snapshot(&self) -> serde_json::Value {
            serde_json::to_value(self).unwrap()
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            if let Some(target) = msg.payload.get("__send_to") {
                let to = agentsim::ids::AgentId(target.as_u64().unwrap());
                let inner = Message::new(msg.payload["kind"].as_str().unwrap())
                    .carrying(msg.payload.project("payload"));
                ctx.send(to, inner);
                return;
            }
            self.replies
                .push((msg.kind.to_string(), msg.payload.to_value()));
        }
    }

    struct Fix {
        world: SimWorld,
        pa: agentsim::ids::AgentId,
        sink: agentsim::ids::AgentId,
    }

    fn fix() -> Fix {
        let mut world = SimWorld::new(11);
        let h = world.add_host("buyer-server");
        let pa = world
            .create_agent(
                h,
                Box::new(ProfileAgent::new(
                    LearnerConfig::default(),
                    SimilarityConfig::default(),
                )),
            )
            .unwrap();
        let sink = world.create_agent(h, Box::new(Sink::default())).unwrap();
        Fix { world, pa, sink }
    }

    fn send_to_pa<T: Serialize>(f: &mut Fix, kind: &str, payload: &T) {
        let mut msg = Message::new("instr");
        msg.payload = serde_json::json!({
            "__send_to": f.pa.0,
            "kind": kind,
            "payload": serde_json::to_value(payload).unwrap(),
        })
        .into();
        f.world.send_external(f.sink, msg).unwrap();
        f.world.run_until_idle();
    }

    fn sink_state(f: &Fix) -> Sink {
        serde_json::from_value(f.world.snapshot_of(f.sink).unwrap()).unwrap()
    }

    fn pa_state(f: &Fix) -> ProfileAgent {
        serde_json::from_value(f.world.snapshot_of(f.pa).unwrap()).unwrap()
    }

    #[test]
    fn pa_load_creates_fresh_profile() {
        let mut f = fix();
        send_to_pa(
            &mut f,
            kinds::PA_LOAD,
            &PaLoad {
                consumer: ConsumerId(1),
                figure: String::new(),
            },
        );
        let s = sink_state(&f);
        assert_eq!(s.replies.len(), 1);
        assert_eq!(s.replies[0].0, kinds::PA_PROFILE);
        let p: PaProfile = serde_json::from_value(s.replies[0].1.clone()).unwrap();
        assert!(p.profile.is_empty());
    }

    #[test]
    fn pa_record_updates_profile_and_persists() {
        let mut f = fix();
        send_to_pa(
            &mut f,
            kinds::PA_RECORD,
            &PaRecord {
                consumer: ConsumerId(1),
                item: merch(1, "rustbook"),
                kind: BehaviorKind::Purchase,
                price: Some(Money::from_units(18)),
                at_us: 42,
            },
        );
        let pa = pa_state(&f);
        assert!(pa.store().profile(ConsumerId(1)).unwrap().total_interest() > 0.0);
        assert_eq!(pa.userdb().profile_count(), 1);
        let txs = pa.userdb().transactions().unwrap();
        assert_eq!(txs.len(), 1);
        assert_eq!(txs[0].price, Money::from_units(18));
    }

    #[test]
    fn pa_record_query_does_not_create_transaction() {
        let mut f = fix();
        send_to_pa(
            &mut f,
            kinds::PA_RECORD,
            &PaRecord {
                consumer: ConsumerId(1),
                item: merch(1, "rustbook"),
                kind: BehaviorKind::Query,
                price: None,
                at_us: 0,
            },
        );
        let pa = pa_state(&f);
        assert_eq!(pa.userdb().transaction_count(), 0);
        assert!(pa.store().profile(ConsumerId(1)).is_some());
    }

    #[test]
    fn pa_similar_finds_neighbours_and_their_preferences() {
        let mut f = fix();
        // consumer 2 and 3 share taste; 3 bought item 9 which 2 hasn't
        for c in [2u64, 3] {
            for i in [1u64, 2, 3] {
                send_to_pa(
                    &mut f,
                    kinds::PA_RECORD,
                    &PaRecord {
                        consumer: ConsumerId(c),
                        item: merch(i, &format!("rustbook{i}")),
                        kind: BehaviorKind::Purchase,
                        price: None,
                        at_us: 0,
                    },
                );
            }
        }
        send_to_pa(
            &mut f,
            kinds::PA_RECORD,
            &PaRecord {
                consumer: ConsumerId(3),
                item: merch(9, "rustbook9"),
                kind: BehaviorKind::Purchase,
                price: None,
                at_us: 0,
            },
        );
        send_to_pa(
            &mut f,
            kinds::PA_SIMILAR,
            &PaSimilar {
                consumer: ConsumerId(2),
                offers: vec![],
                k_neighbours: 5,
            },
        );
        let s = sink_state(&f);
        let reply: PaSimilarReply =
            serde_json::from_value(s.replies.last().unwrap().1.clone()).unwrap();
        assert!(
            !reply.neighbours.is_empty(),
            "consumer 3 should be a neighbour"
        );
        assert_eq!(reply.neighbours[0].0, ConsumerId(3));
        assert!(
            reply
                .neighbour_preferences
                .iter()
                .any(|(m, _)| m.id == ItemId(9)),
            "item 9 must appear among neighbour preferences"
        );
        // items consumer 2 already bought are excluded
        assert!(reply
            .neighbour_preferences
            .iter()
            .all(|(m, _)| m.id != ItemId(1)));
    }

    #[test]
    fn maintenance_cycle_decays_profiles_periodically() {
        use agentsim::clock::{SimDuration, SimTime};
        let mut world = SimWorld::new(12);
        let h = world.add_host("buyer-server");
        let pa = world
            .create_agent(
                h,
                Box::new(
                    ProfileAgent::new(LearnerConfig::default(), SimilarityConfig::default())
                        .with_maintenance(MaintenanceConfig {
                            interval_us: 1_000_000, // every simulated second
                            decay: 0.5,
                        }),
                ),
            )
            .unwrap();
        let sink = world.create_agent(h, Box::new(Sink::default())).unwrap();
        // seed one behaviour
        let mut msg = Message::new("instr");
        msg.payload = serde_json::json!({
            "__send_to": pa.0,
            "kind": kinds::PA_RECORD,
            "payload": serde_json::to_value(&PaRecord {
                consumer: ConsumerId(1),
                item: merch(1, "rustbook"),
                kind: BehaviorKind::Purchase,
                price: None,
                at_us: 0,
            }).unwrap(),
        })
        .into();
        world.send_external(sink, msg).unwrap();
        world.run_until(SimTime::ZERO + SimDuration::from_millis(100));
        let before: ProfileAgent = serde_json::from_value(world.snapshot_of(pa).unwrap()).unwrap();
        let interest_before = before
            .store()
            .profile(ConsumerId(1))
            .unwrap()
            .total_interest();
        // run past three maintenance intervals (never run_until_idle —
        // the cycle re-arms forever)
        world.run_until(SimTime::ZERO + SimDuration::from_micros(3_500_000));
        let after: ProfileAgent = serde_json::from_value(world.snapshot_of(pa).unwrap()).unwrap();
        assert_eq!(after.maintenance_passes(), 3);
        let interest_after = after
            .store()
            .profile(ConsumerId(1))
            .map(|p| p.total_interest())
            .unwrap_or(0.0);
        assert!(
            interest_after < interest_before * 0.2,
            "three 0.5 decays must shrink interest to 12.5%: {interest_before} -> {interest_after}"
        );
    }

    #[test]
    fn pa_similar_cold_consumer_gets_empty_neighbours() {
        let mut f = fix();
        send_to_pa(
            &mut f,
            kinds::PA_SIMILAR,
            &PaSimilar {
                consumer: ConsumerId(42),
                offers: vec![merch(1, "x")],
                k_neighbours: 5,
            },
        );
        let s = sink_state(&f);
        let reply: PaSimilarReply =
            serde_json::from_value(s.replies.last().unwrap().1.clone()).unwrap();
        assert!(reply.neighbours.is_empty());
        assert!(reply.profile.is_empty());
    }
}
