//! The Mobile Buyer Agent (MBA).
//!
//! §3.3: *"MBA created by BRA. When consumer decides to query, buy or
//! auction BRA will create MBA and assign specified tasks. MBA will
//! migrate to marketplaces in E-Commerce and represent consumer to
//! complete the assigned task."*
//!
//! The MBA is the only routinely-migrating agent: it carries its task and
//! collected results as serde state, visits one or more marketplaces
//! (§5.1 claim 3: *"the MBA can collect merchandise information between
//! more th\[a\]n two online marketplaces"*), then returns home where the
//! platform authenticates its travel permit before the BSMA reactivates
//! the waiting BRA.

use crate::agents::msg::{
    kinds, BuyMode, MarketRef, MarketReport, MarketStatus, MbaResult, MbaReturned,
};
use crate::profile::ConsumerId;
use agentsim::agent::{Agent, Ctx};
use agentsim::clock::SimDuration;
use agentsim::ids::{AgentId, HostId};
use agentsim::message::Message;
use ecp::merchandise::{CategoryPath, ItemId, Money};
use ecp::negotiation::{BuyerMove, BuyerPolicy, BuyerSession};
use ecp::protocol::{
    self as ecpk, AuctionBid, AuctionClosed, AuctionJoin, AuctionStatus, BuyConfirm, BuyRequest,
    NegotiateAccept, NegotiateCounter, NegotiateOffer, Offer, QueryRequest, QueryResponse,
};
use serde::{Deserialize, Serialize};

/// Agent-type tag of [`MobileBuyerAgent`].
pub const MBA_TYPE: &str = "mba";

/// Timer tag for retrying the trip home when the home host is
/// unreachable. Market-wait timers use the market index as tag, so this
/// sentinel can never collide.
const HOME_RETRY_TAG: u64 = u64::MAX;

/// Backoff base for home-trip retries (doubles per attempt).
const HOME_RETRY_BASE_US: u64 = 100_000;
/// Cap on a single home-trip retry delay.
const HOME_RETRY_CAP_US: u64 = 2_000_000;
/// Home-trip retries before the MBA gives up and disposes itself (the
/// BSMA watchdog has long since declared it lost by then).
const HOME_RETRY_LIMIT: u32 = 16;

/// The MBA's assigned task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MbaTask {
    /// Collect offers across the itinerary.
    Query {
        /// Search keywords.
        keywords: Vec<String>,
        /// Optional category filter.
        category: Option<CategoryPath>,
        /// Offers per marketplace.
        max_results: usize,
    },
    /// Buy one item at the (single) target marketplace.
    Buy {
        /// Item to buy.
        item: ItemId,
        /// Buying mode.
        mode: BuyMode,
        /// Durable purchase-intent id minted by the BRA. Carried on every
        /// buy/negotiate message so the marketplace ledger can dedupe
        /// retries of the same purchase (at-most-once). `None` when
        /// durability is off — the wire format is then unchanged.
        #[serde(default)]
        intent: Option<u64>,
    },
    /// Bid in an auction up to `limit`.
    Auction {
        /// Auctioned item.
        item: ItemId,
        /// Price ceiling.
        limit: Money,
    },
}

impl MbaTask {
    fn figure(&self) -> &'static str {
        match self {
            MbaTask::Query { .. } => "fig4.2",
            _ => "fig4.3",
        }
    }
}

/// The Mobile Buyer Agent.
#[derive(Debug, Serialize, Deserialize)]
pub struct MobileBuyerAgent {
    home: HostId,
    bsma: AgentId,
    bra: AgentId,
    consumer: ConsumerId,
    task: MbaTask,
    markets: Vec<MarketRef>,
    next_market: usize,
    offers: Vec<Offer>,
    result: Option<MbaResult>,
    negotiation: Option<BuyerSession>,
    my_last_bid: Option<Money>,
    bids_placed: u32,
    /// Per-marketplace outcome tags carried home for the BRA.
    #[serde(default)]
    reports: Vec<MarketReport>,
    /// True between sending a request to the current marketplace and
    /// receiving its first reply; gates the no-reply watchdog.
    #[serde(default)]
    awaiting_reply: bool,
    /// How long to wait for the first reply at a marketplace before
    /// marking it [`MarketStatus::NoReply`] and moving on. 0 disables the
    /// watchdog (pre-chaos behaviour).
    #[serde(default)]
    market_wait_us: u64,
    /// Home-trip retry attempts so far.
    #[serde(default)]
    home_attempts: u32,
}

impl MobileBuyerAgent {
    /// Create an MBA for `task`, visiting `markets` in order.
    pub fn new(
        home: HostId,
        bsma: AgentId,
        bra: AgentId,
        consumer: ConsumerId,
        task: MbaTask,
        markets: Vec<MarketRef>,
    ) -> Self {
        MobileBuyerAgent {
            home,
            bsma,
            bra,
            consumer,
            task,
            markets,
            next_market: 0,
            offers: Vec::new(),
            result: None,
            negotiation: None,
            my_last_bid: None,
            bids_placed: 0,
            reports: Vec::new(),
            awaiting_reply: false,
            market_wait_us: 0,
            home_attempts: 0,
        }
    }

    /// Enable the per-marketplace no-reply watchdog with the given wait.
    pub fn with_market_wait_us(mut self, market_wait_us: u64) -> Self {
        self.market_wait_us = market_wait_us;
        self
    }

    fn current_market(&self) -> Option<MarketRef> {
        self.markets.get(self.next_market).copied()
    }

    fn go_home(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.host() == self.home {
            // never left (all dispatches refused): report in place
            self.deliver_result_local(ctx);
        } else {
            ctx.dispatch_self(self.home);
        }
    }

    /// Hand the result to the BRA, notify the BSMA and dispose — the MBA
    /// is already on its home host (arrived, or never managed to leave).
    fn deliver_result_local(&mut self, ctx: &mut Ctx<'_>) {
        // The trip is over and the result is in hand: hand it over even
        // if the deadline lapsed en route — dropping the final local hop
        // would waste the whole trip.
        if ctx.deadline().is_some() {
            ctx.clear_deadline();
        }
        let result = self.result.clone().unwrap_or(MbaResult::Offers {
            offers: self.offers.clone(),
            reports: self.reports.clone(),
        });
        let msg = Message::new(kinds::MBA_RESULT)
            .with_payload(&result)
            .expect("result serializes");
        ctx.send(self.bra, msg);
        let notice = Message::new(kinds::MBA_RETURNED)
            .with_payload(&MbaReturned {
                mba: ctx.self_id(),
                bra: self.bra,
                reports: self.reports.clone(),
            })
            .expect("returned serializes");
        ctx.send(self.bsma, notice);
        ctx.dispose_self();
    }

    fn advance_or_home(&mut self, ctx: &mut Ctx<'_>) {
        self.next_market += 1;
        match self.current_market() {
            Some(market) if matches!(self.task, MbaTask::Query { .. }) => {
                ctx.dispatch_self(market.host);
            }
            _ => {
                if self.result.is_none() {
                    self.result = Some(MbaResult::Offers {
                        offers: self.offers.clone(),
                        reports: self.reports.clone(),
                    });
                }
                self.go_home(ctx);
            }
        }
    }

    fn finish_with(&mut self, ctx: &mut Ctx<'_>, result: MbaResult) {
        let fig = self.task.figure();
        let step = if fig == "fig4.2" { "step11" } else { "step10" };
        ctx.note(format!("{fig}/{step} marketplace result received by mba"));
        self.result = Some(result);
        self.go_home(ctx);
    }

    fn start_at_market(&mut self, ctx: &mut Ctx<'_>) {
        let Some(market) = self.current_market() else {
            // empty itinerary: nothing to do
            self.result = Some(MbaResult::Offers {
                offers: Vec::new(),
                reports: self.reports.clone(),
            });
            self.go_home(ctx);
            return;
        };
        let fig = self.task.figure();
        let step = if fig == "fig4.2" { "step10" } else { "step09" };
        ctx.note(format!("{fig}/{step} mba at {} executing task", ctx.host()));
        self.awaiting_reply = true;
        if self.market_wait_us > 0 {
            ctx.set_timer(
                SimDuration::from_micros(self.market_wait_us),
                self.next_market as u64,
            );
        }
        match &self.task {
            MbaTask::Query {
                keywords,
                category,
                max_results,
            } => {
                let req = QueryRequest {
                    keywords: keywords.clone(),
                    category: category.clone(),
                    max_results: *max_results,
                };
                let msg = Message::new(ecpk::kinds::QUERY_REQUEST)
                    .with_payload(&req)
                    .expect("query serializes");
                ctx.send(market.agent, msg);
            }
            MbaTask::Buy { item, mode, intent } => match mode {
                BuyMode::Direct => {
                    let msg = Message::new(ecpk::kinds::BUY_REQUEST)
                        .with_payload(&BuyRequest {
                            item: *item,
                            intent: *intent,
                        })
                        .expect("buy serializes");
                    ctx.send(market.agent, msg);
                }
                BuyMode::Negotiate {
                    budget,
                    opening_fraction,
                    raise,
                    max_rounds,
                } => {
                    let policy = BuyerPolicy {
                        budget: *budget,
                        opening_fraction: *opening_fraction,
                        raise: *raise,
                        max_rounds: *max_rounds,
                    };
                    // the budget doubles as the price reference for the
                    // opening offer; the seller's counters steer from there
                    let mut session = BuyerSession::open(policy, *budget);
                    let opening = session.opening_offer();
                    self.negotiation = Some(session);
                    let msg = Message::new(ecpk::kinds::NEGOTIATE_OFFER)
                        .with_payload(&NegotiateOffer {
                            item: *item,
                            offer: opening,
                            intent: *intent,
                        })
                        .expect("offer serializes");
                    ctx.send(market.agent, msg);
                }
            },
            MbaTask::Auction { item, .. } => {
                let msg = Message::new(ecpk::kinds::AUCTION_JOIN)
                    .with_payload(&AuctionJoin { item: *item })
                    .expect("join serializes");
                ctx.send(market.agent, msg);
            }
        }
    }

    fn maybe_bid(&mut self, ctx: &mut Ctx<'_>, status: &AuctionStatus) {
        let MbaTask::Auction { item, limit } = &self.task else {
            return;
        };
        if !status.open {
            return;
        }
        if status.sealed {
            // Vickrey: bid the true limit once — the dominant strategy —
            // then wait for the close.
            if self.my_last_bid.is_none() && status.minimum_bid <= *limit {
                let Some(market) = self.current_market() else {
                    return;
                };
                self.my_last_bid = Some(*limit);
                self.bids_placed += 1;
                let msg = Message::new(ecpk::kinds::AUCTION_BID)
                    .with_payload(&AuctionBid {
                        item: *item,
                        amount: *limit,
                    })
                    .expect("bid serializes");
                ctx.send(market.agent, msg);
            }
            return;
        }
        let leading_ours = match (self.my_last_bid, status.leading_bid) {
            (Some(mine), Some(lead)) => lead <= mine,
            _ => false,
        };
        if leading_ours {
            return; // still winning; wait
        }
        if status.minimum_bid <= *limit {
            let Some(market) = self.current_market() else {
                return;
            };
            let amount = status.minimum_bid;
            self.my_last_bid = Some(amount);
            self.bids_placed += 1;
            let msg = Message::new(ecpk::kinds::AUCTION_BID)
                .with_payload(&AuctionBid {
                    item: *item,
                    amount,
                })
                .expect("bid serializes");
            ctx.send(market.agent, msg);
        }
        // above the limit: stay joined, await the close notification
    }
}

impl Agent for MobileBuyerAgent {
    fn agent_type(&self) -> &'static str {
        MBA_TYPE
    }

    fn snapshot(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("mba state serializes")
    }

    fn on_creation(&mut self, ctx: &mut Ctx<'_>) {
        // created at home by the BRA; head straight out
        match self.current_market() {
            Some(market) => ctx.dispatch_self(market.host),
            None => {
                // degenerate task with no marketplaces
                self.result = Some(MbaResult::Offers {
                    offers: Vec::new(),
                    reports: Vec::new(),
                });
                self.deliver_result_local(ctx);
            }
        }
    }

    fn on_arrival(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.host() == self.home {
            // back home; the platform already verified the travel permit
            let fig = self.task.figure();
            let step = if fig == "fig4.2" { "step12" } else { "step11" };
            ctx.note(format!("{fig}/{step} mba returned home and authenticated"));
            self.deliver_result_local(ctx);
        } else {
            self.start_at_market(ctx);
        }
    }

    fn on_rehomed(&mut self, ctx: &mut Ctx<'_>, new_home: HostId) {
        // The buyer server we left from died and its state failed over to
        // a standby: steer the return trip there, and reset the trip-home
        // backoff — the retries burned against the dead host say nothing
        // about the standby's reachability.
        self.home = new_home;
        self.home_attempts = 0;
        ctx.note(format!("mba: rehomed to failover host {new_home}"));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        if tag == HOME_RETRY_TAG {
            ctx.dispatch_self(self.home);
            return;
        }
        // market no-reply watchdog; stale once a reply arrived or the
        // itinerary advanced past the tagged market
        if !self.awaiting_reply || tag != self.next_market as u64 {
            return;
        }
        let Some(market) = self.current_market() else {
            return;
        };
        self.awaiting_reply = false;
        ctx.note(format!(
            "mba: no reply from marketplace at {} within {}us",
            market.host, self.market_wait_us
        ));
        self.reports.push(MarketReport {
            market,
            status: MarketStatus::NoReply,
        });
        match &self.task {
            MbaTask::Query { .. } => self.advance_or_home(ctx),
            MbaTask::Buy { item, .. } | MbaTask::Auction { item, .. } => {
                let item = *item;
                self.result = Some(MbaResult::BuyFailed {
                    item,
                    reason: "marketplace did not respond".into(),
                });
                self.go_home(ctx);
            }
        }
    }

    fn on_dispatch_failed(&mut self, ctx: &mut Ctx<'_>, dest: HostId) {
        if dest == self.home {
            // stranded at a marketplace: retry the trip home with a
            // doubling backoff until the fault heals, then give up
            if self.home_attempts >= HOME_RETRY_LIMIT {
                ctx.note("mba: home unreachable, giving up".to_string());
                ctx.dispose_self();
                return;
            }
            let mut delay = HOME_RETRY_BASE_US
                .saturating_mul(1 << self.home_attempts.min(5))
                .min(HOME_RETRY_CAP_US);
            // under a request deadline, compress the wait into whatever
            // budget remains — home is where the degraded reply happens
            if let Some(rem) = ctx.remaining_us() {
                if rem == 0 {
                    ctx.note("mba: home unreachable and deadline spent, giving up".to_string());
                    ctx.dispose_self();
                    return;
                }
                delay = delay.min(rem);
            }
            self.home_attempts += 1;
            ctx.set_timer(SimDuration::from_micros(delay), HOME_RETRY_TAG);
            return;
        }
        let Some(market) = self.current_market() else {
            return;
        };
        if market.host != dest {
            return;
        }
        ctx.note(format!("mba: marketplace at {dest} unreachable"));
        self.reports.push(MarketReport {
            market,
            status: MarketStatus::Unreachable,
        });
        match &self.task {
            MbaTask::Query { .. } => self.advance_or_home(ctx),
            MbaTask::Buy { item, .. } | MbaTask::Auction { item, .. } => {
                let item = *item;
                self.result = Some(MbaResult::BuyFailed {
                    item,
                    reason: "marketplace unreachable".into(),
                });
                self.go_home(ctx);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        // buy/auction tasks visit a single marketplace, so any reply
        // disarms the no-reply watchdog; query replies are matched against
        // the current market below before disarming
        if msg.kind != ecpk::kinds::QUERY_RESPONSE {
            self.awaiting_reply = false;
        }
        match msg.kind.as_str() {
            ecpk::kinds::QUERY_RESPONSE => {
                if let Ok(resp) = msg.payload_as::<QueryResponse>() {
                    let Some(market) = self.current_market() else {
                        return;
                    };
                    if msg.from != Some(market.agent) {
                        // a reply from a marketplace already written off
                        // as NoReply chased us here; the itinerary moved on
                        ctx.note("mba: stale query response ignored".to_string());
                        return;
                    }
                    self.awaiting_reply = false;
                    ctx.note(format!(
                        "fig4.2/step11 offers received at {} ({})",
                        ctx.host(),
                        resp.offers.len()
                    ));
                    self.reports.push(MarketReport {
                        market,
                        status: MarketStatus::Visited,
                    });
                    self.offers.extend(resp.offers);
                    self.advance_or_home(ctx);
                }
            }
            ecpk::kinds::BUY_CONFIRM => {
                if let Ok(confirm) = msg.payload_as::<BuyConfirm>() {
                    self.finish_with(
                        ctx,
                        MbaResult::Bought {
                            item: confirm.item,
                            price: confirm.price,
                            negotiated: false,
                            rounds: 0,
                        },
                    );
                }
            }
            ecpk::kinds::BUY_REJECT => {
                let item = match &self.task {
                    MbaTask::Buy { item, .. } => *item,
                    _ => ItemId(0),
                };
                self.finish_with(
                    ctx,
                    MbaResult::BuyFailed {
                        item,
                        reason: "marketplace rejected".into(),
                    },
                );
            }
            ecpk::kinds::NEGOTIATE_COUNTER => {
                let Ok(counter) = msg.payload_as::<NegotiateCounter>() else {
                    return;
                };
                let Some(session) = self.negotiation.as_mut() else {
                    return;
                };
                let intent = match &self.task {
                    MbaTask::Buy { intent, .. } => *intent,
                    _ => None,
                };
                match session.respond(counter.ask) {
                    BuyerMove::Offer(next) | BuyerMove::Accept(next) => {
                        let offer = Message::new(ecpk::kinds::NEGOTIATE_OFFER)
                            .with_payload(&NegotiateOffer {
                                item: counter.item,
                                offer: next,
                                intent,
                            })
                            .expect("offer serializes");
                        ctx.reply(&msg, offer);
                    }
                    BuyerMove::Abort => {
                        let rounds = session.rounds();
                        self.finish_with(
                            ctx,
                            MbaResult::BuyFailed {
                                item: counter.item,
                                reason: format!("no deal after {rounds} offers"),
                            },
                        );
                    }
                }
            }
            ecpk::kinds::NEGOTIATE_ACCEPT => {
                if let Ok(accept) = msg.payload_as::<NegotiateAccept>() {
                    let rounds = self.negotiation.as_ref().map(|s| s.rounds()).unwrap_or(0);
                    self.finish_with(
                        ctx,
                        MbaResult::Bought {
                            item: accept.item,
                            price: accept.price,
                            negotiated: true,
                            rounds,
                        },
                    );
                }
            }
            ecpk::kinds::NEGOTIATE_REJECT => {
                let item = match &self.task {
                    MbaTask::Buy { item, .. } => *item,
                    _ => ItemId(0),
                };
                self.finish_with(
                    ctx,
                    MbaResult::BuyFailed {
                        item,
                        reason: "negotiation rejected".into(),
                    },
                );
            }
            ecpk::kinds::AUCTION_STATUS | ecpk::kinds::BID_ACCEPTED => {
                if let Ok(status) = msg.payload_as::<AuctionStatus>() {
                    self.maybe_bid(ctx, &status);
                }
            }
            ecpk::kinds::BID_REJECTED => {
                match msg.payload_as::<AuctionStatus>() {
                    Ok(status) if status.sealed => {
                        // sealed bids are one-shot; stay joined and wait
                        // for the close notification
                    }
                    Ok(status) => {
                        // our optimistic last bid never landed
                        self.my_last_bid = None;
                        self.maybe_bid(ctx, &status)
                    }
                    Err(_) => {
                        // no auction exists at all
                        let item = match &self.task {
                            MbaTask::Auction { item, .. } => *item,
                            _ => ItemId(0),
                        };
                        self.finish_with(
                            ctx,
                            MbaResult::BuyFailed {
                                item,
                                reason: "auction unavailable".into(),
                            },
                        );
                    }
                }
            }
            ecpk::kinds::AUCTION_CLOSED => {
                if let Ok(closed) = msg.payload_as::<AuctionClosed>() {
                    let bids = self.bids_placed;
                    self.finish_with(
                        ctx,
                        MbaResult::AuctionDone {
                            item: closed.item,
                            won: closed.you_won,
                            price: closed.outcome.price(),
                            bids,
                        },
                    );
                }
            }
            other => {
                ctx.note(format!("mba: unhandled kind {other}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentsim::sim::SimWorld;
    use ecp::marketplace::{MarketplaceAgent, MARKETPLACE_TYPE};
    use ecp::protocol::Listing;
    use ecp::seller::{SellerAgent, SELLER_TYPE};
    use ecp::terms::TermVector;

    fn listing(id: u64, name: &str, price: u64) -> Listing {
        Listing {
            item: ecp::merchandise::Merchandise {
                id: ItemId(id),
                name: name.into(),
                category: CategoryPath::new("books", "programming"),
                terms: TermVector::from_pairs([(name.to_lowercase(), 1.0)]),
                list_price: Money::from_units(price),
                seller: 1,
            },
            reservation: Money::from_units(price * 7 / 10),
            concession: 0.1,
        }
    }

    /// Collects MBA_RESULT / MBA_RETURNED messages (stands in for BRA and
    /// BSMA).
    #[derive(Debug, Default, Serialize, Deserialize)]
    struct Home {
        results: Vec<MbaResult>,
        returned: u32,
    }

    impl Agent for Home {
        fn agent_type(&self) -> &'static str {
            "home"
        }
        fn snapshot(&self) -> serde_json::Value {
            serde_json::to_value(self).unwrap()
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, msg: Message) {
            match msg.kind.as_str() {
                kinds::MBA_RESULT => {
                    self.results.push(msg.payload_as().unwrap());
                }
                kinds::MBA_RETURNED => {
                    self.returned += 1;
                }
                _ => {}
            }
        }
    }

    struct Fix {
        world: SimWorld,
        home_host: HostId,
        home_agent: AgentId,
        markets: Vec<MarketRef>,
    }

    fn fix(n_markets: usize) -> Fix {
        let mut world = SimWorld::new(21);
        world
            .registry_mut()
            .register_serde::<MobileBuyerAgent>(MBA_TYPE);
        world
            .registry_mut()
            .register_serde::<MarketplaceAgent>(MARKETPLACE_TYPE);
        world
            .registry_mut()
            .register_serde::<SellerAgent>(SELLER_TYPE);
        world.registry_mut().register_serde::<Home>("home");
        let home_host = world.add_host("buyer-server");
        let home_agent = world
            .create_agent(home_host, Box::new(Home::default()))
            .unwrap();
        let mut markets = Vec::new();
        for i in 0..n_markets {
            let mh = world.add_host(format!("market-{i}"));
            let agent = world
                .create_agent(mh, Box::new(MarketplaceAgent::new(format!("m{i}"))))
                .unwrap();
            markets.push(MarketRef { host: mh, agent });
            // each market gets two listings, ids disjoint per market
            let base = (i as u64) * 10;
            let sh = world.add_host(format!("seller-{i}"));
            world
                .create_agent(
                    sh,
                    Box::new(SellerAgent::new(
                        i as u32 + 1,
                        format!("s{i}"),
                        vec![
                            listing(base + 1, &format!("rustbook{}", base + 1), 30),
                            listing(base + 2, &format!("gobook{}", base + 2), 25),
                        ],
                        vec![agent],
                    )),
                )
                .unwrap();
        }
        world.run_until_idle();
        Fix {
            world,
            home_host,
            home_agent,
            markets,
        }
    }

    fn launch(f: &mut Fix, task: MbaTask, markets: Vec<MarketRef>) -> AgentId {
        let mba = MobileBuyerAgent::new(
            f.home_host,
            f.home_agent,
            f.home_agent,
            ConsumerId(1),
            task,
            markets,
        );
        f.world.create_agent(f.home_host, Box::new(mba)).unwrap()
    }

    fn home_state(f: &Fix) -> Home {
        serde_json::from_value(f.world.snapshot_of(f.home_agent).unwrap()).unwrap()
    }

    #[test]
    fn query_task_collects_offers_from_all_markets_and_returns() {
        let mut f = fix(3);
        let markets = f.markets.clone();
        let mba = launch(
            &mut f,
            MbaTask::Query {
                keywords: vec!["rustbook1".into(), "rustbook11".into(), "rustbook21".into()],
                category: None,
                max_results: 5,
            },
            markets,
        );
        f.world.run_until_idle();
        let h = home_state(&f);
        assert_eq!(h.returned, 1);
        assert_eq!(h.results.len(), 1);
        match &h.results[0] {
            MbaResult::Offers { offers, reports } => {
                assert_eq!(offers.len(), 3, "one matching offer per market");
                assert_eq!(reports.len(), 3, "every market tagged");
                assert!(
                    reports.iter().all(|r| r.status == MarketStatus::Visited),
                    "clean run visits every market: {reports:?}"
                );
                let hosts: std::collections::BTreeSet<_> =
                    offers.iter().map(|o| o.marketplace).collect();
                assert_eq!(
                    hosts.len(),
                    3,
                    "offers must come from 3 distinct marketplaces"
                );
            }
            other => panic!("expected offers, got {other:?}"),
        }
        // the MBA disposed itself after reporting
        assert_eq!(f.world.location(mba), None);
        // 4 migrations: home->m0->m1->m2->home
        assert_eq!(f.world.metrics().migrations, 4);
        assert_eq!(f.world.metrics().migrations_rejected, 0);
    }

    #[test]
    fn direct_buy_returns_receipt() {
        let mut f = fix(1);
        let market = f.markets[0];
        launch(
            &mut f,
            MbaTask::Buy {
                item: ItemId(1),
                mode: BuyMode::Direct,
                intent: None,
            },
            vec![market],
        );
        f.world.run_until_idle();
        let h = home_state(&f);
        match &h.results[0] {
            MbaResult::Bought {
                item,
                price,
                negotiated,
                rounds,
            } => {
                assert_eq!(item.id, ItemId(1));
                assert_eq!(*price, Money::from_units(30));
                assert!(!negotiated);
                assert_eq!(*rounds, 0);
            }
            other => panic!("expected purchase, got {other:?}"),
        }
    }

    #[test]
    fn buy_unknown_item_fails_gracefully() {
        let mut f = fix(1);
        let market = f.markets[0];
        launch(
            &mut f,
            MbaTask::Buy {
                item: ItemId(999),
                mode: BuyMode::Direct,
                intent: None,
            },
            vec![market],
        );
        f.world.run_until_idle();
        let h = home_state(&f);
        assert!(matches!(&h.results[0], MbaResult::BuyFailed { item, .. } if *item == ItemId(999)));
        assert_eq!(h.returned, 1, "mba must still come home after failure");
    }

    #[test]
    fn negotiation_with_sufficient_budget_closes_a_deal() {
        let mut f = fix(1);
        let market = f.markets[0];
        launch(
            &mut f,
            MbaTask::Buy {
                item: ItemId(1),
                mode: BuyMode::Negotiate {
                    budget: Money::from_units(28),
                    opening_fraction: 0.6,
                    raise: 0.1,
                    max_rounds: 20,
                },
                intent: None,
            },
            vec![market],
        );
        f.world.run_until_idle();
        let h = home_state(&f);
        match &h.results[0] {
            MbaResult::Bought {
                price,
                negotiated,
                rounds,
                ..
            } => {
                assert!(*negotiated);
                assert!(*rounds >= 1);
                assert!(*price <= Money::from_units(28), "never above budget");
                assert!(
                    *price >= Money::from_units(21),
                    "never below the seller's reservation (21): {price}"
                );
            }
            other => panic!("expected negotiated purchase, got {other:?}"),
        }
    }

    #[test]
    fn negotiation_with_hopeless_budget_walks_away() {
        let mut f = fix(1);
        let market = f.markets[0];
        launch(
            &mut f,
            MbaTask::Buy {
                item: ItemId(1),
                mode: BuyMode::Negotiate {
                    budget: Money::from_units(5), // reservation is 21
                    opening_fraction: 0.5,
                    raise: 0.1,
                    max_rounds: 10,
                },
                intent: None,
            },
            vec![market],
        );
        f.world.run_until_idle();
        let h = home_state(&f);
        assert!(
            matches!(&h.results[0], MbaResult::BuyFailed { reason, .. } if reason.contains("no deal")),
            "got {:?}",
            h.results[0]
        );
    }

    #[test]
    fn auction_task_bids_and_learns_outcome() {
        let mut f = fix(1);
        let market = f.markets[0];
        // open an auction externally (a seller would normally do this)
        let open = Message::new(ecpk::kinds::AUCTION_OPEN)
            .with_payload(&ecp::protocol::AuctionOpen {
                item: ItemId(1),
                reserve: Money::from_units(10),
                increment: Money::from_units(1),
                duration_us: 50_000_000,
                sealed: false,
            })
            .unwrap();
        f.world.send_external(market.agent, open).unwrap();
        f.world
            .run_for(agentsim::clock::SimDuration::from_millis(10));
        launch(
            &mut f,
            MbaTask::Auction {
                item: ItemId(1),
                limit: Money::from_units(50),
            },
            vec![market],
        );
        f.world.run_until_idle(); // runs past the deadline; auction settles
        let h = home_state(&f);
        match &h.results[0] {
            MbaResult::AuctionDone {
                won, price, bids, ..
            } => {
                assert!(*won, "sole bidder must win");
                assert_eq!(*price, Some(Money::from_units(10)), "wins at the reserve");
                assert_eq!(*bids, 1);
            }
            other => panic!("expected auction outcome, got {other:?}"),
        }
    }

    #[test]
    fn two_mbas_bid_against_each_other() {
        let mut f = fix(1);
        let market = f.markets[0];
        let open = Message::new(ecpk::kinds::AUCTION_OPEN)
            .with_payload(&ecp::protocol::AuctionOpen {
                item: ItemId(1),
                reserve: Money::from_units(10),
                increment: Money::from_units(1),
                duration_us: 50_000_000,
                sealed: false,
            })
            .unwrap();
        f.world.send_external(market.agent, open).unwrap();
        f.world
            .run_for(agentsim::clock::SimDuration::from_millis(1));
        launch(
            &mut f,
            MbaTask::Auction {
                item: ItemId(1),
                limit: Money::from_units(20),
            },
            vec![market],
        );
        launch(
            &mut f,
            MbaTask::Auction {
                item: ItemId(1),
                limit: Money::from_units(40),
            },
            vec![market],
        );
        f.world.run_until_idle();
        let h = home_state(&f);
        assert_eq!(h.results.len(), 2);
        let wins: Vec<bool> = h
            .results
            .iter()
            .map(|r| matches!(r, MbaResult::AuctionDone { won: true, .. }))
            .collect();
        assert_eq!(wins.iter().filter(|w| **w).count(), 1, "exactly one winner");
        // the deeper-pocketed MBA wins, paying above the poorer one's limit
        for r in &h.results {
            if let MbaResult::AuctionDone {
                won: true, price, ..
            } = r
            {
                let p = price.expect("sold");
                assert!(
                    p > Money::from_units(20),
                    "winner outbid the $20 limit: {p}"
                );
                assert!(p <= Money::from_units(40));
            }
        }
    }

    #[test]
    fn auction_on_missing_item_fails_gracefully() {
        let mut f = fix(1);
        let market = f.markets[0];
        launch(
            &mut f,
            MbaTask::Auction {
                item: ItemId(777),
                limit: Money::from_units(50),
            },
            vec![market],
        );
        f.world.run_until_idle();
        let h = home_state(&f);
        assert!(
            matches!(&h.results[0], MbaResult::BuyFailed { reason, .. } if reason.contains("auction unavailable"))
        );
    }

    #[test]
    fn empty_itinerary_reports_immediately() {
        let mut f = fix(0);
        launch(
            &mut f,
            MbaTask::Query {
                keywords: vec!["x".into()],
                category: None,
                max_results: 5,
            },
            vec![],
        );
        f.world.run_until_idle();
        let h = home_state(&f);
        assert!(matches!(&h.results[0], MbaResult::Offers { offers, .. } if offers.is_empty()));
        assert_eq!(h.returned, 1);
    }

    #[test]
    fn lost_mba_never_reports() {
        let mut f = fix(1);
        let market = f.markets[0];
        // make the link fully lossy: the MBA dies in transit
        f.world
            .topology_mut()
            .set_link_symmetric(f.home_host, market.host, ecp_lossy_link());
        let mba = launch(
            &mut f,
            MbaTask::Buy {
                item: ItemId(1),
                mode: BuyMode::Direct,
                intent: None,
            },
            vec![market],
        );
        f.world.run_until_idle();
        let h = home_state(&f);
        assert!(h.results.is_empty());
        assert_eq!(h.returned, 0);
        assert_eq!(f.world.location(mba), None);
    }

    fn ecp_lossy_link() -> agentsim::net::LinkSpec {
        agentsim::net::LinkSpec::lan().lossy(1.0)
    }

    #[test]
    fn partitioned_market_is_skipped_and_tagged_unreachable() {
        let mut f = fix(2);
        let markets = f.markets.clone();
        // the first market is cut off; the MBA must skip it, visit the
        // second and come home with a partial result
        f.world
            .topology_mut()
            .partition(f.home_host, markets[0].host);
        launch(
            &mut f,
            MbaTask::Query {
                keywords: vec!["rustbook1".into(), "rustbook11".into()],
                category: None,
                max_results: 5,
            },
            markets.clone(),
        );
        f.world.run_until_idle();
        let h = home_state(&f);
        assert_eq!(h.returned, 1, "mba must still report home");
        match &h.results[0] {
            MbaResult::Offers { offers, reports } => {
                assert_eq!(offers.len(), 1, "only the reachable market answered");
                assert_eq!(reports.len(), 2);
                assert_eq!(reports[0].market, markets[0]);
                assert_eq!(reports[0].status, MarketStatus::Unreachable);
                assert_eq!(reports[1].status, MarketStatus::Visited);
            }
            other => panic!("expected offers, got {other:?}"),
        }
        assert!(
            f.world.metrics().chaos_drops >= 1,
            "refused dispatch counted"
        );
    }

    #[test]
    fn fully_partitioned_query_reports_home_without_leaving() {
        let mut f = fix(1);
        let markets = f.markets.clone();
        f.world
            .topology_mut()
            .partition(f.home_host, markets[0].host);
        launch(
            &mut f,
            MbaTask::Query {
                keywords: vec!["rustbook1".into()],
                category: None,
                max_results: 5,
            },
            markets,
        );
        f.world.run_until_idle();
        let h = home_state(&f);
        assert_eq!(h.returned, 1);
        match &h.results[0] {
            MbaResult::Offers { offers, reports } => {
                assert!(offers.is_empty());
                assert_eq!(reports.len(), 1);
                assert_eq!(reports[0].status, MarketStatus::Unreachable);
            }
            other => panic!("expected empty offers, got {other:?}"),
        }
        assert_eq!(f.world.metrics().migrations, 0, "mba never left home");
    }

    #[test]
    fn unreachable_market_fails_a_buy_cleanly() {
        let mut f = fix(1);
        let market = f.markets[0];
        f.world.topology_mut().partition(f.home_host, market.host);
        launch(
            &mut f,
            MbaTask::Buy {
                item: ItemId(1),
                mode: BuyMode::Direct,
                intent: None,
            },
            vec![market],
        );
        f.world.run_until_idle();
        let h = home_state(&f);
        assert!(
            matches!(&h.results[0], MbaResult::BuyFailed { reason, .. }
                if reason.contains("unreachable")),
            "got {:?}",
            h.results[0]
        );
    }

    /// A marketplace stand-in that swallows every message.
    #[derive(Debug, Default, Serialize, Deserialize)]
    struct SilentMarket;

    impl Agent for SilentMarket {
        fn agent_type(&self) -> &'static str {
            "silent-market"
        }
        fn snapshot(&self) -> serde_json::Value {
            serde_json::to_value(self).unwrap()
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_>, _msg: Message) {}
    }

    #[test]
    fn unresponsive_market_times_out_with_noreply_report() {
        let mut world = SimWorld::new(33);
        world
            .registry_mut()
            .register_serde::<MobileBuyerAgent>(MBA_TYPE);
        world.registry_mut().register_serde::<Home>("home");
        world
            .registry_mut()
            .register_serde::<SilentMarket>("silent-market");
        let home_host = world.add_host("buyer-server");
        let home_agent = world
            .create_agent(home_host, Box::new(Home::default()))
            .unwrap();
        let mh = world.add_host("mute-market");
        let market_agent = world.create_agent(mh, Box::new(SilentMarket)).unwrap();
        let market = MarketRef {
            host: mh,
            agent: market_agent,
        };
        let mba = MobileBuyerAgent::new(
            home_host,
            home_agent,
            home_agent,
            ConsumerId(1),
            MbaTask::Query {
                keywords: vec!["x".into()],
                category: None,
                max_results: 5,
            },
            vec![market],
        )
        .with_market_wait_us(250_000);
        world.create_agent(home_host, Box::new(mba)).unwrap();
        world.run_until_idle();
        let h: Home = serde_json::from_value(world.snapshot_of(home_agent).unwrap()).unwrap();
        assert_eq!(h.returned, 1, "watchdog must bring the mba home");
        match &h.results[0] {
            MbaResult::Offers { offers, reports } => {
                assert!(offers.is_empty());
                assert_eq!(reports.len(), 1);
                assert_eq!(reports[0].status, MarketStatus::NoReply);
            }
            other => panic!("expected empty offers, got {other:?}"),
        }
    }

    #[test]
    fn mba_state_round_trips_serde() {
        let mba = MobileBuyerAgent::new(
            HostId(1),
            AgentId(2),
            AgentId(3),
            ConsumerId(4),
            MbaTask::Query {
                keywords: vec!["x".into()],
                category: None,
                max_results: 5,
            },
            vec![MarketRef {
                host: HostId(9),
                agent: AgentId(10),
            }],
        );
        let v = mba.snapshot();
        let back: MobileBuyerAgent = serde_json::from_value(v).unwrap();
        assert_eq!(back.home, HostId(1));
        assert_eq!(back.task, mba.task);
    }
}
