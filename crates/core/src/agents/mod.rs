//! The functional agents of the Buyer Agent Server (paper Fig 3.2).
//!
//! | Agent | Module | Paper role (§3.3) |
//! |-------|--------|-------------------|
//! | BSMA  | [`bsma`]  | manager: login/registration, agent & mobile-agent management |
//! | HttpA | [`httpa`] | web front, translates browser ↔ agent messages |
//! | PA    | [`pa`]    | creates/updates consumer profiles, owns UserDB |
//! | BRA   | [`bra`]   | one per online consumer; drives tasks, creates recommendation information |
//! | MBA   | [`mba`]   | mobile; migrates to marketplaces and trades on the consumer's behalf |
//!
//! [`msg`] defines the message protocol between them.

pub mod bra;
pub mod bsma;
pub mod httpa;
pub mod mba;
pub mod msg;
pub mod pa;

pub use bra::{BuyerRecommendAgent, BRA_TYPE};
pub use bsma::{Bsma, BsmaConfig, BSMA_TYPE};
pub use httpa::{HttpAgent, HTTPA_TYPE};
pub use mba::{MbaTask, MobileBuyerAgent, MBA_TYPE};
pub use pa::{ProfileAgent, PA_TYPE};

/// Register every Buyer-Agent-Server agent type plus the ecp platform
/// agents with a world registry, so capsules rehydrate anywhere.
pub fn register_all(registry: &mut agentsim::agent::AgentRegistry) {
    registry.register_serde::<Bsma>(BSMA_TYPE);
    registry.register_serde::<HttpAgent>(HTTPA_TYPE);
    registry.register_serde::<ProfileAgent>(PA_TYPE);
    registry.register_serde::<BuyerRecommendAgent>(BRA_TYPE);
    registry.register_serde::<MobileBuyerAgent>(MBA_TYPE);
    registry.register_serde::<ecp::CoordinatorAgent>(ecp::COORDINATOR_TYPE);
    registry.register_serde::<ecp::MarketplaceAgent>(ecp::MARKETPLACE_TYPE);
    registry.register_serde::<ecp::SellerAgent>(ecp::SELLER_TYPE);
}

#[cfg(test)]
mod tests {
    #[test]
    fn register_all_covers_every_type() {
        let mut reg = agentsim::agent::AgentRegistry::new();
        super::register_all(&mut reg);
        for t in [
            super::BSMA_TYPE,
            super::HTTPA_TYPE,
            super::PA_TYPE,
            super::BRA_TYPE,
            super::MBA_TYPE,
            ecp::COORDINATOR_TYPE,
            ecp::MARKETPLACE_TYPE,
            ecp::SELLER_TYPE,
        ] {
            assert!(reg.knows(t), "registry must know {t}");
        }
    }
}
