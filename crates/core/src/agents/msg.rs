//! Internal message protocol of the Buyer Agent Server.
//!
//! §4.1 principle 6: *"The coordination of functional agents in
//! recommendation mechanism is through the message passing."* These are
//! the kinds and payloads exchanged between HttpA, BSMA, PA, BRA and MBA.

use crate::learning::BehaviorKind;
use crate::profile::{ConsumerId, Profile};
use agentsim::ids::{AgentId, HostId};
use ecp::merchandise::{CategoryPath, ItemId, Merchandise, Money};
use ecp::protocol::Offer;
use serde::{Deserialize, Serialize};

/// Message kinds internal to the Buyer Agent Server.
pub mod kinds {
    /// Browser → HttpA: a front request ([`super::FrontRequest`]).
    pub const FRONT_REQUEST: &str = "front-request";

    /// HttpA → BSMA: log a consumer in (create their BRA).
    pub const LOGIN: &str = "login";
    /// BSMA → HttpA: session opened; carries the BRA id.
    pub const SESSION_OPEN: &str = "session-open";
    /// HttpA → BSMA: log a consumer out (dispose their BRA).
    pub const LOGOUT: &str = "logout";
    /// BSMA → HttpA: session closed.
    pub const SESSION_CLOSED: &str = "session-closed";
    /// HttpA → BSMA: route a consumer task to their BRA.
    pub const ROUTE_TASK: &str = "route-task";
    /// BSMA → HttpA: routing failed (no session).
    pub const NO_SESSION: &str = "no-session";

    /// BSMA → BRA: perform a task ([`super::ConsumerTask`]).
    pub const BRA_TASK: &str = "bra-task";
    /// BRA → HttpA: response for the consumer ([`super::ResponseBody`]).
    pub const BRA_RESPONSE: &str = "bra-response";

    /// BRA → PA: load (or create) the consumer's profile.
    pub const PA_LOAD: &str = "pa-load";
    /// PA → BRA: the profile.
    pub const PA_PROFILE: &str = "pa-profile";
    /// BRA → PA: record a behaviour / transaction.
    pub const PA_RECORD: &str = "pa-record";
    /// BRA → PA: request recommendation data (similar users' preferences).
    pub const PA_SIMILAR: &str = "pa-similar";
    /// PA → BRA: recommendation data.
    pub const PA_SIMILAR_REPLY: &str = "pa-similar-reply";

    /// BRA → BSMA: register a dispatched MBA (kept in BSMDB, §4.1 p.2).
    pub const MBA_REGISTER: &str = "mba-register";
    /// MBA → BSMA: returned home (post-authentication notice).
    pub const MBA_RETURNED: &str = "mba-returned";
    /// MBA → BRA: the task result.
    pub const MBA_RESULT: &str = "mba-result";
    /// BSMA → BRA: your MBA is overdue and presumed lost.
    pub const MBA_LOST: &str = "mba-lost";

    /// Anyone → BSMA: ask for the EC domain information the mechanism
    /// holds (§3.3 BSMA ability 1: "the E-Commerce information
    /// providing").
    pub const EC_INFO: &str = "ec-info";
    /// BSMA's answer to [`EC_INFO`].
    pub const EC_INFO_REPLY: &str = "ec-info-reply";
}

/// A reference to a marketplace (host + service agent), as stored in
/// BSMDB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarketRef {
    /// Host the marketplace runs on.
    pub host: HostId,
    /// The marketplace service agent.
    pub agent: AgentId,
}

/// How the MBA fared at one marketplace on its itinerary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MarketStatus {
    /// The marketplace was reached and answered the query.
    Visited,
    /// Migration to the marketplace was refused (partition or crash).
    Unreachable,
    /// The MBA reached the marketplace but gave up waiting for a reply.
    NoReply,
}

/// Per-marketplace outcome tag carried home by the MBA so the BRA can
/// label partial results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MarketReport {
    /// The marketplace in question.
    pub market: MarketRef,
    /// What happened there.
    pub status: MarketStatus,
}

/// What a consumer asks the mechanism to do.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ConsumerTask {
    /// Search marketplaces and receive recommendations (Fig 4.2).
    Query {
        /// Search keywords.
        keywords: Vec<String>,
        /// Optional category filter.
        category: Option<CategoryPath>,
        /// Cap on offers per marketplace.
        max_results: usize,
    },
    /// Buy an item (Fig 4.3), directly or by negotiation.
    Buy {
        /// Item to buy.
        item: ItemId,
        /// Marketplace holding the listing.
        market: MarketRef,
        /// Buying mode.
        mode: BuyMode,
    },
    /// Bid in an auction up to a limit (Fig 4.3).
    Auction {
        /// Auctioned item.
        item: ItemId,
        /// Marketplace running the auction.
        market: MarketRef,
        /// Highest price the consumer will pay.
        limit: Money,
    },
}

impl ConsumerTask {
    /// The figure this task's workflow reproduces ("fig4.2" or "fig4.3").
    pub fn figure(&self) -> &'static str {
        match self {
            ConsumerTask::Query { .. } => "fig4.2",
            _ => "fig4.3",
        }
    }
}

/// How to buy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BuyMode {
    /// Pay the list price.
    Direct,
    /// Negotiate with the given buyer policy.
    Negotiate {
        /// Hard price ceiling.
        budget: Money,
        /// Opening offer as a fraction of list.
        opening_fraction: f64,
        /// Per-round raise.
        raise: f64,
        /// Give up after this many offers.
        max_rounds: u32,
    },
}

/// A request from the consumer's browser.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontRequest {
    /// The consumer issuing the request.
    pub consumer: ConsumerId,
    /// What they want.
    pub body: FrontRequestBody,
}

/// Request bodies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FrontRequestBody {
    /// Log in (creates the BRA — §4.1 principle 1).
    Login,
    /// Log out (disposes the BRA).
    Logout,
    /// Run a task.
    Task(ConsumerTask),
}

/// Response delivered to the consumer's browser (read from HttpA state).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontResponse {
    /// Consumer the response is for.
    pub consumer: ConsumerId,
    /// Response body.
    pub body: ResponseBody,
}

/// Response bodies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ResponseBody {
    /// Session opened.
    LoggedIn,
    /// Session closed.
    LoggedOut,
    /// Query results: raw offers plus generated recommendations.
    Recommendations {
        /// Offers collected from the marketplaces.
        offers: Vec<Offer>,
        /// Recommendation information generated by the mechanism.
        recommendations: Vec<RecommendedItem>,
        /// True when the reply fell back to CF-only recommendations from
        /// the cached profile because no marketplace could be reached.
        #[serde(default)]
        degraded: bool,
        /// Marketplaces the MBA could not collect offers from (partial
        /// result tagging; empty on a clean run).
        #[serde(default)]
        unreachable_markets: Vec<MarketRef>,
    },
    /// Purchase receipt.
    Receipt {
        /// Item bought.
        item: Merchandise,
        /// Price paid.
        price: Money,
        /// Trade channel description.
        channel: String,
    },
    /// Auction result.
    AuctionResult {
        /// Item auctioned.
        item: Merchandise,
        /// Whether this consumer won.
        won: bool,
        /// Closing price, if sold.
        price: Option<Money>,
    },
    /// Something went wrong.
    Error(String),
    /// The server shed the request at ingress (admission control).
    Overloaded {
        /// Suggested microseconds to wait before retrying.
        retry_after_us: u64,
    },
}

/// One recommended item with its score and a consumer-facing reason.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecommendedItem {
    /// The item.
    pub item: Merchandise,
    /// Relative score.
    pub score: f64,
    /// Why the mechanism recommends it (dominant signal: similar
    /// consumers, the consumer's own profile, or the current query).
    #[serde(default)]
    pub reason: String,
}

/// Payload of [`kinds::LOGIN`] / [`kinds::LOGOUT`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionRequest {
    /// Consumer logging in/out.
    pub consumer: ConsumerId,
}

/// Payload of [`kinds::SESSION_OPEN`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionOpen {
    /// Consumer whose session opened.
    pub consumer: ConsumerId,
    /// Their BRA.
    pub bra: AgentId,
}

/// Payload of [`kinds::ROUTE_TASK`] and [`kinds::BRA_TASK`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutedTask {
    /// Consumer the task belongs to.
    pub consumer: ConsumerId,
    /// The task.
    pub task: ConsumerTask,
    /// Marketplaces whose circuit breaker is open: the BRA must not
    /// route the MBA there (empty when breakers are off or all closed).
    #[serde(default)]
    pub blocked_markets: Vec<MarketRef>,
}

/// Payload of [`kinds::PA_LOAD`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaLoad {
    /// Consumer whose profile to load.
    pub consumer: ConsumerId,
    /// Workflow figure this load belongs to (`"fig4.2"` / `"fig4.3"`),
    /// used for trace-step attribution; empty for out-of-workflow loads.
    #[serde(default)]
    pub figure: String,
}

/// Payload of [`kinds::PA_PROFILE`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaProfile {
    /// Consumer the profile belongs to.
    pub consumer: ConsumerId,
    /// The (possibly fresh) profile.
    pub profile: Profile,
}

/// Payload of [`kinds::PA_RECORD`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaRecord {
    /// Consumer who acted.
    pub consumer: ConsumerId,
    /// Merchandise involved.
    pub item: Merchandise,
    /// Behaviour kind.
    pub kind: BehaviorKind,
    /// Price, for transactions.
    pub price: Option<Money>,
    /// Simulated timestamp (microseconds).
    pub at_us: u64,
}

/// Payload of [`kinds::PA_SIMILAR`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaSimilar {
    /// Consumer seeking recommendations.
    pub consumer: ConsumerId,
    /// Queried merchandise information (offers just collected).
    pub offers: Vec<Merchandise>,
    /// How many neighbours to consider.
    pub k_neighbours: usize,
}

/// Payload of [`kinds::PA_SIMILAR_REPLY`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaSimilarReply {
    /// Consumer the data is for.
    pub consumer: ConsumerId,
    /// Their current profile.
    pub profile: Profile,
    /// Similar users found in UserDB, best first.
    pub neighbours: Vec<(ConsumerId, f64)>,
    /// Similarity-weighted neighbour preferences over known items
    /// (normalized to `[0, 1]`), with the merchandise data.
    pub neighbour_preferences: Vec<(Merchandise, f64)>,
}

/// Payload of [`kinds::MBA_REGISTER`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MbaRegister {
    /// The MBA being dispatched.
    pub mba: AgentId,
    /// The BRA that owns it (to deactivate now, reactivate on return).
    pub bra: AgentId,
    /// Consumer served.
    pub consumer: ConsumerId,
    /// Microseconds after which the MBA is presumed lost.
    pub timeout_us: u64,
    /// Workflow figure (`"fig4.2"` / `"fig4.3"`) for trace attribution.
    #[serde(default)]
    pub figure: String,
}

/// Payload of [`kinds::MBA_RETURNED`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MbaReturned {
    /// The returning MBA.
    pub mba: AgentId,
    /// Its BRA.
    pub bra: AgentId,
    /// Per-marketplace outcomes from the trip, so the BSMA can feed its
    /// circuit breakers (empty on pre-breaker capsules).
    #[serde(default)]
    pub reports: Vec<MarketReport>,
}

/// Payload of [`kinds::MBA_RESULT`]: what the MBA brought home.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MbaResult {
    /// Offers collected across marketplaces (query task).
    Offers {
        /// Offers gathered at the marketplaces that answered.
        offers: Vec<Offer>,
        /// Per-marketplace outcome tags (empty on pre-chaos capsules).
        #[serde(default)]
        reports: Vec<MarketReport>,
    },
    /// Purchase completed.
    Bought {
        /// Item bought.
        item: Merchandise,
        /// Price paid.
        price: Money,
        /// Whether negotiation was used.
        negotiated: bool,
        /// Buyer offers made (0 for direct buys).
        rounds: u32,
    },
    /// Purchase failed (no deal / rejected / unknown item).
    BuyFailed {
        /// Item attempted.
        item: ItemId,
        /// Reason.
        reason: String,
    },
    /// Auction finished.
    AuctionDone {
        /// Item auctioned.
        item: Merchandise,
        /// Whether we won.
        won: bool,
        /// Closing price, if sold.
        price: Option<Money>,
        /// Bids we placed.
        bids: u32,
    },
}

/// Payload of [`kinds::EC_INFO_REPLY`]: what the Buyer Agent Server
/// knows about its EC domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EcInfo {
    /// Marketplaces recorded in BSMDB.
    pub marketplaces: Vec<MarketRef>,
    /// Consumers currently logged in.
    pub online_consumers: u32,
    /// MBAs currently roaming.
    pub roaming_mbas: u32,
}

/// Payload of [`kinds::BRA_RESPONSE`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BraResponse {
    /// Consumer the response is for.
    pub consumer: ConsumerId,
    /// The response body, forwarded verbatim to the browser.
    pub body: ResponseBody,
}

/// Payload of [`kinds::MBA_LOST`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MbaLost {
    /// The MBA that never came back.
    pub mba: AgentId,
    /// Absolute request deadline (µs) the lost trip ran under, if any.
    /// The notice itself travels deadline-free (it IS the recovery path),
    /// so the budget rides in the payload for the BRA's retry decision.
    #[serde(default)]
    pub deadline_us: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consumer_task_maps_to_figures() {
        let q = ConsumerTask::Query {
            keywords: vec![],
            category: None,
            max_results: 5,
        };
        assert_eq!(q.figure(), "fig4.2");
        let b = ConsumerTask::Buy {
            item: ItemId(1),
            market: MarketRef {
                host: HostId(1),
                agent: AgentId(1),
            },
            mode: BuyMode::Direct,
        };
        assert_eq!(b.figure(), "fig4.3");
        let a = ConsumerTask::Auction {
            item: ItemId(1),
            market: MarketRef {
                host: HostId(1),
                agent: AgentId(1),
            },
            limit: Money(100),
        };
        assert_eq!(a.figure(), "fig4.3");
    }

    #[test]
    fn front_request_round_trips() {
        let req = FrontRequest {
            consumer: ConsumerId(7),
            body: FrontRequestBody::Task(ConsumerTask::Query {
                keywords: vec!["rust".into()],
                category: None,
                max_results: 3,
            }),
        };
        let v = serde_json::to_value(&req).unwrap();
        let back: FrontRequest = serde_json::from_value(v).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn mba_result_variants_round_trip() {
        let results = vec![
            MbaResult::Offers {
                offers: vec![],
                reports: vec![MarketReport {
                    market: MarketRef {
                        host: HostId(3),
                        agent: AgentId(9),
                    },
                    status: MarketStatus::Unreachable,
                }],
            },
            MbaResult::BuyFailed {
                item: ItemId(1),
                reason: "no deal".into(),
            },
        ];
        for r in results {
            let v = serde_json::to_value(&r).unwrap();
            let back: MbaResult = serde_json::from_value(v).unwrap();
            assert_eq!(back, r);
        }
    }
}
