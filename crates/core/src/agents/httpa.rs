//! The Http Agent (HttpA).
//!
//! §3.3: *"HttpA provides the Web interface, let users can use the
//! browser to use all service of Buyer Agent Server. HttpA can translate
//! the aglet message between Web interface and agent or mobile agent."*
//!
//! The "browser" is modelled as external messages injected with
//! [`agentsim::sim::SimWorld::send_external`]; responses accumulate in
//! the HttpA's state, where the driving harness reads them back — the
//! same request/translate/respond path a servlet front would take.

use crate::agents::msg::{
    kinds, BraResponse, FrontRequest, FrontRequestBody, FrontResponse, ResponseBody, RoutedTask,
    SessionOpen, SessionRequest,
};
use agentsim::agent::{Agent, Ctx};
use agentsim::ids::AgentId;
use agentsim::message::Message;
use serde::{Deserialize, Serialize};

/// Agent-type tag of [`HttpAgent`].
pub const HTTPA_TYPE: &str = "httpa";

/// The Http front agent.
#[derive(Debug, Serialize, Deserialize)]
pub struct HttpAgent {
    bsma: AgentId,
    responses: Vec<FrontResponse>,
    requests_seen: u32,
}

impl HttpAgent {
    /// Front agent wired to its BSMA.
    pub fn new(bsma: AgentId) -> Self {
        HttpAgent {
            bsma,
            responses: Vec::new(),
            requests_seen: 0,
        }
    }

    /// Responses delivered so far (the browser's view).
    pub fn responses(&self) -> &[FrontResponse] {
        &self.responses
    }

    /// Number of front requests processed.
    pub fn requests_seen(&self) -> u32 {
        self.requests_seen
    }
}

impl Agent for HttpAgent {
    fn agent_type(&self) -> &'static str {
        HTTPA_TYPE
    }

    fn snapshot(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("httpa state serializes")
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        match msg.kind.as_str() {
            kinds::FRONT_REQUEST => {
                let Ok(req) = msg.payload_as::<FrontRequest>() else {
                    ctx.note("httpa: malformed front request");
                    return;
                };
                self.requests_seen += 1;
                match req.body {
                    FrontRequestBody::Login => {
                        let login = Message::new(kinds::LOGIN)
                            .with_payload(&SessionRequest {
                                consumer: req.consumer,
                            })
                            .expect("login serializes");
                        ctx.send(self.bsma, login);
                    }
                    FrontRequestBody::Logout => {
                        let logout = Message::new(kinds::LOGOUT)
                            .with_payload(&SessionRequest {
                                consumer: req.consumer,
                            })
                            .expect("logout serializes");
                        ctx.send(self.bsma, logout);
                    }
                    FrontRequestBody::Task(task) => {
                        let fig = task.figure();
                        ctx.note(format!("{fig}/step01 buyer request received by httpa"));
                        ctx.note(format!("{fig}/step02 httpa forwards to bsma"));
                        let route = Message::new(kinds::ROUTE_TASK)
                            .with_payload(&RoutedTask {
                                consumer: req.consumer,
                                task,
                            })
                            .expect("route serializes");
                        ctx.send(self.bsma, route);
                    }
                }
            }
            kinds::SESSION_OPEN => {
                if let Ok(open) = msg.payload_as::<SessionOpen>() {
                    self.responses.push(FrontResponse {
                        consumer: open.consumer,
                        body: ResponseBody::LoggedIn,
                    });
                }
            }
            kinds::SESSION_CLOSED => {
                if let Ok(req) = msg.payload_as::<SessionRequest>() {
                    self.responses.push(FrontResponse {
                        consumer: req.consumer,
                        body: ResponseBody::LoggedOut,
                    });
                }
            }
            kinds::NO_SESSION => {
                if let Ok(req) = msg.payload_as::<SessionRequest>() {
                    self.responses.push(FrontResponse {
                        consumer: req.consumer,
                        body: ResponseBody::Error("not logged in".into()),
                    });
                }
            }
            kinds::BRA_RESPONSE => {
                if let Ok(resp) = msg.payload_as::<BraResponse>() {
                    self.responses.push(FrontResponse {
                        consumer: resp.consumer,
                        body: resp.body,
                    });
                }
            }
            other => {
                ctx.note(format!("httpa: unhandled kind {other}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ConsumerId;

    #[test]
    fn httpa_state_round_trips() {
        let mut h = HttpAgent::new(AgentId(5));
        h.responses.push(FrontResponse {
            consumer: ConsumerId(1),
            body: ResponseBody::LoggedIn,
        });
        let back: HttpAgent = serde_json::from_value(h.snapshot()).unwrap();
        assert_eq!(back.responses().len(), 1);
        assert_eq!(back.bsma, AgentId(5));
    }
}
