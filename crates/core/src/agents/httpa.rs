//! The Http Agent (HttpA).
//!
//! §3.3: *"HttpA provides the Web interface, let users can use the
//! browser to use all service of Buyer Agent Server. HttpA can translate
//! the aglet message between Web interface and agent or mobile agent."*
//!
//! The "browser" is modelled as external messages injected with
//! [`agentsim::sim::SimWorld::send_external`]; responses accumulate in
//! the HttpA's state, where the driving harness reads them back — the
//! same request/translate/respond path a servlet front would take.

use crate::admission::{AdmissionConfig, AdmissionGate, AdmissionVerdict, Priority};
use crate::agents::msg::{
    kinds, BraResponse, ConsumerTask, FrontRequest, FrontRequestBody, FrontResponse, ResponseBody,
    RoutedTask, SessionOpen, SessionRequest,
};
use crate::profile::ConsumerId;
use agentsim::agent::{Agent, Ctx};
use agentsim::clock::SimDuration;
use agentsim::ids::AgentId;
use agentsim::message::Message;
use serde::{Deserialize, Serialize};

/// Agent-type tag of [`HttpAgent`].
pub const HTTPA_TYPE: &str = "httpa";

/// The Http front agent.
#[derive(Debug, Serialize, Deserialize)]
pub struct HttpAgent {
    bsma: AgentId,
    responses: Vec<FrontResponse>,
    requests_seen: u32,
    /// Ingress admission gate; `None` (the default) admits everything.
    #[serde(default)]
    admission: Option<AdmissionGate>,
    /// End-to-end deadline minted for each admitted task (µs); 0 disables
    /// deadline propagation.
    #[serde(default)]
    deadline_us: u64,
    /// Tasks admitted but not yet answered: `(consumer, started_us)`.
    /// A watchdog timer per entry guarantees the browser always hears
    /// back, even if the request is dropped mid-pipeline.
    #[serde(default)]
    inflight: Vec<(ConsumerId, u64)>,
}

impl HttpAgent {
    /// Front agent wired to its BSMA.
    pub fn new(bsma: AgentId) -> Self {
        HttpAgent {
            bsma,
            responses: Vec::new(),
            requests_seen: 0,
            admission: None,
            deadline_us: 0,
            inflight: Vec::new(),
        }
    }

    /// Enable admission control at the ingress.
    pub fn with_admission(mut self, config: AdmissionConfig) -> Self {
        self.admission = Some(AdmissionGate::new(config));
        self
    }

    /// Mint an end-to-end deadline of `deadline_us` for each admitted
    /// task (0 keeps deadlines off).
    pub fn with_deadline_us(mut self, deadline_us: u64) -> Self {
        self.deadline_us = deadline_us;
        self
    }

    /// Responses delivered so far (the browser's view).
    pub fn responses(&self) -> &[FrontResponse] {
        &self.responses
    }

    /// Number of front requests processed.
    pub fn requests_seen(&self) -> u32 {
        self.requests_seen
    }

    /// Priority class of a front request: transactions are shed last,
    /// session management first.
    fn class_of(body: &FrontRequestBody) -> Priority {
        match body {
            FrontRequestBody::Task(ConsumerTask::Buy { .. })
            | FrontRequestBody::Task(ConsumerTask::Auction { .. }) => Priority::Transaction,
            FrontRequestBody::Task(ConsumerTask::Query { .. }) => Priority::Query,
            FrontRequestBody::Login | FrontRequestBody::Logout => Priority::Background,
        }
    }

    /// Drop `consumer` from the inflight set; true when it was there.
    fn settle(&mut self, consumer: ConsumerId) -> Option<u64> {
        let pos = self.inflight.iter().position(|(c, _)| *c == consumer)?;
        Some(self.inflight.remove(pos).1)
    }
}

impl Agent for HttpAgent {
    fn agent_type(&self) -> &'static str {
        HTTPA_TYPE
    }

    fn snapshot(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("httpa state serializes")
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        match msg.kind.as_str() {
            kinds::FRONT_REQUEST => {
                let Ok(req) = msg.payload_as::<FrontRequest>() else {
                    ctx.note("httpa: malformed front request");
                    return;
                };
                self.requests_seen += 1;
                if let Some(gate) = &mut self.admission {
                    let class = Self::class_of(&req.body);
                    let verdict = gate.try_admit(ctx.now().as_micros(), class);
                    if let AdmissionVerdict::Shed { retry_after_us } = verdict {
                        ctx.count_shed();
                        ctx.note(format!(
                            "httpa: shed {class:?} request from consumer {} (retry in {retry_after_us} us)",
                            req.consumer.0
                        ));
                        self.responses.push(FrontResponse {
                            consumer: req.consumer,
                            body: ResponseBody::Overloaded { retry_after_us },
                        });
                        return;
                    }
                }
                match req.body {
                    FrontRequestBody::Login => {
                        let login = Message::new(kinds::LOGIN)
                            .with_payload(&SessionRequest {
                                consumer: req.consumer,
                            })
                            .expect("login serializes");
                        ctx.send(self.bsma, login);
                    }
                    FrontRequestBody::Logout => {
                        let logout = Message::new(kinds::LOGOUT)
                            .with_payload(&SessionRequest {
                                consumer: req.consumer,
                            })
                            .expect("logout serializes");
                        ctx.send(self.bsma, logout);
                    }
                    FrontRequestBody::Task(task) => {
                        let fig = task.figure();
                        ctx.note(format!("{fig}/step01 buyer request received by httpa"));
                        ctx.note(format!("{fig}/step02 httpa forwards to bsma"));
                        if self.deadline_us > 0 {
                            // Stamp the deadline before the send so every
                            // downstream hop carries it, and arm a watchdog
                            // with slack so the browser always hears back
                            // even if the request dies mid-pipeline.
                            ctx.set_deadline(
                                ctx.now() + SimDuration::from_micros(self.deadline_us),
                            );
                            self.inflight.push((req.consumer, ctx.now().as_micros()));
                            ctx.set_timer(
                                SimDuration::from_micros(self.deadline_us + self.deadline_us / 2),
                                req.consumer.0,
                            );
                        }
                        let route = Message::new(kinds::ROUTE_TASK)
                            .with_payload(&RoutedTask {
                                consumer: req.consumer,
                                task,
                                blocked_markets: Vec::new(),
                            })
                            .expect("route serializes");
                        ctx.send(self.bsma, route);
                    }
                }
            }
            kinds::SESSION_OPEN => {
                if let Ok(open) = msg.payload_as::<SessionOpen>() {
                    self.responses.push(FrontResponse {
                        consumer: open.consumer,
                        body: ResponseBody::LoggedIn,
                    });
                }
            }
            kinds::SESSION_CLOSED => {
                if let Ok(req) = msg.payload_as::<SessionRequest>() {
                    self.responses.push(FrontResponse {
                        consumer: req.consumer,
                        body: ResponseBody::LoggedOut,
                    });
                }
            }
            kinds::NO_SESSION => {
                if let Ok(req) = msg.payload_as::<SessionRequest>() {
                    self.settle(req.consumer);
                    self.responses.push(FrontResponse {
                        consumer: req.consumer,
                        body: ResponseBody::Error("not logged in".into()),
                    });
                }
            }
            kinds::BRA_RESPONSE => {
                if let Ok(resp) = msg.payload_as::<BraResponse>() {
                    if let Some(started_us) = self.settle(resp.consumer) {
                        ctx.observe(
                            "e2e.latency_us",
                            ctx.now().as_micros().saturating_sub(started_us),
                        );
                    }
                    self.responses.push(FrontResponse {
                        consumer: resp.consumer,
                        body: resp.body,
                    });
                }
            }
            other => {
                ctx.note(format!("httpa: unhandled kind {other}"));
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        // Deadline watchdog: the tag is the consumer id. A stale timer
        // (request already answered) is a no-op.
        let consumer = ConsumerId(tag);
        if self.settle(consumer).is_some() {
            ctx.note(format!(
                "httpa: request from consumer {tag} missed its deadline with no reply"
            ));
            self.responses.push(FrontResponse {
                consumer,
                body: ResponseBody::Error("request deadline exceeded".into()),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ConsumerId;

    #[test]
    fn httpa_state_round_trips() {
        let mut h = HttpAgent::new(AgentId(5));
        h.responses.push(FrontResponse {
            consumer: ConsumerId(1),
            body: ResponseBody::LoggedIn,
        });
        let back: HttpAgent = serde_json::from_value(h.snapshot()).unwrap();
        assert_eq!(back.responses().len(), 1);
        assert_eq!(back.bsma, AgentId(5));
    }
}
