//! The Buyer Server Management Agent (BSMA).
//!
//! §3.3: *"BSMA is the manager of Buyer Agent Server. BSMA has several
//! abilities: (1) the E-Commerce information providing. (2) user
//! registration and login. (3) the management of agent and mobile
//! agent."*
//!
//! Provisioned by the Coordinator Agent (Fig 4.1): the CA creates the
//! BSMA (step 2), the BSMA dispatches itself to the target host (step 3),
//! then creates the PA (step 4) and HttpA (step 5) and initializes the
//! databases (step 6). At runtime it opens/closes consumer sessions
//! (creating and disposing BRAs, §4.1 principle 1), routes tasks, records
//! dispatched MBAs in BSMDB, deactivates BRAs while their MBA roams and
//! reactivates them on the MBA's authenticated return (§4.1 principles
//! 2–3), and declares overdue MBAs lost.

use crate::admission::AdmissionConfig;
use crate::agents::bra::BuyerRecommendAgent;
use crate::agents::httpa::HttpAgent;
use crate::agents::msg::{
    kinds, ConsumerTask, EcInfo, MarketRef, MarketStatus, MbaLost, MbaRegister, MbaReturned,
    RoutedTask, SessionOpen, SessionRequest,
};
use crate::agents::pa::ProfileAgent;
use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::learning::LearnerConfig;
use crate::retry::BackoffPolicy;
use crate::similarity::SimilarityConfig;
use agentsim::agent::{Agent, Ctx};
use agentsim::clock::SimDuration;
use agentsim::ids::{AgentId, HostId};
use agentsim::message::Message;
use ecp::protocol::{kinds as ecpk, ListServers, RegisterServer, ServerList, ServerRole};
use serde::{Deserialize, Serialize};
use simdb::JsonStore;

/// Agent-type tag of [`Bsma`] (referenced by the CA's provisioning).
pub const BSMA_TYPE: &str = "bsma";

/// Static configuration handed to the BSMA at provisioning time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BsmaConfig {
    /// Host that becomes the Buyer Agent Server.
    pub target: HostId,
    /// The Coordinator Agent (0 = none; skip registration).
    pub coordinator: AgentId,
    /// Marketplaces known up front (more may arrive via the CA).
    pub markets: Vec<MarketRef>,
    /// Display name.
    pub name: String,
    /// Profile learner configuration for the PA.
    pub learner: LearnerConfig,
    /// Similarity configuration for the PA.
    pub similarity: SimilarityConfig,
    /// Microseconds before a roaming MBA is presumed lost.
    pub mba_timeout_us: u64,
    /// Hybrid collaborative weight for BRAs.
    pub collaborative_weight: f64,
    /// Extra grace periods the watchdog grants an overdue MBA (each
    /// doubles the wait, capped at 4x) before declaring it lost.
    #[serde(default = "default_watch_retries")]
    pub watch_retries: u32,
    /// Backoff schedule BRAs use to re-dispatch a lost MBA.
    #[serde(default)]
    pub bra_retry: BackoffPolicy,
    /// Ingress admission control for the HttpA; `None` admits everything.
    #[serde(default)]
    pub admission: Option<AdmissionConfig>,
    /// End-to-end deadline the HttpA mints per admitted task (µs);
    /// 0 disables deadline propagation.
    #[serde(default)]
    pub request_deadline_us: u64,
    /// Per-marketplace circuit-breaker tuning; `None` disables breakers.
    #[serde(default)]
    pub breaker: Option<BreakerConfig>,
    /// Journal state durably: BRAs run the intent/ledger purchase
    /// protocol and the PA journals profile deltas. Only meaningful on a
    /// world with durability enabled.
    #[serde(default)]
    pub durable: bool,
}

fn default_watch_retries() -> u32 {
    1
}

impl Default for BsmaConfig {
    fn default() -> Self {
        BsmaConfig {
            target: HostId(0),
            coordinator: AgentId(0),
            markets: Vec::new(),
            name: "buyer-agent-server".into(),
            learner: LearnerConfig::default(),
            similarity: SimilarityConfig::default(),
            mba_timeout_us: 600_000_000,
            collaborative_weight: 0.7,
            watch_retries: default_watch_retries(),
            bra_retry: BackoffPolicy::default(),
            admission: None,
            request_deadline_us: 0,
            breaker: None,
            durable: false,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct WatchEntry {
    register: MbaRegister,
    /// Watchdog firings survived so far (re-arm bookkeeping).
    #[serde(default)]
    checks: u32,
}

/// The Buyer Server Management Agent.
#[derive(Debug, Serialize, Deserialize)]
pub struct Bsma {
    /// Provisioning configuration.
    pub config: BsmaConfig,
    #[serde(default)]
    pa: Option<AgentId>,
    #[serde(default)]
    httpa: Option<AgentId>,
    #[serde(default)]
    sessions: Vec<(u64, AgentId)>,
    #[serde(default)]
    bsmdb: JsonStore,
    #[serde(default)]
    mba_watch: Vec<WatchEntry>,
    #[serde(default)]
    ready: bool,
    /// Per-marketplace circuit breakers (a `Vec` of pairs so snapshots
    /// serialize deterministically).
    #[serde(default)]
    breakers: Vec<(AgentId, CircuitBreaker)>,
}

impl Bsma {
    /// BSMA from configuration (used for direct creation; the CA path
    /// builds the same state from the request payload).
    pub fn new(config: BsmaConfig) -> Self {
        Bsma {
            config,
            pa: None,
            httpa: None,
            sessions: Vec::new(),
            bsmdb: JsonStore::default(),
            mba_watch: Vec::new(),
            ready: false,
            breakers: Vec::new(),
        }
    }

    /// The PA's id once the server is set up.
    pub fn pa(&self) -> Option<AgentId> {
        self.pa
    }

    /// The HttpA's id once the server is set up.
    pub fn httpa(&self) -> Option<AgentId> {
        self.httpa
    }

    /// Whether setup (Fig 4.1 steps 4–6) completed.
    pub fn is_ready(&self) -> bool {
        self.ready
    }

    /// Open sessions as `(consumer, bra)` pairs.
    pub fn sessions(&self) -> &[(u64, AgentId)] {
        &self.sessions
    }

    /// MBAs currently roaming.
    pub fn roaming_mbas(&self) -> usize {
        self.mba_watch.len()
    }

    fn session_of(&self, consumer: u64) -> Option<AgentId> {
        self.sessions
            .iter()
            .find(|(c, _)| *c == consumer)
            .map(|(_, b)| *b)
    }

    fn setup(&mut self, ctx: &mut Ctx<'_>) {
        ctx.note("fig4.1/step4 bsma creates profile agent");
        let mut profile_agent = ProfileAgent::new(self.config.learner, self.config.similarity);
        if self.config.durable {
            profile_agent = profile_agent.with_durability();
        }
        let pa = ctx.create_agent(Box::new(profile_agent));
        self.pa = Some(pa);
        ctx.note("fig4.1/step5 bsma creates http agent");
        let mut front = HttpAgent::new(ctx.self_id());
        if let Some(admission) = self.config.admission {
            front = front.with_admission(admission);
        }
        if self.config.request_deadline_us > 0 {
            front = front.with_deadline_us(self.config.request_deadline_us);
        }
        let httpa = ctx.create_agent(Box::new(front));
        self.httpa = Some(httpa);
        ctx.note("fig4.1/step6 bsma initializes bsmdb and userdb");
        self.bsmdb = JsonStore::new("bsmdb");
        self.bsmdb
            .create_table("marketplaces")
            .expect("create marketplaces table");
        self.bsmdb
            .create_table("sessions")
            .expect("create sessions table");
        self.bsmdb
            .create_table("mba-registry")
            .expect("create mba table");
        for i in 0..self.config.markets.len() {
            let market = self.config.markets[i];
            self.store_market(ctx, market);
        }
        // announce ourselves to the EC domain and discover marketplaces
        if self.config.coordinator != AgentId(0) {
            let register = Message::new(ecpk::REGISTER_SERVER)
                .with_payload(&RegisterServer {
                    role: ServerRole::BuyerServer,
                    host: ctx.host(),
                    agent: ctx.self_id(),
                    name: self.config.name.clone(),
                })
                .expect("register serializes");
            ctx.send(self.config.coordinator, register);
            let list = Message::new(ecpk::LIST_SERVERS)
                .with_payload(&ListServers {
                    role: ServerRole::Marketplace,
                })
                .expect("list serializes");
            ctx.send(self.config.coordinator, list);
        }
        self.ready = true;
    }

    fn store_market(&mut self, ctx: &mut Ctx<'_>, market: MarketRef) {
        if let Err(e) = self
            .bsmdb
            .put_typed("marketplaces", &market.agent.to_string(), &market)
        {
            ctx.note(format!("bsma: bsmdb marketplace write failed: {e}"));
        }
    }

    fn handle_login(&mut self, ctx: &mut Ctx<'_>, msg: &Message, req: SessionRequest) {
        let (pa, httpa) = match (self.pa, self.httpa) {
            (Some(pa), Some(httpa)) => (pa, httpa),
            _ => {
                ctx.note("bsma: login before setup completed");
                return;
            }
        };
        let bra = match self.session_of(req.consumer.0) {
            Some(existing) => existing,
            None => {
                let mut new_bra = BuyerRecommendAgent::new(
                    req.consumer,
                    ctx.self_id(),
                    pa,
                    httpa,
                    self.config.markets.clone(),
                )
                .with_collaborative_weight(self.config.collaborative_weight)
                .with_mba_timeout_us(self.config.mba_timeout_us)
                .with_retry_policy(self.config.bra_retry);
                if self.config.durable {
                    new_bra = new_bra.with_durability();
                }
                let bra = ctx.create_agent(Box::new(new_bra));
                ctx.note(format!("bsma: bra {bra} created for {}", req.consumer));
                self.sessions.push((req.consumer.0, bra));
                if let Err(e) =
                    self.bsmdb
                        .put_typed("sessions", &req.consumer.0.to_string(), &bra.0)
                {
                    ctx.note(format!("bsma: bsmdb session write failed: {e}"));
                }
                bra
            }
        };
        let reply = Message::new(kinds::SESSION_OPEN)
            .with_payload(&SessionOpen {
                consumer: req.consumer,
                bra,
            })
            .expect("session serializes");
        ctx.reply(msg, reply);
    }

    fn handle_logout(&mut self, ctx: &mut Ctx<'_>, msg: &Message, req: SessionRequest) {
        if let Some(bra) = self.session_of(req.consumer.0) {
            ctx.dispose(bra);
            self.sessions.retain(|(c, _)| *c != req.consumer.0);
            if let Err(e) = self.bsmdb.delete("sessions", &req.consumer.0.to_string()) {
                ctx.note(format!("bsma: bsmdb session delete failed: {e}"));
            }
        }
        let reply = Message::new(kinds::SESSION_CLOSED)
            .with_payload(&SessionRequest {
                consumer: req.consumer,
            })
            .expect("session serializes");
        ctx.reply(msg, reply);
    }

    /// The breaker guarding `market`, lazily created on first use.
    /// `None` when breakers are not configured.
    fn breaker_mut(&mut self, market: AgentId) -> Option<&mut CircuitBreaker> {
        let config = self.config.breaker?;
        let pos = match self.breakers.iter().position(|(a, _)| *a == market) {
            Some(pos) => pos,
            None => {
                self.breakers.push((market, CircuitBreaker::new(config)));
                self.breakers.len() - 1
            }
        };
        Some(&mut self.breakers[pos].1)
    }

    /// Marketplaces the task would touch whose breaker refuses dispatch
    /// right now. Empty when breakers are off or all circuits closed.
    fn blocked_markets(&mut self, now_us: u64, task: &ConsumerTask) -> Vec<MarketRef> {
        if self.config.breaker.is_none() {
            return Vec::new();
        }
        let candidates: Vec<MarketRef> = match task {
            ConsumerTask::Query { .. } => self.config.markets.clone(),
            ConsumerTask::Buy { market, .. } | ConsumerTask::Auction { market, .. } => {
                vec![*market]
            }
        };
        candidates
            .into_iter()
            .filter(|m| self.breaker_mut(m.agent).is_some_and(|b| !b.allow(now_us)))
            .collect()
    }

    fn handle_route(&mut self, ctx: &mut Ctx<'_>, msg: &Message, routed: RoutedTask) {
        match self.session_of(routed.consumer.0) {
            Some(bra) => {
                let fig = routed.task.figure();
                ctx.note(format!("{fig}/step03 bsma forwards task to bra"));
                let blocked = self.blocked_markets(ctx.now().as_micros(), &routed.task);
                if !blocked.is_empty() {
                    for market in &blocked {
                        ctx.count_breaker_rejection();
                        ctx.note(format!(
                            "bsma: circuit open for marketplace {}; dispatch suppressed",
                            market.agent
                        ));
                    }
                    let annotated = RoutedTask {
                        blocked_markets: blocked,
                        ..routed
                    };
                    let task = Message::new(kinds::BRA_TASK)
                        .with_payload(&annotated)
                        .expect("route serializes");
                    ctx.send(bra, task);
                    return;
                }
                // forward the already-encoded payload: no re-serialization,
                // the BRA reads the same RoutedTask bytes we received
                let task = Message::new(kinds::BRA_TASK).carrying(msg.payload.clone());
                ctx.send(bra, task);
            }
            None => {
                let reply = Message::new(kinds::NO_SESSION)
                    .with_payload(&SessionRequest {
                        consumer: routed.consumer,
                    })
                    .expect("session serializes");
                ctx.reply(msg, reply);
            }
        }
    }

    fn handle_mba_register(&mut self, ctx: &mut Ctx<'_>, register: MbaRegister) {
        if self
            .mba_watch
            .iter()
            .any(|w| w.register.mba == register.mba)
        {
            // duplicated registration (chaos can replay messages): the
            // watchdog is already armed, a second deactivate/timer would
            // double-count
            ctx.note(format!("bsma: mba {} already registered", register.mba));
            return;
        }
        let fig = &register.figure;
        let step = if fig == "fig4.2" { "step09" } else { "step08" };
        ctx.note(format!(
            "{fig}/{step} bsma records mba in bsmdb and deactivates bra"
        ));
        if let Err(e) = self
            .bsmdb
            .put_typed("mba-registry", &register.mba.to_string(), &register)
        {
            ctx.note(format!("bsma: bsmdb mba write failed: {e}"));
        }
        // §4.1 principle 3: Aglet.deactivate() on the BRA while the MBA
        // roams
        ctx.deactivate(register.bra);
        // Under a request deadline the watchdog must not outlive the
        // reply budget: clamp the wait so loss is declared in time for
        // the BRA to still degrade before the HttpA gives up.
        let mut timeout_us = register.timeout_us;
        if let Some(rem) = ctx.remaining_us() {
            timeout_us = timeout_us.min(rem.max(1));
        }
        ctx.set_timer(SimDuration::from_micros(timeout_us), register.mba.0);
        self.mba_watch.push(WatchEntry {
            register,
            checks: 0,
        });
    }

    fn handle_mba_returned(&mut self, ctx: &mut Ctx<'_>, returned: MbaReturned) {
        // Feed the per-marketplace breakers with the trip's outcomes
        // before the registry lookup: a trip that failed so fast its
        // return notice beat the BRA's register message is still valid
        // health signal.
        let now_us = ctx.now().as_micros();
        for report in &returned.reports {
            if let Some(breaker) = self.breaker_mut(report.market.agent) {
                match report.status {
                    MarketStatus::Visited => breaker.record_success(now_us),
                    MarketStatus::Unreachable | MarketStatus::NoReply => {
                        breaker.record_failure(now_us);
                    }
                }
            }
        }
        let Some(pos) = self
            .mba_watch
            .iter()
            .position(|w| w.register.mba == returned.mba)
        else {
            ctx.note(format!(
                "bsma: unknown mba {} reported return",
                returned.mba
            ));
            return;
        };
        let entry = self.mba_watch.remove(pos);
        let fig = &entry.register.figure;
        let step = if fig == "fig4.2" { "step13" } else { "step12" };
        ctx.note(format!(
            "{fig}/{step} bsma activates bra after mba authentication"
        ));
        if let Err(e) = self.bsmdb.delete("mba-registry", &returned.mba.to_string()) {
            ctx.note(format!("bsma: bsmdb mba delete failed: {e}"));
        }
        // §4.1 principle 3: Aglet.activate() loads the BRA back to memory;
        // the held MBA_RESULT is replayed to it by the platform.
        ctx.activate(entry.register.bra);
    }
}

impl Agent for Bsma {
    fn agent_type(&self) -> &'static str {
        BSMA_TYPE
    }

    fn snapshot(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("bsma state serializes")
    }

    fn on_creation(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.host() == self.config.target || self.config.target == HostId(0) {
            // created in place (no dispatch hop needed)
            self.config.target = ctx.host();
            self.setup(ctx);
        } else {
            ctx.note("fig4.1/step3 bsma dispatched to buyer agent server host");
            ctx.dispatch_self(self.config.target);
        }
    }

    fn on_arrival(&mut self, ctx: &mut Ctx<'_>) {
        if ctx.host() == self.config.target && !self.ready {
            self.setup(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
        match msg.kind.as_str() {
            kinds::LOGIN => {
                if let Ok(req) = msg.payload_as::<SessionRequest>() {
                    self.handle_login(ctx, &msg, req);
                }
            }
            kinds::LOGOUT => {
                if let Ok(req) = msg.payload_as::<SessionRequest>() {
                    self.handle_logout(ctx, &msg, req);
                }
            }
            kinds::ROUTE_TASK => {
                if let Ok(routed) = msg.payload_as::<RoutedTask>() {
                    self.handle_route(ctx, &msg, routed);
                }
            }
            kinds::MBA_REGISTER => {
                if let Ok(register) = msg.payload_as::<MbaRegister>() {
                    self.handle_mba_register(ctx, register);
                }
            }
            kinds::MBA_RETURNED => {
                if let Ok(returned) = msg.payload_as::<MbaReturned>() {
                    self.handle_mba_returned(ctx, returned);
                }
            }
            kinds::EC_INFO => {
                // §3.3 BSMA ability 1: provide the EC information the
                // mechanism holds
                let info = EcInfo {
                    marketplaces: self.config.markets.clone(),
                    online_consumers: self.sessions.len() as u32,
                    roaming_mbas: self.mba_watch.len() as u32,
                };
                let reply = Message::new(kinds::EC_INFO_REPLY)
                    .with_payload(&info)
                    .expect("ec info serializes");
                ctx.reply(&msg, reply);
            }
            ecpk::SERVER_LIST => {
                if let Ok(list) = msg.payload_as::<ServerList>() {
                    for server in list.servers {
                        if server.role == ServerRole::Marketplace {
                            let market = MarketRef {
                                host: server.host,
                                agent: server.agent,
                            };
                            if !self.config.markets.contains(&market) {
                                self.config.markets.push(market);
                                self.store_market(ctx, market);
                            }
                        }
                    }
                }
            }
            ecpk::REGISTER_ACK => {}
            other => {
                ctx.note(format!("bsma: unhandled kind {other}"));
            }
        }
    }

    fn on_recovered(&mut self, ctx: &mut Ctx<'_>, _deltas: &[serde_json::Value]) {
        // The host crashed and came back: every armed watchdog timer died
        // with it. Without a re-arm a roaming MBA that never returns would
        // leave its BRA deactivated forever. Grant each watched MBA a
        // fresh full timeout from now.
        for entry in &self.mba_watch {
            ctx.note(format!(
                "bsma: recovered, re-arming watchdog for roaming mba {}",
                entry.register.mba
            ));
            ctx.set_timer(
                SimDuration::from_micros(entry.register.timeout_us),
                entry.register.mba.0,
            );
        }
    }

    fn on_rehomed(&mut self, ctx: &mut Ctx<'_>, new_home: HostId) {
        // The buyer server host is gone; the supervisor restored us on a
        // standby. Future child placements and MBA returns target it.
        self.config.target = new_home;
        ctx.note(format!("bsma: rehomed to failover host {new_home}"));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, tag: u64) {
        // MBA loss watchdog: if the MBA is still registered when its
        // timer fires, it is presumed lost.
        let Some(pos) = self.mba_watch.iter().position(|w| w.register.mba.0 == tag) else {
            return; // returned in time
        };
        // With the request deadline already spent there is no point in
        // another grace period: declare the loss now so the BRA can still
        // answer (degraded) before the front watchdog gives up.
        let deadline_spent = ctx.remaining_us() == Some(0);
        if self.mba_watch[pos].checks < self.config.watch_retries && !deadline_spent {
            // grant a grace period: re-arm with a doubled (capped) wait
            // instead of writing the MBA off at the first deadline
            let entry = &mut self.mba_watch[pos];
            entry.checks += 1;
            let factor = 1u64 << entry.checks.min(2);
            let delay = entry.register.timeout_us.saturating_mul(factor);
            ctx.note(format!(
                "bsma: mba {} overdue, granting {delay}us grace (check {})",
                entry.register.mba, entry.checks
            ));
            ctx.count_retry();
            ctx.set_timer(SimDuration::from_micros(delay), tag);
            return;
        }
        let entry = self.mba_watch.remove(pos);
        // The loss notice IS the recovery path: it must reach the BRA
        // even though the request deadline may already be spent, so send
        // it deadline-free and hand the budget over inside the payload.
        let deadline_us = ctx.deadline().map(|d| d.as_micros());
        if ctx.deadline().is_some() {
            ctx.clear_deadline();
        }
        ctx.note(format!(
            "bsma: mba {} overdue; reactivating bra and reporting loss",
            entry.register.mba
        ));
        if let Err(e) = self
            .bsmdb
            .delete("mba-registry", &entry.register.mba.to_string())
        {
            ctx.note(format!("bsma: bsmdb mba delete failed: {e}"));
        }
        ctx.activate(entry.register.bra);
        let lost = Message::new(kinds::MBA_LOST)
            .with_payload(&MbaLost {
                mba: entry.register.mba,
                deadline_us,
            })
            .expect("lost serializes");
        ctx.send(entry.register.bra, lost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsma_config_defaults_are_sane() {
        let c = BsmaConfig::default();
        assert_eq!(c.coordinator, AgentId(0));
        assert!(c.markets.is_empty());
        assert!(c.mba_timeout_us > 0);
    }

    #[test]
    fn bsma_state_deserializes_from_bare_config() {
        // the Coordinator provisions a BSMA from just {"config": ...};
        // runtime fields default
        let config = BsmaConfig {
            name: "b1".into(),
            ..BsmaConfig::default()
        };
        let state = serde_json::json!({ "config": config });
        let bsma: Bsma = serde_json::from_value(state).unwrap();
        assert_eq!(bsma.config.name, "b1");
        assert!(!bsma.is_ready());
        assert_eq!(bsma.sessions().len(), 0);
    }

    #[test]
    fn bsma_snapshot_round_trips() {
        let bsma = Bsma::new(BsmaConfig::default());
        let back: Bsma = serde_json::from_value(bsma.snapshot()).unwrap();
        assert_eq!(back.config.name, bsma.config.name);
    }

    /// Forwards an instruction and records the reply.
    #[derive(Debug, Default, serde::Serialize, serde::Deserialize)]
    struct Sink {
        replies: Vec<(String, serde_json::Value)>,
    }

    impl Agent for Sink {
        fn agent_type(&self) -> &'static str {
            "sink"
        }
        fn snapshot(&self) -> serde_json::Value {
            serde_json::to_value(self).unwrap()
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            if let Some(target) = msg.payload.get("__send_to") {
                let to = AgentId(target.as_u64().unwrap());
                let inner = Message::new(msg.payload["kind"].as_str().unwrap())
                    .carrying(msg.payload.project("payload"));
                ctx.send(to, inner);
                return;
            }
            self.replies
                .push((msg.kind.to_string(), msg.payload.to_value()));
        }
    }

    #[test]
    fn ec_info_reports_domain_knowledge() {
        use agentsim::sim::SimWorld;
        let mut world = SimWorld::new(3);
        crate::agents::register_all(world.registry_mut());
        world.registry_mut().register_serde::<Sink>("sink");
        let host = world.add_host("buyer-server");
        let bsma = world
            .create_agent(
                host,
                Box::new(Bsma::new(BsmaConfig {
                    target: host,
                    markets: vec![MarketRef {
                        host: HostId(9),
                        agent: AgentId(100),
                    }],
                    ..BsmaConfig::default()
                })),
            )
            .unwrap();
        let sink = world.create_agent(host, Box::new(Sink::default())).unwrap();
        let mut msg = Message::new("instr");
        msg.payload = serde_json::json!({
            "__send_to": bsma.0,
            "kind": kinds::EC_INFO,
            "payload": null,
        })
        .into();
        world.send_external(sink, msg).unwrap();
        world.run_until_idle();
        let state: Sink = serde_json::from_value(world.snapshot_of(sink).unwrap()).unwrap();
        assert_eq!(state.replies.len(), 1);
        assert_eq!(state.replies[0].0, kinds::EC_INFO_REPLY);
        let info: EcInfo = serde_json::from_value(state.replies[0].1.clone()).unwrap();
        assert_eq!(info.marketplaces.len(), 1);
        assert_eq!(info.online_consumers, 0);
        assert_eq!(info.roaming_mbas, 0);
    }
}
