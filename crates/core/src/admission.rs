//! Token-bucket admission control with priority shedding at the ingress.
//!
//! Under overload the platform must shed the cheapest work first (§3.3:
//! the Buyer Agent Server multiplexes every consumer through one BSMA, so
//! unbounded ingress starves the transactions that matter). Requests are
//! classed by [`Priority`]; the bucket reserves a fraction of its capacity
//! for each higher class, so background refreshes drain first, then
//! queries, and buy/auction tasks are shed only when the bucket is truly
//! empty. A shed request gets an explicit `Overloaded` reply rather than
//! silently queueing.

use serde::{Deserialize, Serialize};

/// Priority class of an ingress request, highest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Priority {
    /// Buy / auction tasks: real transactions, shed last.
    Transaction,
    /// Query tasks: interactive but re-issuable.
    Query,
    /// Recommendation refreshes, login/logout: cheapest to shed.
    Background,
}

/// Tuning knobs for an [`AdmissionGate`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Sustained admission rate, requests per second.
    pub rate_per_sec: f64,
    /// Bucket capacity: the largest tolerated burst.
    pub burst: f64,
    /// Fraction of the bucket only [`Priority::Transaction`] may dip into.
    pub transaction_reserve: f64,
    /// Additional fraction reserved from [`Priority::Background`] (so
    /// queries keep working after background traffic is shed).
    pub query_reserve: f64,
}

impl Default for AdmissionConfig {
    /// 100 req/s sustained, bursts of 20, a quarter of the bucket
    /// reserved for transactions and another quarter from background.
    fn default() -> Self {
        AdmissionConfig {
            rate_per_sec: 100.0,
            burst: 20.0,
            transaction_reserve: 0.25,
            query_reserve: 0.25,
        }
    }
}

/// Verdict of one admission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// Proceed.
    Admitted,
    /// Shed: reply `Overloaded` and suggest retrying after this long.
    Shed {
        /// Microseconds until the bucket is expected to hold enough
        /// tokens for this class again.
        retry_after_us: u64,
    },
}

/// A token-bucket admission gate with per-class floors.
///
/// Serializable so it can live inside the HttpA's migratable state; time
/// is passed in (µs on the world clock), never read from a wall clock, so
/// the gate is deterministic under the DES runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionGate {
    config: AdmissionConfig,
    tokens: f64,
    last_refill_us: u64,
}

impl AdmissionGate {
    /// A full bucket with the given tuning.
    pub fn new(config: AdmissionConfig) -> Self {
        AdmissionGate {
            tokens: config.burst,
            config,
            last_refill_us: 0,
        }
    }

    /// Tokens a request of `class` must leave behind: 0 for transactions,
    /// the transaction reserve for queries, both reserves for background.
    fn floor(&self, class: Priority) -> f64 {
        let b = self.config.burst;
        match class {
            Priority::Transaction => 0.0,
            Priority::Query => b * self.config.transaction_reserve,
            Priority::Background => {
                b * (self.config.transaction_reserve + self.config.query_reserve)
            }
        }
    }

    /// Try to admit one request of `class` at `now_us`.
    pub fn try_admit(&mut self, now_us: u64, class: Priority) -> AdmissionVerdict {
        self.refill(now_us);
        let needed = 1.0 + self.floor(class);
        if self.tokens >= needed {
            self.tokens -= 1.0;
            AdmissionVerdict::Admitted
        } else {
            let deficit = needed - self.tokens;
            let retry_after_us = if self.config.rate_per_sec > 0.0 {
                (deficit / self.config.rate_per_sec * 1e6).ceil() as u64
            } else {
                u64::MAX
            };
            AdmissionVerdict::Shed { retry_after_us }
        }
    }

    fn refill(&mut self, now_us: u64) {
        let elapsed = now_us.saturating_sub(self.last_refill_us);
        self.last_refill_us = now_us;
        let refill = elapsed as f64 / 1e6 * self.config.rate_per_sec;
        self.tokens = (self.tokens + refill).min(self.config.burst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate() -> AdmissionGate {
        AdmissionGate::new(AdmissionConfig {
            rate_per_sec: 10.0,
            burst: 4.0,
            transaction_reserve: 0.25,
            query_reserve: 0.25,
        })
    }

    #[test]
    fn admits_within_burst_then_sheds() {
        let mut g = gate();
        // burst 4, background floor 2: two background requests pass
        assert_eq!(
            g.try_admit(0, Priority::Background),
            AdmissionVerdict::Admitted
        );
        assert_eq!(
            g.try_admit(0, Priority::Background),
            AdmissionVerdict::Admitted
        );
        assert!(matches!(
            g.try_admit(0, Priority::Background),
            AdmissionVerdict::Shed { .. }
        ));
    }

    #[test]
    fn transactions_outlive_queries_outlive_background() {
        let mut g = gate();
        // drain to below the background floor
        g.try_admit(0, Priority::Background);
        g.try_admit(0, Priority::Background);
        assert!(matches!(
            g.try_admit(0, Priority::Background),
            AdmissionVerdict::Shed { .. }
        ));
        // queries still pass (floor 1), down to one token
        assert_eq!(g.try_admit(0, Priority::Query), AdmissionVerdict::Admitted);
        assert!(matches!(
            g.try_admit(0, Priority::Query),
            AdmissionVerdict::Shed { .. }
        ));
        // the last token belongs to transactions alone
        assert_eq!(
            g.try_admit(0, Priority::Transaction),
            AdmissionVerdict::Admitted
        );
        assert!(matches!(
            g.try_admit(0, Priority::Transaction),
            AdmissionVerdict::Shed { .. }
        ));
    }

    #[test]
    fn bucket_refills_over_time() {
        let mut g = gate();
        for _ in 0..4 {
            g.try_admit(0, Priority::Transaction);
        }
        assert!(matches!(
            g.try_admit(0, Priority::Transaction),
            AdmissionVerdict::Shed { .. }
        ));
        // 10 tokens/s: 100 ms buys one token
        assert_eq!(
            g.try_admit(100_000, Priority::Transaction),
            AdmissionVerdict::Admitted
        );
    }

    #[test]
    fn retry_hint_scales_with_the_deficit() {
        let mut g = gate();
        for _ in 0..4 {
            g.try_admit(0, Priority::Transaction);
        }
        let AdmissionVerdict::Shed { retry_after_us } = g.try_admit(0, Priority::Transaction)
        else {
            panic!("must shed on an empty bucket");
        };
        // one whole token at 10/s is 100 ms
        assert_eq!(retry_after_us, 100_000);
    }

    #[test]
    fn gate_round_trips_serde() {
        let mut g = gate();
        g.try_admit(0, Priority::Query);
        let back: AdmissionGate =
            serde_json::from_str(&serde_json::to_string(&g).unwrap()).unwrap();
        assert_eq!(g, back);
    }
}
