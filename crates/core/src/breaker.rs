//! Per-marketplace circuit breaker: Closed → Open → HalfOpen.
//!
//! Fed by the [`MarketReport`]s an MBA brings home (PR 3's chaos probes
//! turned into a health signal): each `Visited` report is a success, each
//! `Unreachable`/`NoReply` a failure, over a sliding window. When the
//! failure rate crosses the threshold the breaker opens and the BSMA stops
//! routing work at that marketplace — requests degrade to CF-only
//! immediately instead of burning the retry budget on a dead host. After a
//! cooldown the breaker admits exactly one probe (HalfOpen); its outcome
//! closes or re-opens the circuit.
//!
//! [`MarketReport`]: crate::agents::msg::MarketReport

use serde::{Deserialize, Serialize};

/// Tuning knobs for a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Sliding window of most-recent outcomes considered.
    pub window: usize,
    /// Failure fraction within the window that opens the breaker.
    pub failure_threshold: f64,
    /// Minimum outcomes in the window before the threshold applies
    /// (a single early failure must not open the circuit).
    pub min_samples: usize,
    /// How long an open breaker waits before admitting a probe (µs).
    pub cooldown_us: u64,
}

impl Default for BreakerConfig {
    /// Window of 8, open at ≥50% failures once 4 outcomes are in, 5 s
    /// cooldown.
    fn default() -> Self {
        BreakerConfig {
            window: 8,
            failure_threshold: 0.5,
            min_samples: 4,
            cooldown_us: 5_000_000,
        }
    }
}

/// The breaker's position in its state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: all dispatches pass.
    Closed,
    /// Tripped: dispatches are refused until the cooldown elapses.
    Open,
    /// Probing: exactly one dispatch is allowed through; its outcome
    /// decides between Closed and Open.
    HalfOpen,
}

/// A sliding-window failure-rate circuit breaker.
///
/// Drive it with [`CircuitBreaker::allow`] before each dispatch and
/// [`CircuitBreaker::record_success`] / [`CircuitBreaker::record_failure`]
/// when the outcome is known. Serializable so it can live inside an
/// agent's migratable state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Most-recent outcomes, `true` = failure, newest at the back.
    window: Vec<bool>,
    /// When the current state was entered (µs on the world clock).
    entered_at_us: u64,
    /// Whether the HalfOpen probe slot is taken.
    probe_inflight: bool,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            window: Vec::new(),
            entered_at_us: 0,
            probe_inflight: false,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether a dispatch may proceed at `now_us`. May transition
    /// Open → HalfOpen (cooldown elapsed) and claims the probe slot when
    /// it does, so at most one dispatch passes per cooldown while
    /// half-open.
    pub fn allow(&mut self, now_us: u64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now_us.saturating_sub(self.entered_at_us) >= self.config.cooldown_us {
                    self.state = BreakerState::HalfOpen;
                    self.entered_at_us = now_us;
                    self.probe_inflight = true;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if !self.probe_inflight {
                    self.probe_inflight = true;
                    return true;
                }
                // Stuck-probe escape: if the probe never reported back
                // (lost MBA), allow another after a full cooldown.
                if now_us.saturating_sub(self.entered_at_us) >= self.config.cooldown_us {
                    self.entered_at_us = now_us;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Record a successful interaction with the marketplace.
    pub fn record_success(&mut self, now_us: u64) {
        self.push(false);
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            self.entered_at_us = now_us;
            self.probe_inflight = false;
            self.window.clear();
        }
    }

    /// Record a failed interaction with the marketplace.
    pub fn record_failure(&mut self, now_us: u64) {
        self.push(true);
        match self.state {
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.entered_at_us = now_us;
                self.probe_inflight = false;
            }
            BreakerState::Closed => {
                let samples = self.window.len();
                if samples >= self.config.min_samples {
                    let failures = self.window.iter().filter(|f| **f).count();
                    if failures as f64 / samples as f64 >= self.config.failure_threshold {
                        self.state = BreakerState::Open;
                        self.entered_at_us = now_us;
                    }
                }
            }
            BreakerState::Open => {}
        }
    }

    fn push(&mut self, failure: bool) {
        if self.window.len() >= self.config.window.max(1) {
            self.window.remove(0);
        }
        self.window.push(failure);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            window: 4,
            failure_threshold: 0.5,
            min_samples: 2,
            cooldown_us: 1_000,
        })
    }

    #[test]
    fn opens_once_the_failure_rate_crosses_the_threshold() {
        let mut b = breaker();
        assert!(b.allow(0));
        b.record_failure(10);
        assert_eq!(b.state(), BreakerState::Closed, "below min_samples");
        b.record_failure(20);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(30), "open refuses dispatches");
    }

    #[test]
    fn half_open_admits_one_probe_then_closes_on_success() {
        let mut b = breaker();
        b.record_failure(0);
        b.record_failure(1);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(500), "cooldown not elapsed");
        assert!(b.allow(1_001), "cooldown elapsed: one probe passes");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(1_002), "probe slot taken");
        b.record_success(1_500);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(1_501));
    }

    #[test]
    fn half_open_reopens_on_probe_failure() {
        let mut b = breaker();
        b.record_failure(0);
        b.record_failure(1);
        assert!(b.allow(1_001));
        b.record_failure(1_100);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(1_200));
        assert!(b.allow(2_200), "second cooldown admits another probe");
    }

    #[test]
    fn lost_probe_does_not_wedge_the_breaker() {
        let mut b = breaker();
        b.record_failure(0);
        b.record_failure(1);
        assert!(b.allow(1_001));
        // the probe never reports back; a full cooldown later another is
        // allowed
        assert!(!b.allow(1_500));
        assert!(b.allow(2_100));
    }

    #[test]
    fn success_resets_the_window() {
        let mut b = breaker();
        b.record_failure(0);
        b.record_failure(1);
        assert!(b.allow(1_001));
        b.record_success(1_100);
        // the old failures are forgotten: one new failure stays below
        // min_samples
        b.record_failure(1_200);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn breaker_round_trips_serde() {
        let mut b = breaker();
        b.record_failure(0);
        b.record_failure(1);
        let back: CircuitBreaker =
            serde_json::from_str(&serde_json::to_string(&b).unwrap()).unwrap();
        assert_eq!(b, back);
    }
}
