//! The profile update rule — the paper's Fig 4.5.
//!
//! ```text
//! New_profile_of_Category_c = W_ci + α · Σ_j (w_ji · quality_of_feedback)
//!
//!   W_ci  the weight of term i in category c
//!   w_ji  the weight of term i from document j
//!   α     the learning rate
//! ```
//!
//! "Documents" here are merchandise the consumer interacted with; the
//! *quality of feedback* depends on how strong the behaviour was (a
//! purchase says more than a query — §3.3: the mechanism records
//! "merchandise query, buy, negotiation, and auction"). The paper quotes
//! the rule from Middleton's mini-thesis \[10\] without fixing the
//! constants, so the qualities and α are configuration, swept in
//! experiment E10.

use crate::profile::Profile;
use ecp::merchandise::{CategoryPath, Money};
use ecp::terms::TermVector;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The kinds of consumer behaviour the mechanism observes (§3.3 item 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BehaviorKind {
    /// Queried for merchandise like this.
    Query,
    /// Viewed a recommendation / offer.
    Browse,
    /// Entered price negotiation.
    Negotiate,
    /// Placed an auction bid.
    Bid,
    /// Won an auction.
    AuctionWin,
    /// Bought the item.
    Purchase,
}

/// Feedback-quality mapping: how much each behaviour kind reinforces the
/// profile (the `quality_of_feedback` factor of Fig 4.5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeedbackQuality {
    /// Quality of a query.
    pub query: f64,
    /// Quality of a browse/click.
    pub browse: f64,
    /// Quality of entering a negotiation.
    pub negotiate: f64,
    /// Quality of placing a bid.
    pub bid: f64,
    /// Quality of winning an auction.
    pub auction_win: f64,
    /// Quality of a purchase.
    pub purchase: f64,
}

impl FeedbackQuality {
    /// Quality for a behaviour kind.
    pub fn of(&self, kind: BehaviorKind) -> f64 {
        match kind {
            BehaviorKind::Query => self.query,
            BehaviorKind::Browse => self.browse,
            BehaviorKind::Negotiate => self.negotiate,
            BehaviorKind::Bid => self.bid,
            BehaviorKind::AuctionWin => self.auction_win,
            BehaviorKind::Purchase => self.purchase,
        }
    }
}

impl Default for FeedbackQuality {
    fn default() -> Self {
        FeedbackQuality {
            query: 0.1,
            browse: 0.2,
            negotiate: 0.5,
            bid: 0.6,
            auction_win: 0.9,
            purchase: 1.0,
        }
    }
}

/// One observed behaviour event: a consumer interacted with merchandise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorEvent {
    /// What the consumer did.
    pub kind: BehaviorKind,
    /// Category of the merchandise involved.
    pub category: CategoryPath,
    /// Description terms of the merchandise ("document j" of Fig 4.5).
    pub terms: TermVector,
    /// Price involved, if any (purchases, bids).
    pub price: Option<Money>,
}

impl BehaviorEvent {
    /// Convenience constructor without a price.
    pub fn new(kind: BehaviorKind, category: CategoryPath, terms: TermVector) -> Self {
        BehaviorEvent {
            kind,
            category,
            terms,
            price: None,
        }
    }
}

/// Configuration of the learner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LearnerConfig {
    /// Learning rate α of Fig 4.5.
    pub alpha: f64,
    /// Feedback-quality mapping.
    pub quality: FeedbackQuality,
    /// Multiplicative decay applied to the touched category before the
    /// update (1.0 = no decay). Models drifting interest.
    pub decay: f64,
    /// Per-vector term cap enforced after updates.
    pub max_terms: usize,
}

impl Default for LearnerConfig {
    fn default() -> Self {
        LearnerConfig {
            alpha: 0.3,
            quality: FeedbackQuality::default(),
            decay: 1.0,
            max_terms: 64,
        }
    }
}

/// The flat-index footprint of one Fig 4.5 update: every flattened key
/// (namespaced as in [`Profile::flatten`]) whose weight changed, with
/// its new value (`0.0` = removed). Produced by
/// [`ProfileLearner::apply_indexed`] and consumed by
/// [`crate::index::ProfileIndex::apply_delta`], so a feedback event
/// costs O(changed terms) instead of a full profile re-flatten.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileDelta {
    changes: BTreeMap<String, f64>,
}

impl ProfileDelta {
    /// Build a delta from explicit `(flat key, new weight)` pairs.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (String, f64)>,
    {
        ProfileDelta {
            changes: pairs.into_iter().collect(),
        }
    }

    /// Iterate `(flat key, new weight)` in key order.
    pub fn changes(&self) -> impl Iterator<Item = (&String, f64)> {
        self.changes.iter().map(|(k, w)| (k, *w))
    }

    /// Number of changed keys.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// Whether the update touched no flat key.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }
}

/// Applies Fig 4.5 updates to profiles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfileLearner {
    /// Learner parameters.
    pub config: LearnerConfig,
}

impl ProfileLearner {
    /// Learner with the given config.
    pub fn new(config: LearnerConfig) -> Self {
        ProfileLearner { config }
    }

    /// Apply one behaviour event to `profile`:
    /// `W_ci += α · w_ji · quality(kind)` for every term `i` of the
    /// merchandise, at both the category and the sub-category level.
    pub fn apply(&self, profile: &mut Profile, event: &BehaviorEvent) {
        let factor = self.config.alpha * self.config.quality.of(event.kind);
        if factor <= 0.0 {
            return;
        }
        let cp = profile.category_mut(&event.category.category);
        if self.config.decay < 1.0 {
            cp.terms.scale(self.config.decay);
        }
        cp.terms.add_scaled(&event.terms, factor);
        let sub = cp.sub_mut(&event.category.sub_category);
        if self.config.decay < 1.0 {
            sub.scale(self.config.decay);
        }
        sub.add_scaled(&event.terms, factor);
        profile.compact(self.config.max_terms);
    }

    /// [`ProfileLearner::apply`] that additionally reports the update's
    /// flat-index footprint as a [`ProfileDelta`].
    ///
    /// The arithmetic is identical to `apply` — same decay, same
    /// `add_scaled` order — but compaction is confined to the touched
    /// category via [`Profile::compact_category_reporting`]. That is
    /// equivalent to the full [`Profile::compact`] whenever the profile
    /// already satisfies the compacted invariant (every vector within
    /// `max_terms`, no empty subs, no dead categories), which holds for
    /// all store-resident profiles: every write path compacts. A Fig 4.5
    /// event touches exactly one category, so the delta — and the cost —
    /// is O(terms of that category ∩ changed), independent of how many
    /// categories the consumer has accumulated.
    pub fn apply_indexed(&self, profile: &mut Profile, event: &BehaviorEvent) -> ProfileDelta {
        let factor = self.config.alpha * self.config.quality.of(event.kind);
        if factor <= 0.0 {
            return ProfileDelta::default();
        }
        let cat = event.category.category.as_str();
        let sub_name = event.category.sub_category.as_str();
        let cp = profile.category_mut(cat);
        // keys whose weight this update can change: every event term at
        // both levels, plus — under decay — every pre-existing term of
        // the touched vectors
        let mut cat_terms: Vec<String> = event.terms.iter().map(|(t, _)| t.to_string()).collect();
        let mut sub_terms: Vec<String> = cat_terms.clone();
        if self.config.decay < 1.0 {
            cat_terms.extend(cp.terms.iter().map(|(t, _)| t.to_string()));
            if let Some(sub) = cp.sub(sub_name) {
                sub_terms.extend(sub.iter().map(|(t, _)| t.to_string()));
            }
        }
        if self.config.decay < 1.0 {
            cp.terms.scale(self.config.decay);
        }
        cp.terms.add_scaled(&event.terms, factor);
        let sub = cp.sub_mut(sub_name);
        if self.config.decay < 1.0 {
            sub.scale(self.config.decay);
        }
        sub.add_scaled(&event.terms, factor);
        let mut dropped = Vec::new();
        profile.compact_category_reporting(cat, self.config.max_terms, &mut dropped);
        // read the surviving weights back post-compaction
        let mut changes: BTreeMap<String, f64> = BTreeMap::new();
        let cp = profile.category(cat);
        for t in cat_terms {
            let w = cp.map_or(0.0, |c| c.terms.weight(&t));
            changes.insert(format!("{cat}//{t}"), w);
        }
        for t in sub_terms {
            let w = cp
                .and_then(|c| c.sub(sub_name))
                .map_or(0.0, |s| s.weight(&t));
            changes.insert(format!("{cat}/{sub_name}/{t}"), w);
        }
        for key in dropped {
            changes.insert(key, 0.0);
        }
        ProfileDelta { changes }
    }

    /// Apply a batch of events in order.
    pub fn apply_all<'a, I>(&self, profile: &mut Profile, events: I)
    where
        I: IntoIterator<Item = &'a BehaviorEvent>,
    {
        for e in events {
            self.apply(profile, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: BehaviorKind) -> BehaviorEvent {
        BehaviorEvent::new(
            kind,
            CategoryPath::new("books", "programming"),
            TermVector::from_pairs([("rust", 1.0), ("systems", 0.5)]),
        )
    }

    #[test]
    fn update_follows_fig_4_5_arithmetic() {
        let learner = ProfileLearner::new(LearnerConfig {
            alpha: 0.3,
            quality: FeedbackQuality::default(),
            decay: 1.0,
            max_terms: 64,
        });
        let mut p = Profile::new();
        learner.apply(&mut p, &event(BehaviorKind::Purchase));
        // W = 0 + 0.3 * 1.0 (quality) * 1.0 (term weight)
        let books = p.category("books").unwrap();
        assert!((books.terms.weight("rust") - 0.3).abs() < 1e-12);
        assert!((books.terms.weight("systems") - 0.15).abs() < 1e-12);
        // sub-category mirrors
        assert!((books.sub("programming").unwrap().weight("rust") - 0.3).abs() < 1e-12);
    }

    #[test]
    fn purchase_reinforces_more_than_query() {
        let learner = ProfileLearner::default();
        let mut p_query = Profile::new();
        let mut p_buy = Profile::new();
        learner.apply(&mut p_query, &event(BehaviorKind::Query));
        learner.apply(&mut p_buy, &event(BehaviorKind::Purchase));
        assert!(
            p_buy.total_interest() > p_query.total_interest(),
            "a purchase must move the profile more than a query"
        );
    }

    #[test]
    fn repeated_events_converge_to_preference_direction() {
        let learner = ProfileLearner::default();
        let mut p = Profile::new();
        for _ in 0..50 {
            learner.apply(&mut p, &event(BehaviorKind::Purchase));
        }
        let flat = p.flatten();
        let rust = flat.weight("books//rust");
        let systems = flat.weight("books//systems");
        // proportions of the merchandise terms are preserved
        assert!((rust / systems - 2.0).abs() < 1e-6);
    }

    #[test]
    fn decay_shrinks_old_interest() {
        let config = LearnerConfig {
            decay: 0.5,
            ..LearnerConfig::default()
        };
        let learner = ProfileLearner::new(config);
        let mut p = Profile::new();
        learner.apply(&mut p, &event(BehaviorKind::Purchase));
        let w1 = p.category("books").unwrap().terms.weight("rust");
        // second event on a different item decays "rust"
        let other = BehaviorEvent::new(
            BehaviorKind::Purchase,
            CategoryPath::new("books", "programming"),
            TermVector::from_pairs([("go", 1.0)]),
        );
        learner.apply(&mut p, &other);
        let w2 = p.category("books").unwrap().terms.weight("rust");
        assert!(w2 < w1, "decay must shrink untouched terms: {w2} !< {w1}");
    }

    #[test]
    fn zero_alpha_is_a_noop() {
        let config = LearnerConfig {
            alpha: 0.0,
            ..LearnerConfig::default()
        };
        let learner = ProfileLearner::new(config);
        let mut p = Profile::new();
        learner.apply(&mut p, &event(BehaviorKind::Purchase));
        assert!(p.is_empty());
    }

    #[test]
    fn max_terms_bounds_profile_growth() {
        let config = LearnerConfig {
            max_terms: 5,
            ..LearnerConfig::default()
        };
        let learner = ProfileLearner::new(config);
        let mut p = Profile::new();
        for i in 0..50 {
            let e = BehaviorEvent::new(
                BehaviorKind::Purchase,
                CategoryPath::new("books", "programming"),
                TermVector::from_pairs([(format!("t{i}"), 1.0 + i as f64)]),
            );
            learner.apply(&mut p, &e);
        }
        assert!(p.category("books").unwrap().terms.len() <= 5);
    }

    #[test]
    fn apply_all_matches_sequential_apply() {
        let learner = ProfileLearner::default();
        let events = vec![event(BehaviorKind::Query), event(BehaviorKind::Purchase)];
        let mut a = Profile::new();
        let mut b = Profile::new();
        learner.apply_all(&mut a, &events);
        for e in &events {
            learner.apply(&mut b, e);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn apply_indexed_matches_apply_and_reports_footprint() {
        for decay in [1.0, 0.9] {
            let learner = ProfileLearner::new(LearnerConfig {
                decay,
                max_terms: 3,
                ..LearnerConfig::default()
            });
            let mut via_apply = Profile::new();
            let mut via_indexed = Profile::new();
            let events = [
                event(BehaviorKind::Purchase),
                BehaviorEvent::new(
                    BehaviorKind::Browse,
                    CategoryPath::new("books", "programming"),
                    TermVector::from_pairs([("go", 2.0), ("unix", 1.5)]),
                ),
                BehaviorEvent::new(
                    BehaviorKind::Purchase,
                    CategoryPath::new("music", "jazz"),
                    TermVector::from_pairs([("sax", 1.0)]),
                ),
                // overflows max_terms = 3 → compaction must be reported
                BehaviorEvent::new(
                    BehaviorKind::Purchase,
                    CategoryPath::new("books", "programming"),
                    TermVector::from_pairs([("ml", 9.0), ("proofs", 8.0)]),
                ),
            ];
            for e in &events {
                learner.apply(&mut via_apply, e);
                let delta = learner.apply_indexed(&mut via_indexed, e);
                assert!(!delta.is_empty());
                // every reported weight is the profile's flatten weight
                let flat = via_indexed.flatten();
                for (key, w) in delta.changes() {
                    assert_eq!(flat.weight(key).to_bits(), w.to_bits(), "key {key}");
                }
            }
            assert_eq!(via_apply, via_indexed, "decay {decay}");
        }
    }

    #[test]
    fn apply_indexed_zero_factor_is_empty() {
        let learner = ProfileLearner::new(LearnerConfig {
            alpha: 0.0,
            ..LearnerConfig::default()
        });
        let mut p = Profile::new();
        assert!(learner
            .apply_indexed(&mut p, &event(BehaviorKind::Purchase))
            .is_empty());
        assert!(p.is_empty());
    }

    #[test]
    fn quality_mapping_covers_all_kinds() {
        let q = FeedbackQuality::default();
        let kinds = [
            BehaviorKind::Query,
            BehaviorKind::Browse,
            BehaviorKind::Negotiate,
            BehaviorKind::Bid,
            BehaviorKind::AuctionWin,
            BehaviorKind::Purchase,
        ];
        let mut last = 0.0;
        for k in kinds {
            let v = q.of(k);
            assert!(v > 0.0);
            assert!(v >= last, "default qualities are monotone in commitment");
            last = v;
        }
    }
}
