//! The profile update rule — the paper's Fig 4.5.
//!
//! ```text
//! New_profile_of_Category_c = W_ci + α · Σ_j (w_ji · quality_of_feedback)
//!
//!   W_ci  the weight of term i in category c
//!   w_ji  the weight of term i from document j
//!   α     the learning rate
//! ```
//!
//! "Documents" here are merchandise the consumer interacted with; the
//! *quality of feedback* depends on how strong the behaviour was (a
//! purchase says more than a query — §3.3: the mechanism records
//! "merchandise query, buy, negotiation, and auction"). The paper quotes
//! the rule from Middleton's mini-thesis \[10\] without fixing the
//! constants, so the qualities and α are configuration, swept in
//! experiment E10.

use crate::profile::Profile;
use ecp::merchandise::{CategoryPath, Money};
use ecp::terms::TermVector;
use serde::{Deserialize, Serialize};

/// The kinds of consumer behaviour the mechanism observes (§3.3 item 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BehaviorKind {
    /// Queried for merchandise like this.
    Query,
    /// Viewed a recommendation / offer.
    Browse,
    /// Entered price negotiation.
    Negotiate,
    /// Placed an auction bid.
    Bid,
    /// Won an auction.
    AuctionWin,
    /// Bought the item.
    Purchase,
}

/// Feedback-quality mapping: how much each behaviour kind reinforces the
/// profile (the `quality_of_feedback` factor of Fig 4.5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeedbackQuality {
    /// Quality of a query.
    pub query: f64,
    /// Quality of a browse/click.
    pub browse: f64,
    /// Quality of entering a negotiation.
    pub negotiate: f64,
    /// Quality of placing a bid.
    pub bid: f64,
    /// Quality of winning an auction.
    pub auction_win: f64,
    /// Quality of a purchase.
    pub purchase: f64,
}

impl FeedbackQuality {
    /// Quality for a behaviour kind.
    pub fn of(&self, kind: BehaviorKind) -> f64 {
        match kind {
            BehaviorKind::Query => self.query,
            BehaviorKind::Browse => self.browse,
            BehaviorKind::Negotiate => self.negotiate,
            BehaviorKind::Bid => self.bid,
            BehaviorKind::AuctionWin => self.auction_win,
            BehaviorKind::Purchase => self.purchase,
        }
    }
}

impl Default for FeedbackQuality {
    fn default() -> Self {
        FeedbackQuality {
            query: 0.1,
            browse: 0.2,
            negotiate: 0.5,
            bid: 0.6,
            auction_win: 0.9,
            purchase: 1.0,
        }
    }
}

/// One observed behaviour event: a consumer interacted with merchandise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorEvent {
    /// What the consumer did.
    pub kind: BehaviorKind,
    /// Category of the merchandise involved.
    pub category: CategoryPath,
    /// Description terms of the merchandise ("document j" of Fig 4.5).
    pub terms: TermVector,
    /// Price involved, if any (purchases, bids).
    pub price: Option<Money>,
}

impl BehaviorEvent {
    /// Convenience constructor without a price.
    pub fn new(kind: BehaviorKind, category: CategoryPath, terms: TermVector) -> Self {
        BehaviorEvent {
            kind,
            category,
            terms,
            price: None,
        }
    }
}

/// Configuration of the learner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LearnerConfig {
    /// Learning rate α of Fig 4.5.
    pub alpha: f64,
    /// Feedback-quality mapping.
    pub quality: FeedbackQuality,
    /// Multiplicative decay applied to the touched category before the
    /// update (1.0 = no decay). Models drifting interest.
    pub decay: f64,
    /// Per-vector term cap enforced after updates.
    pub max_terms: usize,
}

impl Default for LearnerConfig {
    fn default() -> Self {
        LearnerConfig {
            alpha: 0.3,
            quality: FeedbackQuality::default(),
            decay: 1.0,
            max_terms: 64,
        }
    }
}

/// Applies Fig 4.5 updates to profiles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfileLearner {
    /// Learner parameters.
    pub config: LearnerConfig,
}

impl ProfileLearner {
    /// Learner with the given config.
    pub fn new(config: LearnerConfig) -> Self {
        ProfileLearner { config }
    }

    /// Apply one behaviour event to `profile`:
    /// `W_ci += α · w_ji · quality(kind)` for every term `i` of the
    /// merchandise, at both the category and the sub-category level.
    pub fn apply(&self, profile: &mut Profile, event: &BehaviorEvent) {
        let factor = self.config.alpha * self.config.quality.of(event.kind);
        if factor <= 0.0 {
            return;
        }
        let cp = profile.category_mut(&event.category.category);
        if self.config.decay < 1.0 {
            cp.terms.scale(self.config.decay);
        }
        cp.terms.add_scaled(&event.terms, factor);
        let sub = cp.sub_mut(&event.category.sub_category);
        if self.config.decay < 1.0 {
            sub.scale(self.config.decay);
        }
        sub.add_scaled(&event.terms, factor);
        profile.compact(self.config.max_terms);
    }

    /// Apply a batch of events in order.
    pub fn apply_all<'a, I>(&self, profile: &mut Profile, events: I)
    where
        I: IntoIterator<Item = &'a BehaviorEvent>,
    {
        for e in events {
            self.apply(profile, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: BehaviorKind) -> BehaviorEvent {
        BehaviorEvent::new(
            kind,
            CategoryPath::new("books", "programming"),
            TermVector::from_pairs([("rust", 1.0), ("systems", 0.5)]),
        )
    }

    #[test]
    fn update_follows_fig_4_5_arithmetic() {
        let learner = ProfileLearner::new(LearnerConfig {
            alpha: 0.3,
            quality: FeedbackQuality::default(),
            decay: 1.0,
            max_terms: 64,
        });
        let mut p = Profile::new();
        learner.apply(&mut p, &event(BehaviorKind::Purchase));
        // W = 0 + 0.3 * 1.0 (quality) * 1.0 (term weight)
        let books = p.category("books").unwrap();
        assert!((books.terms.weight("rust") - 0.3).abs() < 1e-12);
        assert!((books.terms.weight("systems") - 0.15).abs() < 1e-12);
        // sub-category mirrors
        assert!((books.sub("programming").unwrap().weight("rust") - 0.3).abs() < 1e-12);
    }

    #[test]
    fn purchase_reinforces_more_than_query() {
        let learner = ProfileLearner::default();
        let mut p_query = Profile::new();
        let mut p_buy = Profile::new();
        learner.apply(&mut p_query, &event(BehaviorKind::Query));
        learner.apply(&mut p_buy, &event(BehaviorKind::Purchase));
        assert!(
            p_buy.total_interest() > p_query.total_interest(),
            "a purchase must move the profile more than a query"
        );
    }

    #[test]
    fn repeated_events_converge_to_preference_direction() {
        let learner = ProfileLearner::default();
        let mut p = Profile::new();
        for _ in 0..50 {
            learner.apply(&mut p, &event(BehaviorKind::Purchase));
        }
        let flat = p.flatten();
        let rust = flat.weight("books//rust");
        let systems = flat.weight("books//systems");
        // proportions of the merchandise terms are preserved
        assert!((rust / systems - 2.0).abs() < 1e-6);
    }

    #[test]
    fn decay_shrinks_old_interest() {
        let config = LearnerConfig {
            decay: 0.5,
            ..LearnerConfig::default()
        };
        let learner = ProfileLearner::new(config);
        let mut p = Profile::new();
        learner.apply(&mut p, &event(BehaviorKind::Purchase));
        let w1 = p.category("books").unwrap().terms.weight("rust");
        // second event on a different item decays "rust"
        let other = BehaviorEvent::new(
            BehaviorKind::Purchase,
            CategoryPath::new("books", "programming"),
            TermVector::from_pairs([("go", 1.0)]),
        );
        learner.apply(&mut p, &other);
        let w2 = p.category("books").unwrap().terms.weight("rust");
        assert!(w2 < w1, "decay must shrink untouched terms: {w2} !< {w1}");
    }

    #[test]
    fn zero_alpha_is_a_noop() {
        let config = LearnerConfig {
            alpha: 0.0,
            ..LearnerConfig::default()
        };
        let learner = ProfileLearner::new(config);
        let mut p = Profile::new();
        learner.apply(&mut p, &event(BehaviorKind::Purchase));
        assert!(p.is_empty());
    }

    #[test]
    fn max_terms_bounds_profile_growth() {
        let config = LearnerConfig {
            max_terms: 5,
            ..LearnerConfig::default()
        };
        let learner = ProfileLearner::new(config);
        let mut p = Profile::new();
        for i in 0..50 {
            let e = BehaviorEvent::new(
                BehaviorKind::Purchase,
                CategoryPath::new("books", "programming"),
                TermVector::from_pairs([(format!("t{i}"), 1.0 + i as f64)]),
            );
            learner.apply(&mut p, &e);
        }
        assert!(p.category("books").unwrap().terms.len() <= 5);
    }

    #[test]
    fn apply_all_matches_sequential_apply() {
        let learner = ProfileLearner::default();
        let events = vec![event(BehaviorKind::Query), event(BehaviorKind::Purchase)];
        let mut a = Profile::new();
        let mut b = Profile::new();
        learner.apply_all(&mut a, &events);
        for e in &events {
            learner.apply(&mut b, e);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn quality_mapping_covers_all_kinds() {
        let q = FeedbackQuality::default();
        let kinds = [
            BehaviorKind::Query,
            BehaviorKind::Browse,
            BehaviorKind::Negotiate,
            BehaviorKind::Bid,
            BehaviorKind::AuctionWin,
            BehaviorKind::Purchase,
        ];
        let mut last = 0.0;
        for k in kinds {
            let v = q.of(k);
            assert!(v > 0.0);
            assert!(v >= last, "default qualities are monotone in commitment");
            last = v;
        }
    }
}
