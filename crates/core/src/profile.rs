//! Consumer profiles — the representation of the paper's Fig 4.4.
//!
//! ```text
//! Profile = <Category, Terms_of_Category,
//!            <Sub_Category, Terms_of_Sub_Category>>
//! ```
//!
//! A [`Profile`] holds, per main category, a weighted term vector plus one
//! weighted term vector per sub-category. Profiles are updated by the
//! learning rule of Fig 4.5 ([`crate::learning`]) and compared by the
//! similarity algorithm ([`crate::similarity`]).

use ecp::merchandise::CategoryPath;
use ecp::terms::TermVector;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ConsumerId(pub u64);

impl fmt::Display for ConsumerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "consumer-{}", self.0)
    }
}

/// Per-category slice of a profile: the category's own terms plus one
/// term vector per sub-category (Fig 4.4).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CategoryProfile {
    /// `Terms_of_Category`: weighted terms describing the consumer's
    /// interest in the main category.
    pub terms: TermVector,
    /// `Sub_Category → Terms_of_Sub_Category`.
    pub subs: BTreeMap<String, TermVector>,
}

impl CategoryProfile {
    /// Total interest mass in this category (sum of all term weights,
    /// category-level and sub-category-level).
    pub fn interest(&self) -> f64 {
        self.terms.total_weight() + self.subs.values().map(|v| v.total_weight()).sum::<f64>()
    }

    /// Term vector of a sub-category, if present.
    pub fn sub(&self, sub_category: &str) -> Option<&TermVector> {
        self.subs.get(sub_category)
    }

    /// Mutable term vector of a sub-category, created on demand.
    pub fn sub_mut(&mut self, sub_category: &str) -> &mut TermVector {
        self.subs.entry(sub_category.to_string()).or_default()
    }
}

/// A consumer's full profile: one [`CategoryProfile`] per main category.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    categories: BTreeMap<String, CategoryProfile>,
}

impl Profile {
    /// Empty profile (a cold-start consumer).
    pub fn new() -> Self {
        Self::default()
    }

    /// The profile slice for `category`, if the consumer has shown any
    /// interest in it.
    pub fn category(&self, category: &str) -> Option<&CategoryProfile> {
        self.categories.get(category)
    }

    /// Mutable slice for `category`, created on demand.
    pub fn category_mut(&mut self, category: &str) -> &mut CategoryProfile {
        self.categories.entry(category.to_string()).or_default()
    }

    /// Category names the consumer has interest in, most interested
    /// first.
    pub fn top_categories(&self, k: usize) -> Vec<(&str, f64)> {
        let mut cats: Vec<(&str, f64)> = self
            .categories
            .iter()
            .map(|(c, p)| (c.as_str(), p.interest()))
            .collect();
        cats.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        cats.truncate(k);
        cats
    }

    /// Iterate `(category, profile)` in category order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &CategoryProfile)> {
        self.categories.iter().map(|(c, p)| (c.as_str(), p))
    }

    /// Mutable iteration over `(category, profile)` (maintenance passes).
    pub fn iter_mut_categories(&mut self) -> impl Iterator<Item = (&str, &mut CategoryProfile)> {
        self.categories.iter_mut().map(|(c, p)| (c.as_str(), p))
    }

    /// Number of categories with interest.
    pub fn len(&self) -> usize {
        self.categories.len()
    }

    /// Whether the profile records no interest at all.
    pub fn is_empty(&self) -> bool {
        self.categories.is_empty() || self.total_interest() == 0.0
    }

    /// Sum of interest mass over all categories.
    pub fn total_interest(&self) -> f64 {
        self.categories.values().map(|p| p.interest()).sum()
    }

    /// Flatten the profile into one term vector. Category terms keep
    /// their weight; sub-category terms are namespaced as
    /// `"category/sub/term"` and plain terms as `"category//term"` so
    /// that interest in `"rust"` under `books/programming` does not
    /// collide with `"rust"` under `garden/tools`.
    pub fn flatten(&self) -> TermVector {
        let mut out = TermVector::new();
        for (cat, cp) in &self.categories {
            for (t, w) in cp.terms.iter() {
                out.add(format!("{cat}//{t}"), w);
            }
            for (sub, terms) in &cp.subs {
                for (t, w) in terms.iter() {
                    out.add(format!("{cat}/{sub}/{t}"), w);
                }
            }
        }
        out
    }

    /// Interest weight the profile assigns to an item described by
    /// `(path, terms)`: the dot product of the item's terms with the
    /// matching category and sub-category vectors, plus a small bonus for
    /// plain category presence.
    pub fn affinity(&self, path: &CategoryPath, terms: &TermVector) -> f64 {
        let Some(cp) = self.categories.get(&path.category) else {
            return 0.0;
        };
        let mut score = cp.terms.dot(terms);
        if let Some(sub) = cp.sub(&path.sub_category) {
            score += 2.0 * sub.dot(terms);
        }
        // interest in the category at all counts a little, even without
        // term overlap (serendipity floor)
        score + 0.05 * cp.interest()
    }

    /// Drop categories and terms whose weight decayed to (near) zero and
    /// cap each vector at `max_terms` — keeps long-lived profiles
    /// bounded.
    pub fn compact(&mut self, max_terms: usize) {
        for cp in self.categories.values_mut() {
            cp.terms.truncate_top(max_terms);
            cp.subs.retain(|_, v| {
                v.truncate_top(max_terms);
                !v.is_empty()
            });
        }
        self.categories.retain(|_, cp| cp.interest() > 1e-9);
    }

    /// [`Profile::compact`] restricted to one category, reporting every
    /// flattened key it drops into `dropped` (namespaced exactly like
    /// [`Profile::flatten`]). The incremental learning path uses this to
    /// turn compaction into index deltas: a Fig 4.5 update touches a
    /// single category, so compacting only that category — while telling
    /// the caller which flat entries vanished — keeps per-feedback cost
    /// O(changed terms) without the index drifting from the profile.
    pub(crate) fn compact_category_reporting(
        &mut self,
        category: &str,
        max_terms: usize,
        dropped: &mut Vec<String>,
    ) {
        let Some(cp) = self.categories.get_mut(category) else {
            return;
        };
        let before: Vec<String> = cp.terms.iter().map(|(t, _)| t.to_string()).collect();
        cp.terms.truncate_top(max_terms);
        for t in before {
            if cp.terms.weight(&t) == 0.0 {
                dropped.push(format!("{category}//{t}"));
            }
        }
        cp.subs.retain(|sub, v| {
            let before: Vec<String> = v.iter().map(|(t, _)| t.to_string()).collect();
            v.truncate_top(max_terms);
            for t in before {
                if v.weight(&t) == 0.0 {
                    dropped.push(format!("{category}/{sub}/{t}"));
                }
            }
            !v.is_empty()
        });
        if cp.interest() <= 1e-9 {
            // the whole category goes: every surviving key vanishes too
            dropped.extend(cp.terms.iter().map(|(t, _)| format!("{category}//{t}")));
            for (sub, v) in &cp.subs {
                dropped.extend(v.iter().map(|(t, _)| format!("{category}/{sub}/{t}")));
            }
            self.categories.remove(category);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_with_interest() -> Profile {
        let mut p = Profile::new();
        let books = p.category_mut("books");
        books.terms.set("bestseller", 0.5);
        books.sub_mut("programming").set("rust", 2.0);
        let music = p.category_mut("music");
        music.sub_mut("jazz").set("miles", 0.3);
        p
    }

    #[test]
    fn empty_profile_is_cold() {
        let p = Profile::new();
        assert!(p.is_empty());
        assert_eq!(p.total_interest(), 0.0);
        assert!(p.category("books").is_none());
    }

    #[test]
    fn interest_sums_category_and_sub_terms() {
        let p = profile_with_interest();
        let books = p.category("books").unwrap();
        assert!((books.interest() - 2.5).abs() < 1e-12);
        assert!((p.total_interest() - 2.8).abs() < 1e-12);
    }

    #[test]
    fn top_categories_ranks_by_interest() {
        let p = profile_with_interest();
        let top = p.top_categories(2);
        assert_eq!(top[0].0, "books");
        assert_eq!(top[1].0, "music");
        assert_eq!(p.top_categories(1).len(), 1);
    }

    #[test]
    fn flatten_namespaces_terms_by_category() {
        let mut p = Profile::new();
        p.category_mut("books")
            .sub_mut("programming")
            .set("rust", 1.0);
        p.category_mut("garden").sub_mut("tools").set("rust", 1.0);
        let flat = p.flatten();
        assert_eq!(
            flat.len(),
            2,
            "same term in different categories must not collide"
        );
        assert!(flat.weight("books/programming/rust") > 0.0);
        assert!(flat.weight("garden/tools/rust") > 0.0);
    }

    #[test]
    fn affinity_prefers_matching_subcategory() {
        let p = profile_with_interest();
        let terms = TermVector::from_pairs([("rust", 1.0)]);
        let hit = p.affinity(&CategoryPath::new("books", "programming"), &terms);
        let wrong_sub = p.affinity(&CategoryPath::new("books", "cooking"), &terms);
        let wrong_cat = p.affinity(&CategoryPath::new("garden", "tools"), &terms);
        assert!(
            hit > wrong_sub,
            "sub-category match must dominate: {hit} vs {wrong_sub}"
        );
        assert!(wrong_sub > wrong_cat, "category interest still counts");
        assert_eq!(wrong_cat, 0.0);
    }

    #[test]
    fn compact_prunes_dead_categories_and_long_tails() {
        let mut p = Profile::new();
        let cp = p.category_mut("books");
        for i in 0..100 {
            cp.terms.set(format!("t{i}"), (i + 1) as f64 / 100.0);
        }
        p.category_mut("ghost"); // zero-interest category
        p.compact(10);
        assert_eq!(p.category("books").unwrap().terms.len(), 10);
        assert!(p.category("ghost").is_none());
    }

    #[test]
    fn profile_round_trips_serde() {
        let p = profile_with_interest();
        let back: Profile = serde_json::from_value(serde_json::to_value(&p).unwrap()).unwrap();
        assert_eq!(back, p);
    }
}
