//! # abcrm-core — the agent-based consumer recommendation mechanism
//!
//! The paper's primary contribution (Wang, Hwang & Wang, AINA 2004):
//! consumer profiles, the Fig 4.5 learning rule and similarity algorithm,
//! the IF/CF/hybrid recommenders, and the Buyer Agent Server with its
//! functional agents (BSMA, HttpA, PA, BRA, MBA) running figure-exact
//! workflows on the [`agentsim`] platform.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod admission;
pub mod agents;
pub mod ann;
pub mod breaker;
pub mod extensions;
pub mod index;
pub mod itemcf;
pub mod learning;
pub mod profile;
pub mod ratings;
pub mod recommend;
pub mod retry;
pub mod server;
pub mod similarity;
pub mod store;
pub mod userdb;
pub mod workflow;

pub use admission::{AdmissionConfig, AdmissionGate, AdmissionVerdict, Priority};
pub use ann::AnnConfig;
pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker};
pub use index::{FlatProfile, ItemSimCache, ProfileIndex};
pub use itemcf::ItemCfRecommender;
pub use learning::{
    BehaviorEvent, BehaviorKind, FeedbackQuality, LearnerConfig, ProfileDelta, ProfileLearner,
};
pub use profile::{CategoryProfile, ConsumerId, Profile};
pub use ratings::RatingsMatrix;
pub use recommend::{
    CfRecommender, ContentRecommender, HybridRecommender, QueryContext, RandomRecommender,
    Recommendation, Recommender, TopSellerRecommender,
};
pub use retry::BackoffPolicy;
pub use server::{listing, Platform, PlatformBuilder, ShardedPlatform, ShardedPlatformBuilder};
pub use similarity::{profile_similarity, SimilarityConfig, SimilarityMethod};
pub use store::RecommendStore;
pub use userdb::{TradeChannel, TransactionRecord, UserDb};
