//! Consumer similarity — the paper's Fig 4.5 similarity step.
//!
//! §4.4: *"The generation of recommendation information is to find the
//! similar user's profile through the similarity. If Consumer X's
//! preference merchandise item value Tx different from other consumer Y's
//! preference merchandise item value Ty, the similarity result will be
//! discard. The higher similarity value means that consumer X is more
//! similar to consumer Y."*
//!
//! Implemented as vector similarity over flattened profiles with the
//! paper's *threshold discard*: term pairs whose weights disagree by more
//! than a relative threshold are excluded from the comparison, and if too
//! little evidence survives the pair of consumers is discarded entirely
//! (similarity 0). Cosine is the default; Pearson and Jaccard are
//! provided for the CF baselines and the ablation (E10).

use crate::profile::Profile;
use ecp::terms::TermVector;
use serde::{Deserialize, Serialize};

/// Similarity measure over term/rating vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimilarityMethod {
    /// Cosine of the angle between weight vectors (default).
    Cosine,
    /// Pearson correlation over co-occurring terms.
    Pearson,
    /// Jaccard overlap of term sets (ignores weights).
    Jaccard,
}

/// Configuration of profile similarity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimilarityConfig {
    /// Vector measure.
    pub method: SimilarityMethod,
    /// Fig 4.5 discard rule: a shared term whose weights differ by more
    /// than this *relative* factor (larger/smaller > threshold) is
    /// dropped from the comparison. `None` disables the rule.
    pub discard_threshold: Option<f64>,
    /// Minimum number of surviving shared terms for the pair to count at
    /// all; fewer ⇒ similarity 0 ("the similarity result will be
    /// discard").
    pub min_overlap: usize,
    /// Neighbour admission cutoff: [`nearest_neighbours`] keeps only
    /// candidates with similarity strictly above this floor. The default
    /// `0.0` reproduces the historical behaviour (positive similarity
    /// only). A negative floor admits anticorrelated neighbours under
    /// [`SimilarityMethod::Pearson`] — note that this disables the
    /// store's posting-list pruning, which is only lossless when
    /// zero-similarity candidates are filtered out.
    #[serde(default)]
    pub neighbour_floor: f64,
    /// Approximate neighbour search: `Some` routes the store's
    /// `nearest_neighbours`/`recommend` through the random-hyperplane
    /// LSH index of [`crate::ann`] (candidates from hash buckets,
    /// re-ranked with the exact measure), trading a measured sliver of
    /// recall for sublinear candidate generation. `None` (the default)
    /// keeps the exact posting-list scan — and byte-identical results.
    /// Ignored when `neighbour_floor` is negative: ANN candidate
    /// generation, like posting-list pruning, is only sound when
    /// zero-similarity candidates are filtered out.
    #[serde(default)]
    pub ann: Option<crate::ann::AnnConfig>,
}

impl Default for SimilarityConfig {
    fn default() -> Self {
        SimilarityConfig {
            method: SimilarityMethod::Cosine,
            discard_threshold: Some(4.0),
            min_overlap: 1,
            neighbour_floor: 0.0,
            ann: None,
        }
    }
}

impl SimilarityConfig {
    /// Resolve an unset ANN hash seed from `platform_seed` (no-op when
    /// ANN is off or a seed was given explicitly) — called by the
    /// platform builders so the whole simulation, hyperplanes included,
    /// derives from one seed.
    pub fn with_ann_seed(mut self, platform_seed: u64) -> Self {
        if let Some(ann) = self.ann {
            self.ann = Some(ann.resolve_seed(platform_seed));
        }
        self
    }
}

/// Compute similarity between two raw term vectors under `config`.
pub fn vector_similarity(a: &TermVector, b: &TermVector, config: &SimilarityConfig) -> f64 {
    similarity_impl(a, b, None, config)
}

/// [`vector_similarity`] with the vectors' precomputed norms supplied by
/// the caller (the store's flat-profile cache), so the cosine
/// denominator is not recomputed per query. Bitwise identical to
/// [`vector_similarity`] when `a_norm == a.norm()` and
/// `b_norm == b.norm()`.
pub fn vector_similarity_with_norms(
    a: &TermVector,
    a_norm: f64,
    b: &TermVector,
    b_norm: f64,
    config: &SimilarityConfig,
) -> f64 {
    similarity_impl(a, b, Some((a_norm, b_norm)), config)
}

fn similarity_impl(
    a: &TermVector,
    b: &TermVector,
    norms: Option<(f64, f64)>,
    config: &SimilarityConfig,
) -> f64 {
    // Collect shared terms, applying the discard rule. `intersection`
    // counts every shared term, surviving or not: Jaccard is about term
    // *sets*, so the discard rule shrinks its numerator (evidence), not
    // its universe.
    let mut shared: Vec<(f64, f64)> = Vec::new();
    let mut intersection = 0usize;
    for (t, wa) in a.iter() {
        let wb = b.weight(t);
        if wb <= 0.0 {
            continue;
        }
        intersection += 1;
        if let Some(threshold) = config.discard_threshold {
            let ratio = if wa >= wb { wa / wb } else { wb / wa };
            if ratio > threshold {
                continue; // Tx too different from Ty: discard this pair
            }
        }
        shared.push((wa, wb));
    }
    if shared.len() < config.min_overlap {
        return 0.0;
    }
    match config.method {
        SimilarityMethod::Cosine => {
            // Norms over the full vectors, dot over surviving pairs: a
            // consumer with many unshared interests is less similar.
            let dot: f64 = shared.iter().map(|(x, y)| x * y).sum();
            let denom = match norms {
                Some((na, nb)) => na * nb,
                None => a.norm() * b.norm(),
            };
            if denom == 0.0 {
                0.0
            } else {
                (dot / denom).clamp(0.0, 1.0)
            }
        }
        SimilarityMethod::Pearson => {
            let n = shared.len() as f64;
            if shared.len() < 2 {
                return 0.0;
            }
            let mean_x = shared.iter().map(|(x, _)| x).sum::<f64>() / n;
            let mean_y = shared.iter().map(|(_, y)| y).sum::<f64>() / n;
            let mut cov = 0.0;
            let mut var_x = 0.0;
            let mut var_y = 0.0;
            for (x, y) in &shared {
                cov += (x - mean_x) * (y - mean_y);
                var_x += (x - mean_x).powi(2);
                var_y += (y - mean_y).powi(2);
            }
            let denom = (var_x * var_y).sqrt();
            if denom == 0.0 {
                0.0
            } else {
                (cov / denom).clamp(-1.0, 1.0)
            }
        }
        SimilarityMethod::Jaccard => {
            // |A ∪ B| = |A| + |B| − |A ∩ B| over *all* shared terms —
            // using the post-discard survivor count here would inflate
            // the union and deflate every Jaccard score.
            let union = a.len() + b.len() - intersection;
            if union == 0 {
                0.0
            } else {
                shared.len() as f64 / union as f64
            }
        }
    }
}

/// Similarity between two consumer profiles: the configured measure over
/// their flattened (category-namespaced) term vectors.
pub fn profile_similarity(a: &Profile, b: &Profile, config: &SimilarityConfig) -> f64 {
    vector_similarity(&a.flatten(), &b.flatten(), config)
}

/// Rank `candidates` by similarity to `target`, keeping only candidates
/// strictly above [`SimilarityConfig::neighbour_floor`] (by default,
/// dropping discarded zero-similarity pairs), best first, at most `k`.
///
/// This is the reference full-scan implementation; the store's
/// [`crate::store::RecommendStore::nearest_neighbours`] serves the same
/// answer from its posting-list index.
pub fn nearest_neighbours<'a, I>(
    target: &Profile,
    candidates: I,
    config: &SimilarityConfig,
    k: usize,
) -> Vec<(crate::profile::ConsumerId, f64)>
where
    I: IntoIterator<Item = (crate::profile::ConsumerId, &'a Profile)>,
{
    let flat = target.flatten();
    let mut scored: Vec<(crate::profile::ConsumerId, f64)> = candidates
        .into_iter()
        .map(|(id, p)| (id, vector_similarity(&flat, &p.flatten(), config)))
        .filter(|(_, s)| *s > config.neighbour_floor)
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ConsumerId;

    fn profile(pairs: &[(&str, &str, &str, f64)]) -> Profile {
        // (category, sub, term, weight)
        let mut p = Profile::new();
        for (cat, sub, term, w) in pairs {
            p.category_mut(cat).sub_mut(sub).set(*term, *w);
        }
        p
    }

    #[test]
    fn identical_profiles_are_maximally_similar() {
        let a = profile(&[
            ("books", "prog", "rust", 1.0),
            ("music", "jazz", "sax", 0.5),
        ]);
        let s = profile_similarity(&a, &a.clone(), &SimilarityConfig::default());
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_profiles_have_zero_similarity() {
        let a = profile(&[("books", "prog", "rust", 1.0)]);
        let b = profile(&[("garden", "tools", "spade", 1.0)]);
        assert_eq!(
            profile_similarity(&a, &b, &SimilarityConfig::default()),
            0.0
        );
    }

    #[test]
    fn similarity_is_symmetric() {
        let a = profile(&[("books", "prog", "rust", 1.0), ("books", "prog", "go", 0.4)]);
        let b = profile(&[
            ("books", "prog", "rust", 0.7),
            ("music", "jazz", "sax", 1.0),
        ]);
        let cfg = SimilarityConfig::default();
        assert!(
            (profile_similarity(&a, &b, &cfg) - profile_similarity(&b, &a, &cfg)).abs() < 1e-12
        );
    }

    #[test]
    fn discard_rule_drops_wildly_different_term_values() {
        let a = profile(&[("books", "prog", "rust", 10.0)]);
        let b = profile(&[("books", "prog", "rust", 1.0)]);
        let strict = SimilarityConfig {
            discard_threshold: Some(2.0),
            ..SimilarityConfig::default()
        };
        assert_eq!(
            profile_similarity(&a, &b, &strict),
            0.0,
            "Tx=10 vs Ty=1 exceeds the threshold: pair discarded"
        );
        let lax = SimilarityConfig {
            discard_threshold: None,
            ..SimilarityConfig::default()
        };
        assert!(profile_similarity(&a, &b, &lax) > 0.0);
    }

    #[test]
    fn min_overlap_discards_thin_evidence() {
        let a = profile(&[("books", "prog", "rust", 1.0), ("books", "prog", "go", 1.0)]);
        let b = profile(&[
            ("books", "prog", "rust", 1.0),
            ("music", "jazz", "sax", 1.0),
        ]);
        let cfg = SimilarityConfig {
            min_overlap: 2,
            ..SimilarityConfig::default()
        };
        assert_eq!(profile_similarity(&a, &b, &cfg), 0.0);
        let cfg1 = SimilarityConfig {
            min_overlap: 1,
            ..SimilarityConfig::default()
        };
        assert!(profile_similarity(&a, &b, &cfg1) > 0.0);
    }

    #[test]
    fn more_shared_interest_means_higher_similarity() {
        let target = profile(&[
            ("books", "prog", "rust", 1.0),
            ("books", "prog", "go", 1.0),
            ("music", "jazz", "sax", 1.0),
        ]);
        let close = profile(&[
            ("books", "prog", "rust", 1.0),
            ("books", "prog", "go", 1.0),
            ("music", "jazz", "sax", 0.8),
        ]);
        let far = profile(&[("books", "prog", "rust", 1.0), ("garden", "t", "x", 3.0)]);
        let cfg = SimilarityConfig::default();
        assert!(
            profile_similarity(&target, &close, &cfg) > profile_similarity(&target, &far, &cfg)
        );
    }

    #[test]
    fn jaccard_ignores_weights() {
        let a = TermVector::from_pairs([("x", 100.0), ("y", 1.0)]);
        let b = TermVector::from_pairs([("x", 0.1), ("z", 1.0)]);
        let cfg = SimilarityConfig {
            method: SimilarityMethod::Jaccard,
            discard_threshold: None,
            min_overlap: 1,
            ..SimilarityConfig::default()
        };
        // shared {x}, union {x,y,z}
        assert!((vector_similarity(&a, &b, &cfg) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_union_ignores_the_discard_rule() {
        // Shared terms {x, y}; y's weights differ 10:1 and are discarded
        // as evidence, but y is still a shared *term*: the union is
        // {x, y, w} (3), not |a| + |b| − survivors = 2 + 3 − 1 = 4.
        let a = TermVector::from_pairs([("x", 1.0), ("y", 10.0)]);
        let b = TermVector::from_pairs([("x", 1.0), ("y", 1.0), ("w", 1.0)]);
        let cfg = SimilarityConfig {
            method: SimilarityMethod::Jaccard,
            discard_threshold: Some(2.0),
            min_overlap: 1,
            ..SimilarityConfig::default()
        };
        assert!((vector_similarity(&a, &b, &cfg) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn with_norms_variant_is_bitwise_identical() {
        let a = TermVector::from_pairs([("x", 1.3), ("y", 0.2), ("z", 7.5)]);
        let b = TermVector::from_pairs([("x", 0.9), ("z", 2.1), ("w", 4.0)]);
        for method in [
            SimilarityMethod::Cosine,
            SimilarityMethod::Pearson,
            SimilarityMethod::Jaccard,
        ] {
            let cfg = SimilarityConfig {
                method,
                ..SimilarityConfig::default()
            };
            let plain = vector_similarity(&a, &b, &cfg);
            let cached = vector_similarity_with_norms(&a, a.norm(), &b, b.norm(), &cfg);
            assert_eq!(plain.to_bits(), cached.to_bits());
        }
    }

    #[test]
    fn negative_neighbour_floor_admits_anticorrelated_pearson_neighbours() {
        let target = profile(&[
            ("b", "p", "x", 1.0),
            ("b", "p", "y", 2.0),
            ("b", "p", "z", 3.0),
        ]);
        let opposite = profile(&[
            ("b", "p", "x", 3.0),
            ("b", "p", "y", 2.0),
            ("b", "p", "z", 1.0),
        ]);
        let cfg = SimilarityConfig {
            method: SimilarityMethod::Pearson,
            discard_threshold: None,
            min_overlap: 2,
            ..SimilarityConfig::default()
        };
        let candidates = vec![(ConsumerId(1), &opposite)];
        assert!(
            nearest_neighbours(&target, candidates.clone(), &cfg, 5).is_empty(),
            "default floor 0.0 keeps only positive similarity"
        );
        // floor below −1 so even perfect anticorrelation (exactly −1.0)
        // passes the strict `>` filter
        let open = SimilarityConfig {
            neighbour_floor: -1.5,
            ..cfg
        };
        let nn = nearest_neighbours(&target, candidates, &open, 5);
        assert_eq!(nn.len(), 1);
        assert!(
            nn[0].1 < 0.0,
            "anticorrelated neighbour admitted: {}",
            nn[0].1
        );
    }

    #[test]
    fn pearson_detects_anticorrelation() {
        let a = TermVector::from_pairs([("x", 1.0), ("y", 2.0), ("z", 3.0)]);
        let b = TermVector::from_pairs([("x", 3.0), ("y", 2.0), ("z", 1.0)]);
        let cfg = SimilarityConfig {
            method: SimilarityMethod::Pearson,
            discard_threshold: None,
            min_overlap: 2,
            ..SimilarityConfig::default()
        };
        assert!(vector_similarity(&a, &b, &cfg) < 0.0);
    }

    #[test]
    fn nearest_neighbours_ranks_and_truncates() {
        let target = profile(&[("books", "prog", "rust", 1.0)]);
        let n1 = profile(&[("books", "prog", "rust", 1.0)]);
        let n2 = profile(&[("books", "prog", "rust", 0.9), ("music", "j", "s", 2.0)]);
        let n3 = profile(&[("garden", "t", "x", 1.0)]);
        let candidates = vec![
            (ConsumerId(1), &n1),
            (ConsumerId(2), &n2),
            (ConsumerId(3), &n3),
        ];
        let cfg = SimilarityConfig::default();
        let nn = nearest_neighbours(&target, candidates.clone(), &cfg, 10);
        assert_eq!(nn.len(), 2, "disjoint candidate discarded");
        assert_eq!(nn[0].0, ConsumerId(1));
        let nn1 = nearest_neighbours(&target, candidates, &cfg, 1);
        assert_eq!(nn1.len(), 1);
    }

    #[test]
    fn empty_profiles_never_match() {
        let empty = Profile::new();
        let full = profile(&[("books", "prog", "rust", 1.0)]);
        let cfg = SimilarityConfig::default();
        assert_eq!(profile_similarity(&empty, &full, &cfg), 0.0);
        assert_eq!(profile_similarity(&empty, &empty.clone(), &cfg), 0.0);
    }
}
