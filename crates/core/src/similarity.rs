//! Consumer similarity — the paper's Fig 4.5 similarity step.
//!
//! §4.4: *"The generation of recommendation information is to find the
//! similar user's profile through the similarity. If Consumer X's
//! preference merchandise item value Tx different from other consumer Y's
//! preference merchandise item value Ty, the similarity result will be
//! discard. The higher similarity value means that consumer X is more
//! similar to consumer Y."*
//!
//! Implemented as vector similarity over flattened profiles with the
//! paper's *threshold discard*: term pairs whose weights disagree by more
//! than a relative threshold are excluded from the comparison, and if too
//! little evidence survives the pair of consumers is discarded entirely
//! (similarity 0). Cosine is the default; Pearson and Jaccard are
//! provided for the CF baselines and the ablation (E10).

use crate::profile::Profile;
use ecp::terms::TermVector;
use serde::{Deserialize, Serialize};

/// Similarity measure over term/rating vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimilarityMethod {
    /// Cosine of the angle between weight vectors (default).
    Cosine,
    /// Pearson correlation over co-occurring terms.
    Pearson,
    /// Jaccard overlap of term sets (ignores weights).
    Jaccard,
}

/// Configuration of profile similarity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimilarityConfig {
    /// Vector measure.
    pub method: SimilarityMethod,
    /// Fig 4.5 discard rule: a shared term whose weights differ by more
    /// than this *relative* factor (larger/smaller > threshold) is
    /// dropped from the comparison. `None` disables the rule.
    pub discard_threshold: Option<f64>,
    /// Minimum number of surviving shared terms for the pair to count at
    /// all; fewer ⇒ similarity 0 ("the similarity result will be
    /// discard").
    pub min_overlap: usize,
}

impl Default for SimilarityConfig {
    fn default() -> Self {
        SimilarityConfig {
            method: SimilarityMethod::Cosine,
            discard_threshold: Some(4.0),
            min_overlap: 1,
        }
    }
}

/// Compute similarity between two raw term vectors under `config`.
pub fn vector_similarity(a: &TermVector, b: &TermVector, config: &SimilarityConfig) -> f64 {
    // Collect shared terms, applying the discard rule.
    let mut shared: Vec<(f64, f64)> = Vec::new();
    for (t, wa) in a.iter() {
        let wb = b.weight(t);
        if wb <= 0.0 {
            continue;
        }
        if let Some(threshold) = config.discard_threshold {
            let ratio = if wa >= wb { wa / wb } else { wb / wa };
            if ratio > threshold {
                continue; // Tx too different from Ty: discard this pair
            }
        }
        shared.push((wa, wb));
    }
    if shared.len() < config.min_overlap {
        return 0.0;
    }
    match config.method {
        SimilarityMethod::Cosine => {
            // Norms over the full vectors, dot over surviving pairs: a
            // consumer with many unshared interests is less similar.
            let dot: f64 = shared.iter().map(|(x, y)| x * y).sum();
            let denom = a.norm() * b.norm();
            if denom == 0.0 {
                0.0
            } else {
                (dot / denom).clamp(0.0, 1.0)
            }
        }
        SimilarityMethod::Pearson => {
            let n = shared.len() as f64;
            if shared.len() < 2 {
                return 0.0;
            }
            let mean_x = shared.iter().map(|(x, _)| x).sum::<f64>() / n;
            let mean_y = shared.iter().map(|(_, y)| y).sum::<f64>() / n;
            let mut cov = 0.0;
            let mut var_x = 0.0;
            let mut var_y = 0.0;
            for (x, y) in &shared {
                cov += (x - mean_x) * (y - mean_y);
                var_x += (x - mean_x).powi(2);
                var_y += (y - mean_y).powi(2);
            }
            let denom = (var_x * var_y).sqrt();
            if denom == 0.0 {
                0.0
            } else {
                (cov / denom).clamp(-1.0, 1.0)
            }
        }
        SimilarityMethod::Jaccard => {
            let union = a.len() + b.len() - shared.len();
            if union == 0 {
                0.0
            } else {
                shared.len() as f64 / union as f64
            }
        }
    }
}

/// Similarity between two consumer profiles: the configured measure over
/// their flattened (category-namespaced) term vectors.
pub fn profile_similarity(a: &Profile, b: &Profile, config: &SimilarityConfig) -> f64 {
    vector_similarity(&a.flatten(), &b.flatten(), config)
}

/// Rank `candidates` by similarity to `target`, dropping discarded
/// (zero-similarity) pairs, best first, at most `k`.
pub fn nearest_neighbours<'a, I>(
    target: &Profile,
    candidates: I,
    config: &SimilarityConfig,
    k: usize,
) -> Vec<(crate::profile::ConsumerId, f64)>
where
    I: IntoIterator<Item = (crate::profile::ConsumerId, &'a Profile)>,
{
    let flat = target.flatten();
    let mut scored: Vec<(crate::profile::ConsumerId, f64)> = candidates
        .into_iter()
        .map(|(id, p)| (id, vector_similarity(&flat, &p.flatten(), config)))
        .filter(|(_, s)| *s > 0.0)
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::ConsumerId;

    fn profile(pairs: &[(&str, &str, &str, f64)]) -> Profile {
        // (category, sub, term, weight)
        let mut p = Profile::new();
        for (cat, sub, term, w) in pairs {
            p.category_mut(cat).sub_mut(sub).set(*term, *w);
        }
        p
    }

    #[test]
    fn identical_profiles_are_maximally_similar() {
        let a = profile(&[("books", "prog", "rust", 1.0), ("music", "jazz", "sax", 0.5)]);
        let s = profile_similarity(&a, &a.clone(), &SimilarityConfig::default());
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_profiles_have_zero_similarity() {
        let a = profile(&[("books", "prog", "rust", 1.0)]);
        let b = profile(&[("garden", "tools", "spade", 1.0)]);
        assert_eq!(profile_similarity(&a, &b, &SimilarityConfig::default()), 0.0);
    }

    #[test]
    fn similarity_is_symmetric() {
        let a = profile(&[("books", "prog", "rust", 1.0), ("books", "prog", "go", 0.4)]);
        let b = profile(&[("books", "prog", "rust", 0.7), ("music", "jazz", "sax", 1.0)]);
        let cfg = SimilarityConfig::default();
        assert!(
            (profile_similarity(&a, &b, &cfg) - profile_similarity(&b, &a, &cfg)).abs() < 1e-12
        );
    }

    #[test]
    fn discard_rule_drops_wildly_different_term_values() {
        let a = profile(&[("books", "prog", "rust", 10.0)]);
        let b = profile(&[("books", "prog", "rust", 1.0)]);
        let strict = SimilarityConfig {
            discard_threshold: Some(2.0),
            ..SimilarityConfig::default()
        };
        assert_eq!(
            profile_similarity(&a, &b, &strict),
            0.0,
            "Tx=10 vs Ty=1 exceeds the threshold: pair discarded"
        );
        let lax = SimilarityConfig { discard_threshold: None, ..SimilarityConfig::default() };
        assert!(profile_similarity(&a, &b, &lax) > 0.0);
    }

    #[test]
    fn min_overlap_discards_thin_evidence() {
        let a = profile(&[("books", "prog", "rust", 1.0), ("books", "prog", "go", 1.0)]);
        let b = profile(&[("books", "prog", "rust", 1.0), ("music", "jazz", "sax", 1.0)]);
        let cfg = SimilarityConfig { min_overlap: 2, ..SimilarityConfig::default() };
        assert_eq!(profile_similarity(&a, &b, &cfg), 0.0);
        let cfg1 = SimilarityConfig { min_overlap: 1, ..SimilarityConfig::default() };
        assert!(profile_similarity(&a, &b, &cfg1) > 0.0);
    }

    #[test]
    fn more_shared_interest_means_higher_similarity() {
        let target = profile(&[
            ("books", "prog", "rust", 1.0),
            ("books", "prog", "go", 1.0),
            ("music", "jazz", "sax", 1.0),
        ]);
        let close = profile(&[
            ("books", "prog", "rust", 1.0),
            ("books", "prog", "go", 1.0),
            ("music", "jazz", "sax", 0.8),
        ]);
        let far = profile(&[("books", "prog", "rust", 1.0), ("garden", "t", "x", 3.0)]);
        let cfg = SimilarityConfig::default();
        assert!(
            profile_similarity(&target, &close, &cfg) > profile_similarity(&target, &far, &cfg)
        );
    }

    #[test]
    fn jaccard_ignores_weights() {
        let a = TermVector::from_pairs([("x", 100.0), ("y", 1.0)]);
        let b = TermVector::from_pairs([("x", 0.1), ("z", 1.0)]);
        let cfg = SimilarityConfig {
            method: SimilarityMethod::Jaccard,
            discard_threshold: None,
            min_overlap: 1,
        };
        // shared {x}, union {x,y,z}
        assert!((vector_similarity(&a, &b, &cfg) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_detects_anticorrelation() {
        let a = TermVector::from_pairs([("x", 1.0), ("y", 2.0), ("z", 3.0)]);
        let b = TermVector::from_pairs([("x", 3.0), ("y", 2.0), ("z", 1.0)]);
        let cfg = SimilarityConfig {
            method: SimilarityMethod::Pearson,
            discard_threshold: None,
            min_overlap: 2,
        };
        assert!(vector_similarity(&a, &b, &cfg) < 0.0);
    }

    #[test]
    fn nearest_neighbours_ranks_and_truncates() {
        let target = profile(&[("books", "prog", "rust", 1.0)]);
        let n1 = profile(&[("books", "prog", "rust", 1.0)]);
        let n2 = profile(&[("books", "prog", "rust", 0.9), ("music", "j", "s", 2.0)]);
        let n3 = profile(&[("garden", "t", "x", 1.0)]);
        let candidates =
            vec![(ConsumerId(1), &n1), (ConsumerId(2), &n2), (ConsumerId(3), &n3)];
        let cfg = SimilarityConfig::default();
        let nn = nearest_neighbours(&target, candidates.clone(), &cfg, 10);
        assert_eq!(nn.len(), 2, "disjoint candidate discarded");
        assert_eq!(nn[0].0, ConsumerId(1));
        let nn1 = nearest_neighbours(&target, candidates, &cfg, 1);
        assert_eq!(nn1.len(), 1);
    }

    #[test]
    fn empty_profiles_never_match() {
        let empty = Profile::new();
        let full = profile(&[("books", "prog", "rust", 1.0)]);
        let cfg = SimilarityConfig::default();
        assert_eq!(profile_similarity(&empty, &full, &cfg), 0.0);
        assert_eq!(profile_similarity(&empty, &empty.clone(), &cfg), 0.0);
    }
}
