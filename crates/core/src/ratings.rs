//! Observational ratings — the data behind collaborative filtering.
//!
//! §2.3: *"a number of systems have begun to use observational ratings;
//! the system infers user preferences from actions rather than requiring
//! the user to explicitly rate an item."* The mechanism never asks for
//! stars; it maps behaviour ([`BehaviorKind`]) to an implied rating in
//! `[0, 1]` and stores it in a user × item matrix. The matrix also
//! exposes the sparsity measurements that experiment E6 sweeps (the
//! sparsity / cold-start limitations the paper attributes to CF).

use crate::learning::BehaviorKind;
use crate::profile::ConsumerId;
use ecp::merchandise::ItemId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Implied rating of a behaviour (how strongly it signals preference).
pub fn implied_rating(kind: BehaviorKind) -> f64 {
    match kind {
        BehaviorKind::Query => 0.2,
        BehaviorKind::Browse => 0.3,
        BehaviorKind::Negotiate => 0.6,
        BehaviorKind::Bid => 0.7,
        BehaviorKind::AuctionWin => 0.9,
        BehaviorKind::Purchase => 1.0,
    }
}

/// Sparse user × item matrix of ratings in `[0, 1]`, mirrored by row
/// (`by_user`) and by column (`by_item`) so both user-kNN and item-based
/// CF read their natural axis without transposing on the fly.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RatingsMatrix {
    by_user: BTreeMap<u64, BTreeMap<u64, f64>>,
    by_item: BTreeMap<u64, BTreeMap<u64, f64>>,
    /// Bumped on every observation — lets derived caches (the store's
    /// item-similarity memo) detect staleness with one comparison.
    #[serde(default)]
    version: u64,
}

impl RatingsMatrix {
    /// Empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an observation; repeated observations keep the *strongest*
    /// signal (a purchase is not weakened by a later query).
    pub fn observe(&mut self, user: ConsumerId, item: ItemId, rating: f64) {
        let rating = rating.clamp(0.0, 1.0);
        self.version += 1;
        let slot = self
            .by_user
            .entry(user.0)
            .or_default()
            .entry(item.0)
            .or_insert(0.0);
        if rating > *slot {
            *slot = rating;
        }
        let stored = *slot;
        self.by_item
            .entry(item.0)
            .or_default()
            .insert(user.0, stored);
    }

    /// Record a behaviour via [`implied_rating`].
    pub fn observe_behavior(&mut self, user: ConsumerId, item: ItemId, kind: BehaviorKind) {
        self.observe(user, item, implied_rating(kind));
    }

    /// Rating of `(user, item)`, if observed.
    pub fn rating(&self, user: ConsumerId, item: ItemId) -> Option<f64> {
        self.by_user.get(&user.0)?.get(&item.0).copied()
    }

    /// All ratings of `user` as `(item, rating)`.
    pub fn user_ratings(&self, user: ConsumerId) -> Vec<(ItemId, f64)> {
        self.by_user
            .get(&user.0)
            .map(|m| m.iter().map(|(i, r)| (ItemId(*i), *r)).collect())
            .unwrap_or_default()
    }

    /// Users who rated `item`.
    pub fn item_raters(&self, item: ItemId) -> Vec<ConsumerId> {
        self.by_item
            .get(&item.0)
            .map(|s| s.keys().map(|u| ConsumerId(*u)).collect())
            .unwrap_or_default()
    }

    /// The full rating column of `item` — `user → rating`, ascending by
    /// user — if anyone rated it. Item-based CF iterates this directly.
    pub fn item_column(&self, item: ItemId) -> Option<&BTreeMap<u64, f64>> {
        self.by_item.get(&item.0)
    }

    /// Monotone observation counter; changes whenever any rating may
    /// have changed. Caches keyed on this version are safe to reuse
    /// while it stands still.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// All users with at least one rating.
    pub fn users(&self) -> Vec<ConsumerId> {
        self.by_user.keys().map(|u| ConsumerId(*u)).collect()
    }

    /// All rated items.
    pub fn items(&self) -> Vec<ItemId> {
        self.by_item.keys().map(|i| ItemId(*i)).collect()
    }

    /// Total number of stored ratings.
    pub fn len(&self) -> usize {
        self.by_user.values().map(|m| m.len()).sum()
    }

    /// Whether the matrix holds no ratings.
    pub fn is_empty(&self) -> bool {
        self.by_user.is_empty()
    }

    /// Fraction of the user × item grid that is *unfilled* — the sparsity
    /// problem of §2.3. 1.0 for an empty matrix.
    pub fn sparsity(&self) -> f64 {
        let users = self.by_user.len();
        let items = self.by_item.len();
        if users == 0 || items == 0 {
            return 1.0;
        }
        1.0 - self.len() as f64 / (users * items) as f64
    }

    /// Mean rating of a user (None if unrated).
    pub fn user_mean(&self, user: ConsumerId) -> Option<f64> {
        let m = self.by_user.get(&user.0)?;
        if m.is_empty() {
            return None;
        }
        Some(m.values().sum::<f64>() / m.len() as f64)
    }

    /// Pearson correlation between two users over co-rated items.
    /// `None` if they co-rated fewer than `min_overlap` items.
    pub fn pearson(&self, a: ConsumerId, b: ConsumerId, min_overlap: usize) -> Option<f64> {
        let ma = self.by_user.get(&a.0)?;
        let mb = self.by_user.get(&b.0)?;
        let (small, large) = if ma.len() <= mb.len() {
            (ma, mb)
        } else {
            (mb, ma)
        };
        let shared: Vec<(f64, f64)> = small
            .iter()
            .filter_map(|(i, ra)| large.get(i).map(|rb| (*ra, *rb)))
            .collect();
        if shared.len() < min_overlap.max(2) {
            return None;
        }
        let n = shared.len() as f64;
        let mean_x = shared.iter().map(|(x, _)| x).sum::<f64>() / n;
        let mean_y = shared.iter().map(|(_, y)| y).sum::<f64>() / n;
        let mut cov = 0.0;
        let mut vx = 0.0;
        let mut vy = 0.0;
        for (x, y) in &shared {
            cov += (x - mean_x) * (y - mean_y);
            vx += (x - mean_x).powi(2);
            vy += (y - mean_y).powi(2);
        }
        let denom = (vx * vy).sqrt();
        if denom == 0.0 {
            // flat co-ratings: agreeing perfectly on everything they share
            Some(if shared.iter().all(|(x, y)| (x - y).abs() < 1e-9) {
                1.0
            } else {
                0.0
            })
        } else {
            Some((cov / denom).clamp(-1.0, 1.0))
        }
    }

    /// Cosine similarity between two users' rating vectors (over the
    /// union of their items). `None` if either is unknown.
    pub fn cosine(&self, a: ConsumerId, b: ConsumerId) -> Option<f64> {
        let ma = self.by_user.get(&a.0)?;
        let mb = self.by_user.get(&b.0)?;
        let dot: f64 = ma
            .iter()
            .filter_map(|(i, ra)| mb.get(i).map(|rb| ra * rb))
            .sum();
        let na: f64 = ma.values().map(|r| r * r).sum::<f64>().sqrt();
        let nb: f64 = mb.values().map(|r| r * r).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            return Some(0.0);
        }
        Some((dot / (na * nb)).clamp(0.0, 1.0))
    }

    /// Predict `user`'s rating of `item` by user-kNN: the
    /// similarity-weighted mean-offset prediction over the `k` most
    /// similar users who rated the item.
    ///
    /// Returns `None` when no neighbour evidence exists (the CF
    /// cold-start of §2.3: *"new items cannot be recommended until some
    /// users have taken the time to evaluate them"*).
    pub fn predict(
        &self,
        user: ConsumerId,
        item: ItemId,
        k: usize,
        min_overlap: usize,
    ) -> Option<f64> {
        let user_mean = self.user_mean(user)?;
        let raters = self.by_item.get(&item.0)?;
        let mut neighbours: Vec<(f64, f64)> = Vec::new(); // (similarity, their rating offset)
        for r in raters.keys() {
            let other = ConsumerId(*r);
            if other == user {
                continue;
            }
            let Some(sim) = self.pearson(user, other, min_overlap) else {
                continue;
            };
            if sim <= 0.0 {
                continue;
            }
            let their_rating = self.rating(other, item).expect("rater has rating");
            let their_mean = self.user_mean(other).expect("rater has mean");
            neighbours.push((sim, their_rating - their_mean));
        }
        if neighbours.is_empty() {
            return None;
        }
        neighbours.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        neighbours.truncate(k);
        let weight: f64 = neighbours.iter().map(|(s, _)| s).sum();
        let offset: f64 = neighbours.iter().map(|(s, o)| s * o).sum::<f64>() / weight;
        Some((user_mean + offset).clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(n: u64) -> ConsumerId {
        ConsumerId(n)
    }
    fn i(n: u64) -> ItemId {
        ItemId(n)
    }

    #[test]
    fn observe_keeps_strongest_signal() {
        let mut m = RatingsMatrix::new();
        m.observe_behavior(u(1), i(1), BehaviorKind::Purchase);
        m.observe_behavior(u(1), i(1), BehaviorKind::Query);
        assert_eq!(m.rating(u(1), i(1)), Some(1.0));
        // and upgrades work
        m.observe_behavior(u(1), i(2), BehaviorKind::Query);
        m.observe_behavior(u(1), i(2), BehaviorKind::Purchase);
        assert_eq!(m.rating(u(1), i(2)), Some(1.0));
    }

    #[test]
    fn implied_ratings_are_monotone_in_commitment() {
        assert!(implied_rating(BehaviorKind::Query) < implied_rating(BehaviorKind::Browse));
        assert!(implied_rating(BehaviorKind::Bid) < implied_rating(BehaviorKind::Purchase));
    }

    #[test]
    fn sparsity_reflects_fill_fraction() {
        let mut m = RatingsMatrix::new();
        assert_eq!(m.sparsity(), 1.0);
        // 2 users x 2 items, 2 ratings -> sparsity 0.5
        m.observe(u(1), i(1), 1.0);
        m.observe(u(2), i(2), 1.0);
        assert!((m.sparsity() - 0.5).abs() < 1e-12);
        m.observe(u(1), i(2), 1.0);
        m.observe(u(2), i(1), 1.0);
        assert_eq!(m.sparsity(), 0.0);
    }

    #[test]
    fn pearson_identifies_like_minded_users() {
        let mut m = RatingsMatrix::new();
        // a and b agree; a and c disagree
        for (item, ra, rb, rc) in [(1, 1.0, 0.9, 0.1), (2, 0.2, 0.3, 0.9), (3, 0.8, 0.7, 0.2)] {
            m.observe(u(1), i(item), ra);
            m.observe(u(2), i(item), rb);
            m.observe(u(3), i(item), rc);
        }
        let sim_ab = m.pearson(u(1), u(2), 2).unwrap();
        let sim_ac = m.pearson(u(1), u(3), 2).unwrap();
        assert!(sim_ab > 0.8, "agreeing users must correlate: {sim_ab}");
        assert!(
            sim_ac < 0.0,
            "disagreeing users must anticorrelate: {sim_ac}"
        );
    }

    #[test]
    fn pearson_requires_overlap() {
        let mut m = RatingsMatrix::new();
        m.observe(u(1), i(1), 1.0);
        m.observe(u(2), i(2), 1.0);
        assert_eq!(m.pearson(u(1), u(2), 2), None);
    }

    #[test]
    fn prediction_recovers_taste_clusters() {
        let mut m = RatingsMatrix::new();
        // cluster A (users 1-3) loves odd items, cluster B (4-6) loves even
        for user in 1..=3u64 {
            for item in 1..=10u64 {
                let r = if item % 2 == 1 { 0.9 } else { 0.1 };
                // leave (1, 9) unrated: that's what we predict
                if user == 1 && item == 9 {
                    continue;
                }
                m.observe(u(user), i(item), r);
            }
        }
        for user in 4..=6u64 {
            for item in 1..=10u64 {
                let r = if item % 2 == 0 { 0.9 } else { 0.1 };
                m.observe(u(user), i(item), r);
            }
        }
        let p = m.predict(u(1), i(9), 5, 2).expect("prediction exists");
        assert!(p > 0.7, "user 1 should be predicted to like item 9: {p}");
    }

    #[test]
    fn prediction_fails_for_unrated_item_cold_start() {
        let mut m = RatingsMatrix::new();
        m.observe(u(1), i(1), 1.0);
        m.observe(u(2), i(1), 1.0);
        assert_eq!(
            m.predict(u(1), i(99), 5, 2),
            None,
            "cold-start item has no raters"
        );
    }

    #[test]
    fn cosine_bounds_and_zero_overlap() {
        let mut m = RatingsMatrix::new();
        m.observe(u(1), i(1), 1.0);
        m.observe(u(2), i(2), 1.0);
        assert_eq!(m.cosine(u(1), u(2)), Some(0.0));
        m.observe(u(2), i(1), 1.0);
        let c = m.cosine(u(1), u(2)).unwrap();
        assert!(c > 0.0 && c <= 1.0);
        assert_eq!(m.cosine(u(1), u(99)), None);
    }

    #[test]
    fn accessors_enumerate_users_and_items() {
        let mut m = RatingsMatrix::new();
        m.observe(u(2), i(5), 0.5);
        m.observe(u(1), i(5), 0.7);
        assert_eq!(m.users(), vec![u(1), u(2)]);
        assert_eq!(m.items(), vec![i(5)]);
        assert_eq!(m.item_raters(i(5)), vec![u(1), u(2)]);
        assert_eq!(m.user_ratings(u(1)), vec![(i(5), 0.7)]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn item_column_mirrors_rows_and_version_advances() {
        let mut m = RatingsMatrix::new();
        assert_eq!(m.version(), 0);
        m.observe_behavior(u(1), i(5), BehaviorKind::Query);
        m.observe_behavior(u(2), i(5), BehaviorKind::Purchase);
        assert_eq!(m.version(), 2);
        let col = m.item_column(i(5)).unwrap();
        assert_eq!(col.get(&1), Some(&0.2));
        assert_eq!(col.get(&2), Some(&1.0));
        // the strongest-signal rule is mirrored into the column
        m.observe_behavior(u(1), i(5), BehaviorKind::Purchase);
        assert_eq!(m.item_column(i(5)).unwrap().get(&1), Some(&1.0));
        m.observe_behavior(u(1), i(5), BehaviorKind::Query);
        assert_eq!(m.item_column(i(5)).unwrap().get(&1), Some(&1.0));
        assert_eq!(
            m.version(),
            4,
            "even a no-op observation advances the version"
        );
        assert!(m.item_column(i(99)).is_none());
    }

    #[test]
    fn flat_coratings_count_as_perfect_agreement() {
        let mut m = RatingsMatrix::new();
        for item in 1..=3 {
            m.observe(u(1), i(item), 0.5);
            m.observe(u(2), i(item), 0.5);
        }
        assert_eq!(m.pearson(u(1), u(2), 2), Some(1.0));
    }
}
