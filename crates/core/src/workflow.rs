//! Workflow trace validation — the executable form of the paper's
//! numbered figures.
//!
//! Workflow participants emit trace notes labelled `"<figure>/step<N>
//! <description>"`. This module parses and validates those traces against
//! the figures:
//!
//! * **Fig 4.1** (mechanism creation): 6 steps;
//! * **Fig 4.2** (merchandise query): 15 steps;
//! * **Fig 4.3** (buy / auction): 14 steps.
//!
//! The paper's figures number the arrows without naming every one in
//! prose; the step-to-actor mapping used here (documented on each agent)
//! follows the figure's arrow order and the §4.1 operating principles.

use agentsim::trace::Trace;

/// Figure identifier of the creation workflow (Fig 4.1).
pub const FIG_CREATION: &str = "fig4.1";
/// Figure identifier of the merchandise-query workflow (Fig 4.2).
pub const FIG_QUERY: &str = "fig4.2";
/// Figure identifier of the buy/auction workflow (Fig 4.3).
pub const FIG_TRANSACT: &str = "fig4.3";

/// Number of numbered steps in each figure.
pub fn step_count(figure: &str) -> Option<u32> {
    match figure {
        FIG_CREATION => Some(6),
        FIG_QUERY => Some(15),
        FIG_TRANSACT => Some(14),
        _ => None,
    }
}

/// Extract the ordered step numbers recorded for `figure`.
pub fn steps_of(trace: &Trace, figure: &str) -> Vec<u32> {
    let prefix = format!("{figure}/step");
    trace
        .events()
        .iter()
        .filter_map(|e| {
            let rest = e.label.strip_prefix(&prefix)?;
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            digits.parse().ok()
        })
        .collect()
}

/// Validate that the trace contains a complete, ordered run of `figure`:
/// every step `1..=N` appears, and first occurrences appear in increasing
/// order (steps may repeat, e.g. the query/offer steps once per visited
/// marketplace).
///
/// # Errors
///
/// A human-readable description of the first violation.
pub fn validate(trace: &Trace, figure: &str) -> Result<(), String> {
    let n = step_count(figure).ok_or_else(|| format!("unknown figure `{figure}`"))?;
    let steps = steps_of(trace, figure);
    if steps.is_empty() {
        return Err(format!("no {figure} steps recorded"));
    }
    let mut first_seen: Vec<Option<usize>> = vec![None; (n + 1) as usize];
    for (pos, step) in steps.iter().enumerate() {
        if *step == 0 || *step > n {
            return Err(format!("{figure} has out-of-range step {step}"));
        }
        let slot = &mut first_seen[*step as usize];
        if slot.is_none() {
            *slot = Some(pos);
        }
    }
    let mut last_pos = 0usize;
    for step in 1..=n {
        match first_seen[step as usize] {
            None => return Err(format!("{figure} is missing step {step}")),
            Some(pos) => {
                if pos < last_pos {
                    return Err(format!(
                        "{figure} step {step} first occurs before its predecessor"
                    ));
                }
                last_pos = pos;
            }
        }
    }
    Ok(())
}

/// Per-step first-occurrence simulated times, for latency breakdowns
/// (bench E3). Index 0 is unused.
pub fn step_times(trace: &Trace, figure: &str) -> Vec<Option<agentsim::clock::SimTime>> {
    let n = step_count(figure).unwrap_or(0);
    let prefix = format!("{figure}/step");
    let mut times: Vec<Option<agentsim::clock::SimTime>> = vec![None; (n + 1) as usize];
    for e in trace.events() {
        if let Some(rest) = e.label.strip_prefix(&prefix) {
            let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
            if let Ok(step) = digits.parse::<usize>() {
                if step >= 1 && step <= n as usize && times[step].is_none() {
                    times[step] = Some(e.at);
                }
            }
        }
    }
    times
}

#[cfg(test)]
mod tests {
    use super::*;
    use agentsim::clock::SimTime;

    fn trace_with(labels: &[&str]) -> Trace {
        let mut t = Trace::new();
        for (i, l) in labels.iter().enumerate() {
            t.record(SimTime(i as u64), None, *l);
        }
        t
    }

    #[test]
    fn complete_ordered_run_validates() {
        let labels: Vec<String> = (1..=6)
            .map(|i| format!("fig4.1/step{i} something"))
            .collect();
        let refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
        assert!(validate(&trace_with(&refs), FIG_CREATION).is_ok());
    }

    #[test]
    fn missing_step_is_detected() {
        let t = trace_with(&[
            "fig4.1/step1 a",
            "fig4.1/step2 b",
            "fig4.1/step4 d",
            "fig4.1/step5 e",
            "fig4.1/step6 f",
        ]);
        let err = validate(&t, FIG_CREATION).unwrap_err();
        assert!(err.contains("missing step 3"), "{err}");
    }

    #[test]
    fn out_of_order_first_occurrence_is_detected() {
        let t = trace_with(&[
            "fig4.1/step2 b",
            "fig4.1/step1 a",
            "fig4.1/step3 c",
            "fig4.1/step4 d",
            "fig4.1/step5 e",
            "fig4.1/step6 f",
        ]);
        assert!(validate(&t, FIG_CREATION).is_err());
    }

    #[test]
    fn repeated_steps_are_allowed() {
        // multi-market query repeats steps 10-11
        let mut labels: Vec<String> = (1..=9).map(|i| format!("fig4.2/step{i:02} x")).collect();
        for _ in 0..3 {
            labels.push("fig4.2/step10 at market".into());
            labels.push("fig4.2/step11 offers".into());
        }
        for i in 12..=15 {
            labels.push(format!("fig4.2/step{i} x"));
        }
        let refs: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
        assert!(validate(&trace_with(&refs), FIG_QUERY).is_ok());
    }

    #[test]
    fn zero_padding_parses() {
        assert_eq!(
            steps_of(
                &trace_with(&["fig4.2/step01 x", "fig4.2/step12 y"]),
                FIG_QUERY
            ),
            vec![1, 12]
        );
    }

    #[test]
    fn unknown_figure_is_an_error() {
        assert!(validate(&Trace::new(), "fig9.9").is_err());
        assert!(validate(&Trace::new(), FIG_QUERY).is_err());
    }

    #[test]
    fn step_times_capture_first_occurrence() {
        let t = trace_with(&["fig4.1/step1 a", "fig4.1/step1 again", "fig4.1/step2 b"]);
        let times = step_times(&t, FIG_CREATION);
        assert_eq!(times[1], Some(SimTime(0)));
        assert_eq!(times[2], Some(SimTime(2)));
        assert_eq!(times[3], None);
    }
}
