//! Ranking and rating metrics.
//!
//! Standard recommender evaluation: precision/recall/F1 at k, average
//! precision, NDCG, hit rate, MAE/RMSE for rating prediction, catalog
//! coverage and intra-list (category) diversity.

use ecp::merchandise::ItemId;
use std::collections::BTreeSet;

/// Precision@k: fraction of the top-k that is relevant.
pub fn precision_at_k(ranked: &[ItemId], relevant: &BTreeSet<ItemId>, k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let top: Vec<&ItemId> = ranked.iter().take(k).collect();
    if top.is_empty() {
        return 0.0;
    }
    let hits = top.iter().filter(|i| relevant.contains(**i)).count();
    hits as f64 / top.len() as f64
}

/// Recall@k: fraction of the relevant set found in the top-k.
pub fn recall_at_k(ranked: &[ItemId], relevant: &BTreeSet<ItemId>, k: usize) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let hits = ranked
        .iter()
        .take(k)
        .filter(|i| relevant.contains(*i))
        .count();
    hits as f64 / relevant.len() as f64
}

/// F1@k: harmonic mean of precision@k and recall@k.
pub fn f1_at_k(ranked: &[ItemId], relevant: &BTreeSet<ItemId>, k: usize) -> f64 {
    let p = precision_at_k(ranked, relevant, k);
    let r = recall_at_k(ranked, relevant, k);
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// Hit rate@k: 1 if any relevant item appears in the top-k.
pub fn hit_at_k(ranked: &[ItemId], relevant: &BTreeSet<ItemId>, k: usize) -> f64 {
    if ranked.iter().take(k).any(|i| relevant.contains(i)) {
        1.0
    } else {
        0.0
    }
}

/// Average precision over the full ranking (AP; mean over users = MAP).
pub fn average_precision(ranked: &[ItemId], relevant: &BTreeSet<ItemId>) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, item) in ranked.iter().enumerate() {
        if relevant.contains(item) {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    sum / relevant.len() as f64
}

/// NDCG@k with binary relevance.
pub fn ndcg_at_k(ranked: &[ItemId], relevant: &BTreeSet<ItemId>, k: usize) -> f64 {
    let dcg: f64 = ranked
        .iter()
        .take(k)
        .enumerate()
        .filter(|(_, i)| relevant.contains(*i))
        .map(|(pos, _)| 1.0 / ((pos + 2) as f64).log2())
        .sum();
    let ideal_hits = relevant.len().min(k);
    let idcg: f64 = (0..ideal_hits)
        .map(|pos| 1.0 / ((pos + 2) as f64).log2())
        .sum();
    if idcg == 0.0 {
        0.0
    } else {
        dcg / idcg
    }
}

/// Mean absolute error of rating predictions.
pub fn mae(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs.iter().map(|(p, a)| (p - a).abs()).sum::<f64>() / pairs.len() as f64
}

/// Root-mean-square error of rating predictions.
pub fn rmse(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    (pairs.iter().map(|(p, a)| (p - a).powi(2)).sum::<f64>() / pairs.len() as f64).sqrt()
}

/// Catalog coverage: fraction of the catalog that appears in at least
/// one of the recommendation lists.
pub fn coverage(lists: &[Vec<ItemId>], catalog_size: usize) -> f64 {
    if catalog_size == 0 {
        return 0.0;
    }
    let distinct: BTreeSet<ItemId> = lists.iter().flatten().copied().collect();
    distinct.len() as f64 / catalog_size as f64
}

/// Intra-list diversity: mean fraction of *distinct* labels (e.g.
/// categories) within each list. 1.0 = every item from a different
/// label.
pub fn intra_list_diversity(label_lists: &[Vec<String>]) -> f64 {
    if label_lists.is_empty() {
        return 0.0;
    }
    let per_list: f64 = label_lists
        .iter()
        .map(|labels| {
            if labels.is_empty() {
                return 0.0;
            }
            let distinct: BTreeSet<&String> = labels.iter().collect();
            distinct.len() as f64 / labels.len() as f64
        })
        .sum();
    per_list / label_lists.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(ids: &[u64]) -> Vec<ItemId> {
        ids.iter().map(|i| ItemId(*i)).collect()
    }

    fn relevant(ids: &[u64]) -> BTreeSet<ItemId> {
        ids.iter().map(|i| ItemId(*i)).collect()
    }

    #[test]
    fn precision_counts_hits_in_top_k() {
        let ranked = items(&[1, 2, 3, 4]);
        let rel = relevant(&[1, 3, 9]);
        assert!((precision_at_k(&ranked, &rel, 2) - 0.5).abs() < 1e-12);
        assert!((precision_at_k(&ranked, &rel, 4) - 0.5).abs() < 1e-12);
        assert_eq!(precision_at_k(&ranked, &rel, 0), 0.0);
        assert_eq!(precision_at_k(&[], &rel, 3), 0.0);
    }

    #[test]
    fn recall_normalizes_by_relevant_size() {
        let ranked = items(&[1, 2, 3]);
        let rel = relevant(&[1, 3, 9, 10]);
        assert!((recall_at_k(&ranked, &rel, 3) - 0.5).abs() < 1e-12);
        assert_eq!(recall_at_k(&ranked, &BTreeSet::new(), 3), 0.0);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let ranked = items(&[1, 2]);
        let rel = relevant(&[1]);
        let p = precision_at_k(&ranked, &rel, 2); // 0.5
        let r = recall_at_k(&ranked, &rel, 2); // 1.0
        let f1 = f1_at_k(&ranked, &rel, 2);
        assert!((f1 - 2.0 * p * r / (p + r)).abs() < 1e-12);
        assert_eq!(f1_at_k(&items(&[5]), &rel, 1), 0.0);
    }

    #[test]
    fn hit_rate_is_binary() {
        let rel = relevant(&[7]);
        assert_eq!(hit_at_k(&items(&[1, 7]), &rel, 2), 1.0);
        assert_eq!(hit_at_k(&items(&[1, 7]), &rel, 1), 0.0);
    }

    #[test]
    fn average_precision_rewards_early_hits() {
        let rel = relevant(&[1, 2]);
        let early = average_precision(&items(&[1, 2, 3]), &rel);
        let late = average_precision(&items(&[3, 1, 2]), &rel);
        assert!(early > late);
        assert!(
            (early - 1.0).abs() < 1e-12,
            "perfect ranking has AP 1: {early}"
        );
    }

    #[test]
    fn ndcg_is_one_for_ideal_ranking() {
        let rel = relevant(&[1, 2]);
        assert!((ndcg_at_k(&items(&[1, 2, 3]), &rel, 3) - 1.0).abs() < 1e-12);
        let worse = ndcg_at_k(&items(&[3, 1, 2]), &rel, 3);
        assert!(worse < 1.0 && worse > 0.0);
        assert_eq!(ndcg_at_k(&items(&[1]), &BTreeSet::new(), 3), 0.0);
    }

    #[test]
    fn mae_rmse_basics() {
        let pairs = [(1.0, 0.0), (0.0, 1.0)];
        assert!((mae(&pairs) - 1.0).abs() < 1e-12);
        assert!((rmse(&pairs) - 1.0).abs() < 1e-12);
        assert_eq!(mae(&[]), 0.0);
        assert_eq!(rmse(&[]), 0.0);
        // rmse penalizes outliers more
        let pairs = [(2.0, 0.0), (0.0, 0.0)];
        assert!(rmse(&pairs) > mae(&pairs));
    }

    #[test]
    fn coverage_counts_distinct_recommended_items() {
        let lists = vec![items(&[1, 2]), items(&[2, 3])];
        assert!((coverage(&lists, 10) - 0.3).abs() < 1e-12);
        assert_eq!(coverage(&lists, 0), 0.0);
    }

    #[test]
    fn diversity_rewards_distinct_labels() {
        let lists = vec![
            vec!["a".to_string(), "b".to_string()],
            vec!["a".to_string(), "a".to_string()],
        ];
        assert!((intra_list_diversity(&lists) - 0.75).abs() < 1e-12);
        assert_eq!(intra_list_diversity(&[]), 0.0);
    }
}
