//! # eval — metrics and experiment harness
//!
//! The measurement side of the reproduction:
//!
//! * [`metrics`] — precision/recall/F1/NDCG/hit-rate at k, MAE/RMSE,
//!   coverage and intra-list diversity;
//! * [`harness`] — store construction from behaviour histories, held-out
//!   splits, batch evaluation and printable [`harness::Table`]s;
//! * [`sweep`] — the parameter sweeps behind experiments E5 (profile
//!   convergence), E6 (sparsity & cold-start) and E10 (ablations).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod harness;
pub mod metrics;
pub mod sweep;

pub use harness::{build_store, evaluate, split_history, EvalResult, Table};
pub use sweep::{make_workload, SweepSpec, Workload};
