//! Offline evaluation harness and result tables.
//!
//! Builds a [`RecommendStore`] from a sampled behaviour history, runs a
//! set of recommenders against ground-truth relevance (or held-out
//! purchases), and renders the metric rows the EXPERIMENTS.md tables
//! report.

use crate::metrics;
use abcrm_core::learning::BehaviorKind;
use abcrm_core::profile::ConsumerId;
use abcrm_core::recommend::{QueryContext, Recommender};
use abcrm_core::store::RecommendStore;
use ecp::merchandise::{ItemId, Merchandise};
use ecp::protocol::Listing;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One behaviour-history event.
pub type HistoryEvent = (ConsumerId, Merchandise, BehaviorKind);

/// Build a store from listings and a behaviour history.
pub fn build_store(listings: &[Listing], history: &[HistoryEvent]) -> RecommendStore {
    let mut store = RecommendStore::new();
    for l in listings {
        store.upsert_item(l.item.clone());
    }
    for (consumer, item, kind) in history {
        store.record_event(*consumer, item.id, *kind);
    }
    store
}

/// Split a history: for each consumer, hold out their last
/// `holdout_per_user` purchase events as test relevance.
pub fn split_history(
    history: &[HistoryEvent],
    holdout_per_user: usize,
) -> (Vec<HistoryEvent>, BTreeMap<ConsumerId, BTreeSet<ItemId>>) {
    let mut train: Vec<HistoryEvent> = Vec::new();
    let mut remaining: BTreeMap<ConsumerId, usize> = BTreeMap::new();
    let mut test: BTreeMap<ConsumerId, BTreeSet<ItemId>> = BTreeMap::new();
    // walk in reverse so "last" purchases are held out first
    for (consumer, item, kind) in history.iter().rev() {
        let held = remaining.entry(*consumer).or_insert(0);
        if *kind == BehaviorKind::Purchase && *held < holdout_per_user {
            *held += 1;
            test.entry(*consumer).or_default().insert(item.id);
        } else {
            train.push((*consumer, item.clone(), *kind));
        }
    }
    train.reverse();
    // a held-out item that also appears in a retained event of the same
    // user would leak; drop those from the test set
    for (consumer, item, _) in &train {
        if let Some(set) = test.get_mut(consumer) {
            set.remove(&item.id);
        }
    }
    test.retain(|_, set| !set.is_empty());
    (train, test)
}

/// Scores of one recommender over a set of users.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalResult {
    /// Recommender name.
    pub name: String,
    /// Mean precision@k.
    pub precision: f64,
    /// Mean recall@k.
    pub recall: f64,
    /// Mean F1@k.
    pub f1: f64,
    /// Mean NDCG@k.
    pub ndcg: f64,
    /// Mean hit rate@k.
    pub hit_rate: f64,
    /// Catalog coverage across all lists.
    pub coverage: f64,
    /// Mean intra-list category diversity (1.0 = every recommended item
    /// from a different category).
    pub diversity: f64,
    /// Users that received at least one recommendation.
    pub served_users: usize,
    /// Users evaluated.
    pub total_users: usize,
}

/// Evaluate `recommenders` for every user in `relevance`, at cutoff `k`.
pub fn evaluate(
    store: &RecommendStore,
    relevance: &BTreeMap<ConsumerId, BTreeSet<ItemId>>,
    recommenders: &[&dyn Recommender],
    k: usize,
) -> Vec<EvalResult> {
    let catalog_size = store.catalog().len();
    recommenders
        .iter()
        .map(|rec| {
            let mut precision = 0.0;
            let mut recall = 0.0;
            let mut f1 = 0.0;
            let mut ndcg = 0.0;
            let mut hits = 0.0;
            let mut served = 0usize;
            let mut lists: Vec<Vec<ItemId>> = Vec::new();
            let mut label_lists: Vec<Vec<String>> = Vec::new();
            for (consumer, relevant) in relevance {
                let recs = rec.recommend(store, *consumer, &QueryContext::default(), k);
                let ranked: Vec<ItemId> = recs.iter().map(|r| r.item).collect();
                if !ranked.is_empty() {
                    served += 1;
                    label_lists.push(
                        ranked
                            .iter()
                            .filter_map(|i| {
                                store.catalog().get(*i).map(|m| m.category.category.clone())
                            })
                            .collect(),
                    );
                }
                precision += metrics::precision_at_k(&ranked, relevant, k);
                recall += metrics::recall_at_k(&ranked, relevant, k);
                f1 += metrics::f1_at_k(&ranked, relevant, k);
                ndcg += metrics::ndcg_at_k(&ranked, relevant, k);
                hits += metrics::hit_at_k(&ranked, relevant, k);
                lists.push(ranked);
            }
            let n = relevance.len().max(1) as f64;
            EvalResult {
                name: rec.name().to_string(),
                precision: precision / n,
                recall: recall / n,
                f1: f1 / n,
                ndcg: ndcg / n,
                hit_rate: hits / n,
                coverage: metrics::coverage(&lists, catalog_size),
                diversity: metrics::intra_list_diversity(&label_lists),
                served_users: served,
                total_users: relevance.len(),
            }
        })
        .collect()
}

/// A printable experiment table (one per EXPERIMENTS.md entry).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. `"E6: recommendation quality, sparsity=0.9"`).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Row values, one vec per row.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells stringified by the caller).
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.columns.len());
        self.rows.push(cells);
    }

    /// Append a row from eval results.
    pub fn push_eval(&mut self, r: &EvalResult) {
        self.push_row(vec![
            r.name.clone(),
            format!("{:.3}", r.precision),
            format!("{:.3}", r.recall),
            format!("{:.3}", r.f1),
            format!("{:.3}", r.ndcg),
            format!("{:.3}", r.hit_rate),
            format!("{:.3}", r.coverage),
            format!("{:.3}", r.diversity),
            format!("{}/{}", r.served_users, r.total_users),
        ]);
    }

    /// Standard headers matching [`Table::push_eval`].
    pub fn eval_columns() -> Vec<&'static str> {
        vec![
            "recommender",
            "prec@k",
            "rec@k",
            "f1@k",
            "ndcg@k",
            "hit@k",
            "coverage",
            "diversity",
            "served",
        ]
    }
}

impl Table {
    /// Render as a GitHub-flavoured markdown table (for EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.columns.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
            .collect();
        writeln!(f, "{}", header.join("  "))?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        )?;
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect();
            writeln!(f, "{}", line.join("  "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abcrm_core::recommend::{
        CfRecommender, ContentRecommender, HybridRecommender, TopSellerRecommender,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use workload::catalog::{generate_listings, CatalogSpec};
    use workload::population::{Population, PopulationSpec};
    use workload::taxonomy::{Taxonomy, TaxonomySpec};

    fn fixture() -> (Vec<Listing>, Population, Vec<HistoryEvent>) {
        let taxonomy = Taxonomy::generate(TaxonomySpec::default());
        let mut rng = StdRng::seed_from_u64(41);
        let listings = generate_listings(
            &taxonomy,
            &CatalogSpec {
                items: 60,
                ..CatalogSpec::default()
            },
            1,
            &mut rng,
        );
        let population = Population::generate(
            &PopulationSpec {
                consumers: 20,
                clusters: 2,
                ..PopulationSpec::default()
            },
            &listings,
            &mut rng,
        );
        let history = population.sample_history(&listings, 15, &mut rng);
        (listings, population, history)
    }

    #[test]
    fn build_store_ingests_everything() {
        let (listings, _, history) = fixture();
        let store = build_store(&listings, &history);
        assert_eq!(store.catalog().len(), 60);
        assert_eq!(store.consumer_count(), 20);
        assert!(!store.ratings().is_empty());
    }

    #[test]
    fn split_history_holds_out_purchases_without_leaks() {
        let (_, _, history) = fixture();
        let (train, test) = split_history(&history, 2);
        assert!(train.len() < history.len());
        assert!(!test.is_empty());
        for (consumer, held) in &test {
            for item in held {
                assert!(
                    !train.iter().any(|(c, m, _)| c == consumer && m.id == *item),
                    "held-out item leaked into training"
                );
            }
        }
    }

    #[test]
    fn evaluate_scores_all_recommenders_against_oracle() {
        let (listings, population, history) = fixture();
        let store = build_store(&listings, &history);
        let relevance: BTreeMap<ConsumerId, BTreeSet<ItemId>> = population
            .consumers
            .iter()
            .map(|c| {
                let owned = store.purchased_by(c.id);
                let rel: BTreeSet<ItemId> = population
                    .relevant_items(c.id, &listings, 0.15)
                    .into_iter()
                    .filter(|i| !owned.contains(i))
                    .collect();
                (c.id, rel)
            })
            .filter(|(_, rel)| !rel.is_empty())
            .collect();
        let hybrid = HybridRecommender::default();
        let cf = CfRecommender::default();
        let content = ContentRecommender;
        let top = TopSellerRecommender;
        let recs: Vec<&dyn Recommender> = vec![&hybrid, &cf, &content, &top];
        let results = evaluate(&store, &relevance, &recs, 10);
        assert_eq!(results.len(), 4);
        for r in &results {
            assert!(r.precision >= 0.0 && r.precision <= 1.0, "{r:?}");
            assert!(r.recall >= 0.0 && r.recall <= 1.0);
            assert_eq!(r.total_users, relevance.len());
        }
        // personalization must beat the unpersonalized baseline on this
        // clustered population (compare recall: precision is
        // ceiling-limited by the small per-user relevance remainder)
        let by_name: BTreeMap<&str, &EvalResult> =
            results.iter().map(|r| (r.name.as_str(), r)).collect();
        assert!(
            by_name["hybrid-abcrm"].recall >= by_name["top-seller"].recall,
            "hybrid {:.3} must not lose to top-seller {:.3} on recall",
            by_name["hybrid-abcrm"].recall,
            by_name["top-seller"].recall
        );
        assert!(
            by_name["hybrid-abcrm"].ndcg > by_name["top-seller"].ndcg,
            "hybrid {:.3} must rank better than top-seller {:.3} (ndcg)",
            by_name["hybrid-abcrm"].ndcg,
            by_name["top-seller"].ndcg
        );
        assert!(by_name["content-if"].recall > 0.0);
    }

    #[test]
    fn table_renders_aligned_text() {
        let mut t = Table::new("demo", &Table::eval_columns());
        t.push_eval(&EvalResult {
            name: "x".into(),
            precision: 0.5,
            recall: 0.25,
            f1: 0.333,
            ndcg: 0.4,
            hit_rate: 1.0,
            coverage: 0.2,
            diversity: 0.5,
            served_users: 3,
            total_users: 4,
        });
        let text = t.to_string();
        assert!(text.contains("== demo =="));
        assert!(text.contains("0.500"));
        assert!(text.contains("3/4"));
        let md = t.to_markdown();
        assert!(md.starts_with("### demo"));
        assert!(md.contains("| recommender |"));
        assert!(md.contains("| x | 0.500 |"));
        assert_eq!(md.matches("---|").count(), t.columns.len());
    }
}
