//! Parameter sweeps for the E5/E6/E10 experiments.
//!
//! Each sweep builds fresh workloads at every parameter point (same
//! seed ⇒ same workload), evaluates the configured recommenders, and
//! returns one [`Table`] ready to print — the exact series EXPERIMENTS.md
//! reports.

use crate::harness::{build_store, evaluate, EvalResult, Table};
use abcrm_core::learning::{BehaviorKind, LearnerConfig, ProfileLearner};
use abcrm_core::profile::{ConsumerId, Profile};
use abcrm_core::recommend::{
    CfRecommender, ContentRecommender, HybridRecommender, RandomRecommender, Recommender,
    TopSellerRecommender,
};
use abcrm_core::similarity::SimilarityConfig;
use ecp::merchandise::ItemId;
use ecp::protocol::Listing;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};
use workload::catalog::{generate_listings, CatalogSpec};
use workload::population::{Population, PopulationSpec};
use workload::taxonomy::{Taxonomy, TaxonomySpec};

/// Workload shape shared by the sweeps.
#[derive(Debug, Clone, Copy)]
pub struct SweepSpec {
    /// RNG seed.
    pub seed: u64,
    /// Catalog size.
    pub items: usize,
    /// Population size.
    pub consumers: usize,
    /// Taste clusters.
    pub clusters: usize,
    /// Relevance-set size as a catalog fraction.
    pub relevance_fraction: f64,
    /// Recommendation list length.
    pub k: usize,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            seed: 42,
            items: 80,
            consumers: 30,
            clusters: 3,
            relevance_fraction: 0.15,
            k: 10,
        }
    }
}

/// Generated workload bundle.
pub struct Workload {
    /// The catalog.
    pub listings: Vec<Listing>,
    /// The population with ground truth.
    pub population: Population,
}

/// Generate the workload for a spec.
pub fn make_workload(spec: &SweepSpec) -> Workload {
    let taxonomy = Taxonomy::generate(TaxonomySpec::default());
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let listings = generate_listings(
        &taxonomy,
        &CatalogSpec {
            items: spec.items,
            ..CatalogSpec::default()
        },
        1,
        &mut rng,
    );
    let population = Population::generate(
        &PopulationSpec {
            consumers: spec.consumers,
            clusters: spec.clusters,
            ..PopulationSpec::default()
        },
        &listings,
        &mut rng,
    );
    Workload {
        listings,
        population,
    }
}

/// Ground-truth relevance minus what each consumer already owns — a
/// recommender is only asked about items it is allowed to recommend.
pub fn oracle_relevance(
    w: &Workload,
    store: &abcrm_core::store::RecommendStore,
    fraction: f64,
) -> BTreeMap<ConsumerId, BTreeSet<ItemId>> {
    w.population
        .consumers
        .iter()
        .map(|c| {
            let owned = store.purchased_by(c.id);
            let rel: BTreeSet<ItemId> = w
                .population
                .relevant_items(c.id, &w.listings, fraction)
                .into_iter()
                .filter(|i| !owned.contains(i))
                .collect();
            (c.id, rel)
        })
        .filter(|(_, rel)| !rel.is_empty())
        .collect()
}

/// E6 (part 1): recommendation quality vs history density (the sparsity
/// axis). Returns one table; rows are `(events/consumer, recommender,
/// metrics…)`.
pub fn sparsity_sweep(spec: &SweepSpec, densities: &[usize]) -> Table {
    let mut table = Table::new("E6: quality vs history density (sparsity sweep)", &{
        let mut cols = vec!["events/user", "sparsity"];
        cols.extend(Table::eval_columns());
        cols
    });
    let w = make_workload(spec);
    for &density in densities {
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xD15EA5E);
        let history = w.population.sample_history(&w.listings, density, &mut rng);
        let store = build_store(&w.listings, &history);
        let relevance = oracle_relevance(&w, &store, spec.relevance_fraction);
        let sparsity = store.ratings().sparsity();
        let results = run_all(&store, &relevance, spec.k);
        for r in results {
            let mut row = vec![density.to_string(), format!("{sparsity:.3}")];
            row.extend(eval_cells(&r));
            table.push_row(row);
        }
    }
    table
}

/// E6 (part 2): cold-start. Evaluates quality for (a) brand-new users
/// with no history, and (b) established users against brand-new items
/// that nobody has rated.
pub fn cold_start_eval(spec: &SweepSpec, density: usize) -> Table {
    let mut table = Table::new("E6: cold-start scenarios", &{
        let mut cols = vec!["scenario"];
        cols.extend(Table::eval_columns());
        cols
    });
    let w = make_workload(spec);
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xC01D);
    // hold out the last 20% of consumers entirely (cold users)
    let n_warm = w.population.consumers.len() * 8 / 10;
    let warm: Vec<_> = w.population.consumers[..n_warm].to_vec();
    let cold: Vec<_> = w.population.consumers[n_warm..].to_vec();
    let warm_pop = Population { consumers: warm };
    let history = warm_pop.sample_history(&w.listings, density, &mut rng);
    let store = build_store(&w.listings, &history);

    // (a) cold users: relevance exists, but no history in the store
    let cold_relevance: BTreeMap<ConsumerId, BTreeSet<ItemId>> = cold
        .iter()
        .map(|c| {
            (
                c.id,
                w.population
                    .relevant_items(c.id, &w.listings, spec.relevance_fraction),
            )
        })
        .collect();
    for r in run_all(&store, &cold_relevance, spec.k) {
        let mut row = vec!["cold-user".to_string()];
        row.extend(eval_cells(&r));
        table.push_row(row);
    }

    // (b) cold items: the catalog gains a batch of brand-new items the
    // history never touched (standard held-out-items protocol). Content
    // information exists — ratings do not.
    let n_established = w.listings.len() * 8 / 10;
    let established = &w.listings[..n_established];
    let new_items = &w.listings[n_established..];
    let history = warm_pop.sample_history(established, density, &mut rng);
    let mut store = build_store(established, &history);
    for l in new_items {
        store.upsert_item(l.item.clone());
    }
    let warm_cold_item_relevance: BTreeMap<ConsumerId, BTreeSet<ItemId>> = warm_pop
        .consumers
        .iter()
        .map(|c| (c.id, w.population.relevant_items(c.id, new_items, 0.3)))
        .filter(|(_, rel)| !rel.is_empty())
        .collect();
    for r in run_all(&store, &warm_cold_item_relevance, spec.k) {
        let mut row = vec!["cold-item".to_string()];
        row.extend(eval_cells(&r));
        table.push_row(row);
    }
    table
}

/// Build a [`Profile`] from a namespaced (`category/sub/term`)
/// preference vector, e.g. to seed a declared registration profile.
pub fn profile_from_preference(preference: &ecp::terms::TermVector) -> Profile {
    let mut profile = Profile::new();
    for (namespaced, w) in preference.iter() {
        let mut parts = namespaced.splitn(3, '/');
        let (Some(cat), Some(sub), Some(term)) = (parts.next(), parts.next(), parts.next()) else {
            continue;
        };
        profile.category_mut(cat).sub_mut(sub).set(term, w);
    }
    profile
}

/// E5: learning-rate sensitivity — behaviour overriding a stale declared
/// profile.
///
/// §2.2 contrasts knowledge-based profiles ("questionnaires and
/// interviews") with behaviour-based ones. Here a consumer registered
/// with a *stale* declared profile (a different cluster's taste) and
/// then behaves according to their true taste. The Fig 4.5 rate α
/// governs how fast behavioural evidence outweighs the fixed prior.
/// (A pure Fig 4.5 stream from an *empty* profile is direction-wise
/// α-invariant — α scales all weights equally — so the prior is what
/// makes this experiment meaningful; the test suite pins both facts.)
pub fn alpha_convergence(spec: &SweepSpec, alphas: &[f64], events: usize) -> Table {
    let mut table = Table::new(
        "E5: behaviour vs stale declared profile — alignment with true taste",
        &["alpha", "25%", "50%", "75%", "100%"],
    );
    let w = make_workload(spec);
    let truth = w.population.consumers[0].clone();
    let stale = w
        .population
        .consumers
        .iter()
        .find(|c| c.cluster != truth.cluster)
        .expect("at least two clusters")
        .clone();
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xA1FA);
    let stream = Population {
        consumers: vec![truth.clone()],
    }
    .sample_history(&w.listings, events, &mut rng);
    let quarter = (stream.len() / 4).max(1);
    for &alpha in alphas {
        let learner = ProfileLearner::new(LearnerConfig {
            alpha,
            ..LearnerConfig::default()
        });
        // registration seeded the *wrong* (stale) declared interests
        let mut profile = profile_from_preference(&stale.preference);
        let mut checkpoints = Vec::new();
        for (i, (_, item, kind)) in stream.iter().enumerate() {
            let event = abcrm_core::learning::BehaviorEvent::new(
                *kind,
                item.category.clone(),
                item.terms.clone(),
            );
            learner.apply(&mut profile, &event);
            if (i + 1) % quarter == 0 && checkpoints.len() < 4 {
                checkpoints.push(profile.flatten().cosine(&truth.preference));
            }
        }
        while checkpoints.len() < 4 {
            checkpoints.push(*checkpoints.last().unwrap_or(&0.0));
        }
        table.push_row(vec![
            format!("{alpha:.2}"),
            format!("{:.3}", checkpoints[0]),
            format!("{:.3}", checkpoints[1]),
            format!("{:.3}", checkpoints[2]),
            format!("{:.3}", checkpoints[3]),
        ]);
    }
    table
}

/// E10: ablation of the similarity discard threshold and the hybrid
/// collaborative weight.
pub fn ablation(spec: &SweepSpec, density: usize) -> Table {
    let mut table = Table::new("E10: ablation (threshold, collaborative weight)", &{
        let mut cols = vec!["variant"];
        cols.extend(Table::eval_columns());
        cols
    });
    let w = make_workload(spec);
    let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xAB1A);
    let history = w.population.sample_history(&w.listings, density, &mut rng);
    let store = build_store(&w.listings, &history);
    let relevance = oracle_relevance(&w, &store, spec.relevance_fraction);

    let mut variants: Vec<(String, HybridRecommender)> = Vec::new();
    for threshold in [None, Some(2.0), Some(4.0), Some(8.0)] {
        let label = match threshold {
            None => "discard=off".to_string(),
            Some(t) => format!("discard={t}"),
        };
        variants.push((
            label,
            HybridRecommender {
                similarity: SimilarityConfig {
                    discard_threshold: threshold,
                    ..SimilarityConfig::default()
                },
                ..HybridRecommender::default()
            },
        ));
    }
    for cw in [0.0, 0.3, 0.7, 1.0] {
        variants.push((
            format!("cw={cw}"),
            HybridRecommender {
                collaborative_weight: cw,
                ..HybridRecommender::default()
            },
        ));
    }
    for (label, rec) in &variants {
        let results = evaluate(&store, &relevance, &[rec as &dyn Recommender], spec.k);
        let mut row = vec![label.clone()];
        row.extend(eval_cells(&results[0]));
        table.push_row(row);
    }
    table
}

/// E6 (part 3): rating-prediction accuracy. Per-user, the last few
/// observed ratings are held out; user-kNN predicts them; MAE/RMSE are
/// reported against the held-out implied ratings, across the density
/// axis.
pub fn prediction_accuracy(spec: &SweepSpec, densities: &[usize]) -> Table {
    let mut table = Table::new(
        "E6: rating prediction accuracy (user-kNN) vs density",
        &[
            "events/user",
            "sparsity",
            "pairs",
            "MAE",
            "RMSE",
            "unpredictable",
        ],
    );
    let w = make_workload(spec);
    for &density in densities {
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xACC);
        let history = w.population.sample_history(&w.listings, density, &mut rng);
        let (train, test) = crate::harness::split_history(&history, 2);
        let store = build_store(&w.listings, &train);
        let mut pairs: Vec<(f64, f64)> = Vec::new();
        let mut unpredictable = 0usize;
        for (consumer, items) in &test {
            for item in items {
                // held-out purchases imply rating 1.0
                let actual = 1.0;
                match store.ratings().predict(*consumer, *item, 20, 2) {
                    Some(p) => pairs.push((p, actual)),
                    None => unpredictable += 1,
                }
            }
        }
        table.push_row(vec![
            density.to_string(),
            format!("{:.3}", store.ratings().sparsity()),
            pairs.len().to_string(),
            format!("{:.3}", crate::metrics::mae(&pairs)),
            format!("{:.3}", crate::metrics::rmse(&pairs)),
            unpredictable.to_string(),
        ]);
    }
    table
}

/// Run the standard recommender set.
pub fn run_all(
    store: &abcrm_core::store::RecommendStore,
    relevance: &BTreeMap<ConsumerId, BTreeSet<ItemId>>,
    k: usize,
) -> Vec<EvalResult> {
    let hybrid = HybridRecommender::default();
    let cf = CfRecommender::default();
    let item_cf = abcrm_core::itemcf::ItemCfRecommender::default();
    let content = ContentRecommender;
    let top = TopSellerRecommender;
    let random = RandomRecommender { seed: 7 };
    let recs: Vec<&dyn Recommender> = vec![&hybrid, &cf, &item_cf, &content, &top, &random];
    evaluate(store, relevance, &recs, k)
}

fn eval_cells(r: &EvalResult) -> Vec<String> {
    vec![
        r.name.clone(),
        format!("{:.3}", r.precision),
        format!("{:.3}", r.recall),
        format!("{:.3}", r.f1),
        format!("{:.3}", r.ndcg),
        format!("{:.3}", r.hit_rate),
        format!("{:.3}", r.coverage),
        format!("{:.3}", r.diversity),
        format!("{}/{}", r.served_users, r.total_users),
    ]
}

/// Mark a purchase-like behaviour (helper shared by benches).
pub fn is_strong(kind: BehaviorKind) -> bool {
    matches!(kind, BehaviorKind::Purchase | BehaviorKind::AuctionWin)
}

/// Multi-seed replication: run the standard recommender comparison at a
/// fixed density across several seeds and report mean ± sample std-dev
/// per recommender — the confidence companion to the single-seed E6
/// tables.
pub fn replicated_quality(spec: &SweepSpec, seeds: &[u64], density: usize) -> Table {
    let mut table = Table::new(
        format!(
            "E6: replicated quality over {} seeds (density {density})",
            seeds.len()
        ),
        &[
            "recommender",
            "f1 mean",
            "f1 std",
            "recall mean",
            "recall std",
            "ndcg mean",
        ],
    );
    type MetricSamples = (Vec<f64>, Vec<f64>, Vec<f64>); // (f1, recall, ndcg)
    let mut samples: BTreeMap<String, MetricSamples> = BTreeMap::new();
    for &seed in seeds {
        let run_spec = SweepSpec { seed, ..*spec };
        let w = make_workload(&run_spec);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let history = w.population.sample_history(&w.listings, density, &mut rng);
        let store = build_store(&w.listings, &history);
        let relevance = oracle_relevance(&w, &store, spec.relevance_fraction);
        for r in run_all(&store, &relevance, spec.k) {
            let entry = samples.entry(r.name).or_default();
            entry.0.push(r.f1);
            entry.1.push(r.recall);
            entry.2.push(r.ndcg);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let std = |v: &[f64]| {
        if v.len() < 2 {
            return 0.0;
        }
        let m = mean(v);
        (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (v.len() - 1) as f64).sqrt()
    };
    for (name, (f1s, recalls, ndcgs)) in samples {
        table.push_row(vec![
            name,
            format!("{:.3}", mean(&f1s)),
            format!("{:.3}", std(&f1s)),
            format!("{:.3}", mean(&recalls)),
            format!("{:.3}", std(&recalls)),
            format!("{:.3}", mean(&ndcgs)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> SweepSpec {
        SweepSpec {
            items: 40,
            consumers: 12,
            ..SweepSpec::default()
        }
    }

    #[test]
    fn sparsity_sweep_produces_rows_per_density_and_recommender() {
        let table = sparsity_sweep(&small_spec(), &[3, 10]);
        assert_eq!(table.rows.len(), 2 * 6);
        // denser history must not be sparser
        let s_low: f64 = table.rows[0][1].parse().unwrap();
        let s_high: f64 = table.rows[5][1].parse().unwrap();
        assert!(
            s_high <= s_low,
            "more events/user lowers sparsity: {s_low} -> {s_high}"
        );
    }

    #[test]
    fn denser_history_helps_the_hybrid_and_cf() {
        // precision across densities is ceiling-limited (purchased items
        // leave the relevance set), so compare recall@k
        let table = sparsity_sweep(&small_spec(), &[1, 20]);
        let recall_of = |name: &str, row_block: usize| -> f64 {
            table
                .rows
                .iter()
                .filter(|r| r[2] == name)
                .nth(row_block)
                .map(|r| r[4].parse().unwrap())
                .unwrap()
        };
        let hybrid_sparse = recall_of("hybrid-abcrm", 0);
        let hybrid_dense = recall_of("hybrid-abcrm", 1);
        assert!(
            hybrid_dense >= hybrid_sparse,
            "hybrid recall must grow with data: {hybrid_sparse} -> {hybrid_dense}"
        );
        let cf_sparse = recall_of("cf-knn", 0);
        let cf_dense = recall_of("cf-knn", 1);
        assert!(
            cf_dense > cf_sparse,
            "CF must recover as sparsity falls (§2.3): {cf_sparse} -> {cf_dense}"
        );
        // and the hybrid dominates the unpersonalized baseline when dense
        let top_dense = recall_of("top-seller", 1);
        assert!(hybrid_dense > top_dense);
    }

    #[test]
    fn cold_start_table_shows_cf_failing_on_cold_items() {
        let table = cold_start_eval(&small_spec(), 12);
        let cf_cold_item: Vec<&Vec<String>> = table
            .rows
            .iter()
            .filter(|r| r[0] == "cold-item" && r[1] == "cf-knn")
            .collect();
        assert_eq!(cf_cold_item.len(), 1);
        let prec: f64 = cf_cold_item[0][2].parse().unwrap();
        assert_eq!(prec, 0.0, "CF cannot hit unrated items (§2.3 cold-start)");
        // content-based IF must do better than CF on cold items
        let if_cold: f64 = table
            .rows
            .iter()
            .find(|r| r[0] == "cold-item" && r[1] == "content-if")
            .unwrap()[2]
            .parse()
            .unwrap();
        assert!(if_cold >= prec);
    }

    #[test]
    fn alpha_convergence_improves_with_stream_position() {
        let table = alpha_convergence(&small_spec(), &[0.3], 40);
        let row = &table.rows[0];
        let q1: f64 = row[1].parse().unwrap();
        let q4: f64 = row[4].parse().unwrap();
        assert!(
            q4 >= q1,
            "profile must converge toward the truth: {q1} -> {q4}"
        );
        assert!(q4 > 0.3, "final alignment should be substantial: {q4}");
    }

    #[test]
    fn higher_alpha_overrides_the_stale_prior_faster() {
        let table = alpha_convergence(&small_spec(), &[0.01, 0.3], 40);
        // by mid-stream, a healthy alpha has moved well past the stale
        // prior while a tiny alpha is still anchored to it
        let slow_mid: f64 = table.rows[0][2].parse().unwrap();
        let fast_mid: f64 = table.rows[1][2].parse().unwrap();
        assert!(
            fast_mid > slow_mid + 0.05,
            "alpha=0.3 must clearly outpace alpha=0.01 by 50%: {fast_mid} vs {slow_mid}"
        );
    }

    #[test]
    fn fig_4_5_updates_from_empty_profile_are_direction_invariant_in_alpha() {
        // mathematical property the E5 design leans on: without a prior,
        // alpha scales every weight equally, so the flattened direction
        // (and hence cosine similarity) is identical across alphas
        use abcrm_core::learning::{BehaviorEvent, BehaviorKind};
        use ecp::merchandise::CategoryPath;
        use ecp::terms::TermVector;
        let events: Vec<BehaviorEvent> = (0..20)
            .map(|i| {
                BehaviorEvent::new(
                    if i % 2 == 0 {
                        BehaviorKind::Purchase
                    } else {
                        BehaviorKind::Query
                    },
                    CategoryPath::new("c", "s"),
                    TermVector::from_pairs([(format!("t{}", i % 5), 1.0 + i as f64 * 0.1)]),
                )
            })
            .collect();
        let mut flats = Vec::new();
        for alpha in [0.1, 0.9] {
            let learner = ProfileLearner::new(LearnerConfig {
                alpha,
                ..LearnerConfig::default()
            });
            let mut p = Profile::new();
            learner.apply_all(&mut p, &events);
            flats.push(p.flatten());
        }
        assert!(
            (flats[0].cosine(&flats[1]) - 1.0).abs() < 1e-9,
            "directions must coincide regardless of alpha"
        );
    }

    #[test]
    fn prediction_accuracy_improves_with_density() {
        let table = prediction_accuracy(&small_spec(), &[3, 25]);
        assert_eq!(table.rows.len(), 2);
        let unpredictable_sparse: usize = table.rows[0][5].parse().unwrap();
        let unpredictable_dense: usize = table.rows[1][5].parse().unwrap();
        // a denser matrix leaves fewer unpredictable holdouts (the §2.3
        // sparsity story in MAE form)
        assert!(
            unpredictable_dense <= unpredictable_sparse,
            "{unpredictable_sparse} -> {unpredictable_dense}"
        );
        let pairs_dense: usize = table.rows[1][2].parse().unwrap();
        assert!(pairs_dense > 0, "dense run must predict something");
        let mae_dense: f64 = table.rows[1][3].parse().unwrap();
        assert!(
            mae_dense < 0.6,
            "predictions should beat random guessing: {mae_dense}"
        );
    }

    #[test]
    fn replication_reports_stable_rankings() {
        let table = replicated_quality(&small_spec(), &[1, 2, 3], 10);
        assert_eq!(table.rows.len(), 6, "one row per recommender");
        let row = |name: &str| {
            table
                .rows
                .iter()
                .find(|r| r[0] == name)
                .unwrap_or_else(|| panic!("row {name} missing"))
        };
        let hybrid_f1: f64 = row("hybrid-abcrm")[1].parse().unwrap();
        let random_f1: f64 = row("random")[1].parse().unwrap();
        assert!(
            hybrid_f1 > random_f1 + 0.1,
            "hybrid must dominate random across seeds: {hybrid_f1} vs {random_f1}"
        );
        // std-devs are finite, non-negative numbers
        for r in &table.rows {
            let std: f64 = r[2].parse().unwrap();
            assert!(std >= 0.0 && std.is_finite());
        }
    }

    #[test]
    fn ablation_produces_all_variants() {
        let table = ablation(&small_spec(), 8);
        assert_eq!(table.rows.len(), 8);
        let labels: Vec<&str> = table.rows.iter().map(|r| r[0].as_str()).collect();
        assert!(labels.contains(&"discard=off"));
        assert!(labels.contains(&"cw=0"));
    }
}
