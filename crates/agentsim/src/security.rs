//! Travel permits: authentication of returning mobile agents.
//!
//! Paper §4.1, principle 2: *"MBA must authenticate itself to BSMA, when
//! MBA finish its work and migrate back to the recommendation mechanism"*,
//! and principle 5: *"When MBA passes the authentication MBA will be able
//! to migrate to marketplace to do its task."*
//!
//! The home host issues a single-use [`TravelPermit`] when it dispatches a
//! mobile agent. The permit is a MAC over (agent id, nonce) keyed with the
//! host's secret. On return the host verifies the MAC and burns the nonce,
//! so a forged or replayed capsule is rejected
//! ([`crate::error::PlatformError::AuthenticationFailed`]). The paper's
//! future-work item 4 asks for a hardened return-path authentication; the
//! nonce + keyed-MAC design implements it.
//!
//! The MAC is a keyed FNV-1a construction — *not* cryptographically strong,
//! but structurally faithful: it exercises issue/verify/replay-burn logic
//! without pulling a crypto dependency into the workspace.

use crate::ids::AgentId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A single-use credential carried by a dispatched mobile agent and
/// checked when it returns home.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TravelPermit {
    /// Agent the permit was issued to.
    pub agent: AgentId,
    /// Single-use nonce.
    pub nonce: u64,
    /// Keyed MAC over `(agent, nonce)`.
    pub mac: u64,
}

/// Per-host permit issuer and verifier.
#[derive(Debug)]
pub struct Authenticator {
    secret: u64,
    next_nonce: u64,
    /// Outstanding nonce per travelling agent. Present = the host expects
    /// this agent back and will demand a valid permit.
    outstanding: HashMap<AgentId, u64>,
    /// Count of rejected authentications, for diagnostics and benches.
    rejections: u64,
}

fn mac(secret: u64, agent: AgentId, nonce: u64) -> u64 {
    // Keyed FNV-1a over the fields.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ secret;
    for chunk in [agent.0, nonce, secret.rotate_left(17)] {
        for byte in chunk.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

impl Authenticator {
    /// Create an authenticator with the given host secret.
    pub fn new(secret: u64) -> Self {
        Authenticator {
            secret,
            next_nonce: 1,
            outstanding: HashMap::new(),
            rejections: 0,
        }
    }

    /// Issue a permit for `agent` about to be dispatched. Any previous
    /// outstanding permit for the same agent is superseded.
    pub fn issue(&mut self, agent: AgentId) -> TravelPermit {
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        self.outstanding.insert(agent, nonce);
        TravelPermit {
            agent,
            nonce,
            mac: mac(self.secret, agent, nonce),
        }
    }

    /// Whether the host expects `agent` to return (an unburned permit is
    /// outstanding).
    pub fn expects(&self, agent: AgentId) -> bool {
        self.outstanding.contains_key(&agent)
    }

    /// Verify a permit presented by a returning agent and burn its nonce.
    ///
    /// Returns `false` (and counts a rejection) if the permit is for a
    /// different agent, carries a wrong MAC, or its nonce was already used.
    pub fn verify(&mut self, agent: AgentId, permit: &TravelPermit) -> bool {
        let valid = permit.agent == agent
            && self.outstanding.get(&agent) == Some(&permit.nonce)
            && permit.mac == mac(self.secret, permit.agent, permit.nonce);
        if valid {
            self.outstanding.remove(&agent);
        } else {
            self.rejections += 1;
        }
        valid
    }

    /// Number of failed verification attempts so far.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Forget the expectation for `agent` (e.g. the agent was declared
    /// lost after a timeout).
    pub fn cancel(&mut self, agent: AgentId) {
        self.outstanding.remove(&agent);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issued_permit_verifies_once() {
        let mut auth = Authenticator::new(42);
        let permit = auth.issue(AgentId(5));
        assert!(auth.expects(AgentId(5)));
        assert!(auth.verify(AgentId(5), &permit));
        assert!(!auth.expects(AgentId(5)));
    }

    #[test]
    fn replayed_permit_is_rejected() {
        let mut auth = Authenticator::new(42);
        let permit = auth.issue(AgentId(5));
        assert!(auth.verify(AgentId(5), &permit));
        assert!(
            !auth.verify(AgentId(5), &permit),
            "nonce must be single-use"
        );
        assert_eq!(auth.rejections(), 1);
    }

    #[test]
    fn tampered_mac_is_rejected() {
        let mut auth = Authenticator::new(42);
        let mut permit = auth.issue(AgentId(5));
        permit.mac ^= 1;
        assert!(!auth.verify(AgentId(5), &permit));
    }

    #[test]
    fn permit_for_other_agent_is_rejected() {
        let mut auth = Authenticator::new(42);
        let permit = auth.issue(AgentId(5));
        assert!(!auth.verify(AgentId(6), &permit));
        // the original permit is still outstanding and usable
        assert!(auth.verify(AgentId(5), &permit));
    }

    #[test]
    fn permit_from_different_secret_is_rejected() {
        let mut issuer = Authenticator::new(1);
        let mut verifier = Authenticator::new(2);
        let permit = issuer.issue(AgentId(5));
        // make verifier expect the agent with the same nonce
        verifier.outstanding.insert(AgentId(5), permit.nonce);
        assert!(!verifier.verify(AgentId(5), &permit));
    }

    #[test]
    fn reissue_supersedes_previous_nonce() {
        let mut auth = Authenticator::new(42);
        let old = auth.issue(AgentId(5));
        let new = auth.issue(AgentId(5));
        assert!(
            !auth.verify(AgentId(5), &old),
            "superseded permit must fail"
        );
        assert!(auth.verify(AgentId(5), &new));
    }

    #[test]
    fn cancel_clears_expectation() {
        let mut auth = Authenticator::new(42);
        let permit = auth.issue(AgentId(5));
        auth.cancel(AgentId(5));
        assert!(!auth.expects(AgentId(5)));
        assert!(!auth.verify(AgentId(5), &permit));
    }
}
