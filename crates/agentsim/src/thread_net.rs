//! Thread-backed runtime: one OS thread per host, crossbeam channels as
//! the network.
//!
//! The same [`Agent`] implementations that run on the deterministic
//! [`crate::sim::SimWorld`] run unchanged here on real concurrency. This
//! runtime exists to demonstrate that the platform API is runtime-agnostic
//! (and to catch accidental determinism assumptions in agent code); all
//! benchmarks use the DES world because wall-clock interleavings are not
//! reproducible.
//!
//! Unsupported relative to the DES world: link latency/loss modelling
//! (channels deliver as fast as the OS schedules) — timers are honoured via
//! real `thread::sleep`.

use crate::agent::{Action, Agent, AgentCapsule, AgentRegistry, Ctx, DurablePolicy, FaultCounter};
use crate::chaos::ChaosKnobs;
use crate::clock::SimTime;
use crate::durable::{DurabilityConfig, DurableStore};
use crate::error::{PlatformError, Result};
use crate::ids::{AgentId, HostId, MessageId};
use crate::intern::InternedStr;
use crate::message::Message;
use crate::metrics::Metrics;
use crate::overload::{deadline_expired, EnqueueVerdict, MailboxConfig, MailboxState};
use crate::security::{Authenticator, TravelPermit};
use crate::storage::DeactivatedStore;
use crate::supervise::{RestoreDecision, SupervisionConfig, Supervisor, Verdict};
use crate::telemetry::{HopKind, SpanEventKind, Telemetry, TraceCtx};
use crate::trace::Trace;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

enum Envelope {
    Deliver(Message),
    Arrive(AgentCapsule),
    Create {
        id: AgentId,
        agent: Box<dyn Agent>,
        /// Born by `clone_self` rather than `create`: the landing worker
        /// runs `on_clone` instead of `on_creation`.
        cloned: bool,
    },
    Timer {
        agent: AgentId,
        tag: u64,
        trace: Option<TraceCtx>,
        deadline: Option<SimTime>,
    },
    AdminDeactivate(AgentId),
    AdminActivate(AgentId),
    AdminDispose(AgentId),
    AdminRetract {
        agent: AgentId,
        to: HostId,
    },
    /// Chaos: wipe the host's agents and stores (the crash itself; the
    /// unreachability flag lives in [`Shared::chaos`]). Broadcast to every
    /// worker of the host.
    AdminCrash,
    /// Chaos: run the durable recovery pass after a restart (no-op without
    /// durability). Broadcast to every worker of the host.
    AdminRestart,
    /// Chaos: the host's hang cleared (heal or supervisor bounce) — replay
    /// every stalled envelope. Broadcast to every worker of the host.
    AdminResume,
    Shutdown,
}

impl Envelope {
    /// The agent that decides which worker of a host handles this
    /// envelope; `None` means broadcast to every worker.
    fn routing_agent(&self) -> Option<AgentId> {
        match self {
            Envelope::Deliver(msg) => Some(msg.to),
            Envelope::Arrive(capsule) => Some(capsule.id),
            Envelope::Create { id, .. } => Some(*id),
            Envelope::Timer { agent, .. } => Some(*agent),
            Envelope::AdminDeactivate(a)
            | Envelope::AdminActivate(a)
            | Envelope::AdminDispose(a) => Some(*a),
            Envelope::AdminRetract { agent, .. } => Some(*agent),
            Envelope::AdminCrash
            | Envelope::AdminRestart
            | Envelope::AdminResume
            | Envelope::Shutdown => None,
        }
    }

    /// A per-worker copy of a broadcast envelope. Only the unit-like
    /// admin broadcasts can be duplicated (agent-carrying envelopes are
    /// single-destination by construction).
    fn broadcast_copy(&self) -> Option<Envelope> {
        match self {
            Envelope::AdminCrash => Some(Envelope::AdminCrash),
            Envelope::AdminRestart => Some(Envelope::AdminRestart),
            Envelope::AdminResume => Some(Envelope::AdminResume),
            _ => None,
        }
    }
}

struct Shared {
    /// One sender per worker thread of each host. Envelopes route to
    /// `shard_of(routing_agent, workers)`; broadcasts go to every worker.
    routes: Mutex<HashMap<HostId, Vec<Sender<Envelope>>>>,
    /// Worker threads per host (1 = the classic one-thread-per-host mode).
    workers: usize,
    locations: Mutex<HashMap<AgentId, HostId>>,
    homes: Mutex<HashMap<AgentId, HostId>>,
    in_flight: AtomicI64,
    next_agent_id: AtomicU64,
    next_msg_id: AtomicU64,
    registry: AgentRegistry,
    trace: Mutex<Trace>,
    metrics: Mutex<Metrics>,
    epoch: Instant,
    /// Live fault switches (same vocabulary as the DES chaos plan).
    chaos: Mutex<ChaosKnobs>,
    /// Fast path: skip all chaos checks until a knob is first touched.
    chaos_on: AtomicBool,
    /// Dedicated RNG for chaos decisions, separate from the per-host
    /// agent RNGs so fault injection never perturbs agent randomness.
    chaos_rng: Mutex<StdRng>,
    /// Request tracing + latency registry (same engine as the DES world).
    telemetry: Mutex<Telemetry>,
    /// Fast path: skip telemetry locking entirely until tracing is enabled.
    telemetry_on: AtomicBool,
    /// Per-agent mailbox bookkeeping. Always present: with no configured
    /// bound it only tracks depths, which feed the stall diagnostics of
    /// [`ThreadWorld::run_until_idle`].
    mailbox: Mutex<MailboxState>,
    /// Messages held for deactivated agents, per agent (diagnostics).
    parked: Mutex<HashMap<AgentId, usize>>,
    /// Durability configuration; each worker of each host carries its own
    /// [`DurableStore`] for the agents it owns. `None` = durability off.
    durability: Option<DurabilityConfig>,
    /// Self-healing supervision policy engine, shared between the API
    /// surface (crash/hang observations) and the dedicated supervisor
    /// thread. `None` = supervision off (no extra thread, zero cost).
    supervision: Option<Mutex<Supervisor>>,
    /// Tells the supervisor thread to exit at shutdown.
    supervisor_stop: AtomicBool,
}

impl Shared {
    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_micros() as u64)
    }

    fn tracing(&self) -> bool {
        self.telemetry_on.load(Ordering::Relaxed)
    }

    /// Open a child span under `parent`, if tracing is on and the hop has
    /// a parent context at all.
    fn child_span(
        &self,
        parent: Option<TraceCtx>,
        kind: HopKind,
        name: InternedStr,
        agent: Option<AgentId>,
        host: Option<HostId>,
    ) -> Option<TraceCtx> {
        let p = parent?;
        let now = self.now();
        Some(self.telemetry.lock().child(p, kind, name, agent, host, now))
    }

    /// Emit an event on the span `tc` names, if any.
    fn span_event(&self, tc: Option<TraceCtx>, kind: SpanEventKind, label: impl Into<String>) {
        if let Some(tc) = tc {
            let now = self.now();
            self.telemetry.lock().event(tc.span_id, kind, label, now);
        }
    }

    /// Close the span `tc` names; returns its sim-time duration in µs.
    fn end_span(&self, tc: Option<TraceCtx>) -> Option<u64> {
        let tc = tc?;
        let now = self.now();
        self.telemetry.lock().end(tc.span_id, now)
    }

    /// Record a dead-lettered message in the registry and, when the hop is
    /// traced, annotate and close its span.
    fn dead_letter(&self, kind: &str, tc: Option<TraceCtx>, label: String) {
        let now = self.now();
        let mut t = self.telemetry.lock();
        t.registry_mut().dead_letter(kind);
        if let Some(tc) = tc {
            t.event(tc.span_id, SpanEventKind::DeadLetter, label, now);
            t.end(tc.span_id, now);
        }
    }

    /// Which worker of a host owns `agent`. Stable for an agent's whole
    /// lifetime, so per-worker state (store, permits, authenticator)
    /// always sees the same agent on the same thread.
    fn worker_of(&self, agent: AgentId) -> usize {
        crate::ids::shard_of(agent, self.workers)
    }

    fn send_envelope(&self, host: HostId, env: Envelope) -> bool {
        let routes = self.routes.lock();
        if let Some(txs) = routes.get(&host) {
            let worker = match env.routing_agent() {
                Some(agent) => self.worker_of(agent),
                None => {
                    // Broadcast (crash/restart): every worker handles its
                    // own slice of the host.
                    let mut ok = false;
                    for tx in txs.iter() {
                        let Some(copy) = env.broadcast_copy() else {
                            debug_assert!(false, "non-broadcastable envelope routed as broadcast");
                            return false;
                        };
                        self.in_flight.fetch_add(1, Ordering::SeqCst);
                        if tx.send(copy).is_ok() {
                            ok = true;
                        } else {
                            self.in_flight.fetch_sub(1, Ordering::SeqCst);
                        }
                    }
                    return ok;
                }
            };
            self.in_flight.fetch_add(1, Ordering::SeqCst);
            if txs[worker].send(env).is_ok() {
                return true;
            }
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
        false
    }

    /// Route a delivery through the bounded mailbox. Every path ending in
    /// [`Envelope::Deliver`] funnels through here — agent sends, external
    /// ingress, chaos duplicates and activation replays — so the bound and
    /// the depth gauge see all traffic.
    fn enqueue_deliver(&self, dest: HostId, msg: Message) -> bool {
        let verdict = self.mailbox.lock().on_enqueue(msg.to, msg.id);
        let sent = match verdict {
            EnqueueVerdict::Admit => self.send_envelope(dest, Envelope::Deliver(msg)),
            EnqueueVerdict::AdmitEvictingOldest => {
                self.metrics.lock().mailbox_rejections += 1;
                self.trace.lock().record(
                    self.now(),
                    msg.from,
                    format!("mailbox full at {}: oldest queued message evicted", msg.to),
                );
                self.send_envelope(dest, Envelope::Deliver(msg))
            }
            EnqueueVerdict::Reject => {
                self.metrics.lock().mailbox_rejections += 1;
                self.span_event(
                    msg.trace,
                    SpanEventKind::Shed,
                    format!("shed: mailbox full at {}", msg.to),
                );
                self.end_span(msg.trace);
                self.trace.lock().record(
                    self.now(),
                    msg.from,
                    format!("mailbox full at {}: {} rejected", msg.to, msg.kind),
                );
                true // handled by dropping; the route itself is fine
            }
            EnqueueVerdict::Defer => {
                self.span_event(
                    msg.trace,
                    SpanEventKind::Note,
                    format!("mailbox full at {}: delivery deferred", msg.to),
                );
                self.mailbox.lock().defer(msg);
                true
            }
        };
        if self.tracing() {
            let max_depth = self.mailbox.lock().max_depth_seen();
            self.telemetry
                .lock()
                .registry_mut()
                .set_gauge("overload.mailbox_depth_max", max_depth as f64);
        }
        sent
    }
}

/// Builder for a [`ThreadWorld`].
pub struct ThreadWorldBuilder {
    seed: u64,
    registry: AgentRegistry,
    host_names: Vec<String>,
    telemetry: bool,
    mailbox: Option<MailboxConfig>,
    workers: usize,
    durability: Option<DurabilityConfig>,
    supervision: Option<SupervisionConfig>,
}

impl ThreadWorldBuilder {
    /// Start building a thread world; `seed` feeds each host's RNG.
    pub fn new(seed: u64) -> Self {
        ThreadWorldBuilder {
            seed,
            registry: AgentRegistry::new(),
            host_names: Vec::new(),
            telemetry: false,
            mailbox: None,
            workers: 1,
            durability: None,
            supervision: None,
        }
    }

    /// Give every host worker a WAL-backed [`DurableStore`] so
    /// [`ThreadWorld::restart_host`] recovers journalled agents, purchase
    /// records and profile deltas. Off by default (zero cost).
    pub fn durability(&mut self, cfg: DurabilityConfig) -> &mut Self {
        self.durability = Some(cfg);
        self
    }

    /// Turn on the self-healing supervision layer: a dedicated supervisor
    /// thread runs the failure detector over wall time, automatically
    /// restarting crashed hosts (durable recovery on the respawned
    /// workers), bouncing hung hosts, and quarantining crash-looping
    /// agents. Off by default (no extra thread, byte-identical behaviour,
    /// all supervision counters zero).
    pub fn supervision(&mut self, cfg: SupervisionConfig) -> &mut Self {
        self.supervision = Some(cfg);
        self
    }

    /// Run each host on `n` worker threads instead of one (clamped to at
    /// least 1). Agents are sharded across a host's workers by id hash
    /// ([`crate::ids::shard_of`]), so each agent always runs on the same
    /// thread; envelopes route by their target agent. The default of 1 is
    /// exactly the classic one-thread-per-host runtime.
    pub fn workers(&mut self, n: usize) -> &mut Self {
        self.workers = n.max(1);
        self
    }

    /// Bound every agent's mailbox to `config.capacity` queued messages,
    /// applying `config.policy` past the bound. Off by default (unbounded
    /// channels, byte-identical to the pre-overload behaviour).
    pub fn mailbox(&mut self, config: MailboxConfig) -> &mut Self {
        self.mailbox = Some(config);
        self
    }

    /// Turn on request tracing and the latency registry (off by default;
    /// when off the runtime takes a lock-free fast path).
    pub fn enable_telemetry(&mut self) -> &mut Self {
        self.telemetry = true;
        self
    }

    /// Register an agent factory (same semantics as
    /// [`AgentRegistry::register_serde`]).
    pub fn register_serde<A>(&mut self, agent_type: &str) -> &mut Self
    where
        A: Agent + serde::de::DeserializeOwned + 'static,
    {
        self.registry.register_serde::<A>(agent_type);
        self
    }

    /// Direct registry access (for bulk registration helpers).
    pub fn registry_mut(&mut self) -> &mut AgentRegistry {
        &mut self.registry
    }

    /// Declare a host; ids are assigned in declaration order starting at 1.
    pub fn add_host(&mut self, name: impl Into<String>) -> HostId {
        self.host_names.push(name.into());
        HostId(self.host_names.len() as u32)
    }

    /// Spawn the worker threads (one per host per configured worker) and
    /// return the running world.
    pub fn start(self) -> ThreadWorld {
        let shared = Arc::new(Shared {
            routes: Mutex::new(HashMap::new()),
            workers: self.workers,
            locations: Mutex::new(HashMap::new()),
            homes: Mutex::new(HashMap::new()),
            in_flight: AtomicI64::new(0),
            next_agent_id: AtomicU64::new(1),
            next_msg_id: AtomicU64::new(1),
            registry: self.registry,
            trace: Mutex::new(Trace::new()),
            metrics: Mutex::new(Metrics::new()),
            epoch: Instant::now(),
            chaos: Mutex::new(ChaosKnobs::default()),
            chaos_on: AtomicBool::new(false),
            chaos_rng: Mutex::new(StdRng::seed_from_u64(self.seed ^ 0xc4a0_5c4a)),
            telemetry: Mutex::new({
                let mut t = Telemetry::new();
                if self.telemetry {
                    t.enable();
                }
                t
            }),
            telemetry_on: AtomicBool::new(self.telemetry),
            mailbox: Mutex::new(MailboxState::new(self.mailbox)),
            parked: Mutex::new(HashMap::new()),
            durability: self.durability,
            supervision: self.supervision.map(|cfg| Mutex::new(Supervisor::new(cfg))),
            supervisor_stop: AtomicBool::new(false),
        });
        let mut handles = Vec::new();
        let mut hosts = Vec::new();
        for (i, _name) in self.host_names.iter().enumerate() {
            let id = HostId(i as u32 + 1);
            hosts.push(id);
            let base_seed = self.seed.wrapping_add(i as u64 + 1);
            let mut txs = Vec::with_capacity(self.workers);
            for w in 0..self.workers {
                let (tx, rx) = unbounded();
                txs.push(tx);
                let shared2 = Arc::clone(&shared);
                // Worker 0 keeps the classic per-host seed so a 1-worker
                // world reproduces the old runtime exactly; extra workers
                // mix in their index.
                let seed = if w == 0 {
                    base_seed
                } else {
                    base_seed ^ crate::ids::splitmix64(w as u64)
                };
                handles.push(thread::spawn(move || host_loop(id, w, seed, rx, shared2)));
            }
            shared.routes.lock().insert(id, txs);
        }
        if shared.supervision.is_some() {
            let shared2 = Arc::clone(&shared);
            handles.push(thread::spawn(move || supervisor_loop(shared2)));
        }
        ThreadWorld {
            shared,
            handles,
            hosts,
        }
    }
}

/// A running thread-backed world.
///
/// Create via [`ThreadWorldBuilder`]; drive with
/// [`ThreadWorld::create_agent`] and [`ThreadWorld::send_external`]; wait
/// with [`ThreadWorld::run_until_idle`]; finish with
/// [`ThreadWorld::shutdown`].
pub struct ThreadWorld {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    hosts: Vec<HostId>,
}

impl ThreadWorld {
    /// Host ids in declaration order.
    pub fn hosts(&self) -> &[HostId] {
        &self.hosts
    }

    /// Create `agent` on `host`. Returns the id immediately; `on_creation`
    /// runs on the host thread.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownHost`] if the host does not exist.
    pub fn create_agent(&self, host: HostId, agent: Box<dyn Agent>) -> Result<AgentId> {
        let id = AgentId(self.shared.next_agent_id.fetch_add(1, Ordering::SeqCst));
        self.shared.locations.lock().insert(id, host);
        self.shared.homes.lock().insert(id, host);
        if !self.shared.send_envelope(
            host,
            Envelope::Create {
                id,
                agent,
                cloned: false,
            },
        ) {
            self.shared.locations.lock().remove(&id);
            return Err(PlatformError::UnknownHost(host));
        }
        Ok(id)
    }

    /// Inject an external message to `to`.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownAgent`] if the agent's location is unknown.
    pub fn send_external(&self, to: AgentId, mut msg: Message) -> Result<MessageId> {
        let host = {
            let locs = self.shared.locations.lock();
            locs.get(&to).copied()
        }
        .ok_or(PlatformError::UnknownAgent(to))?;
        msg.id = MessageId(self.shared.next_msg_id.fetch_add(1, Ordering::SeqCst));
        msg.from = None;
        msg.to = to;
        // An external message is a request entering the platform: mint the
        // root span and the first message hop under it.
        msg.trace = if self.shared.tracing() {
            let now = self.shared.now();
            let mut t = self.shared.telemetry.lock();
            t.mint_root(&msg.kind, now)
                .map(|root| t.child(root, HopKind::Message, msg.kind.clone(), None, None, now))
        } else {
            None
        };
        let id = msg.id;
        if !self.shared.enqueue_deliver(host, msg) {
            return Err(PlatformError::UnknownHost(host));
        }
        Ok(id)
    }

    /// Highest mailbox depth observed so far.
    pub fn mailbox_max_depth(&self) -> usize {
        self.shared.mailbox.lock().max_depth_seen()
    }

    /// Total messages currently parked for deactivated agents, summed
    /// across all agents. Disposing or crashing an agent must drop its
    /// contribution to zero — a nonzero value after the world quiesced
    /// with no deactivated agents left is a bookkeeping leak.
    pub fn parked_total(&self) -> usize {
        self.shared.parked.lock().values().sum()
    }

    /// Administratively deactivate / activate an agent (mirrors the DES
    /// world's admin API).
    pub fn deactivate_agent(&self, agent: AgentId) -> Result<()> {
        let host = self
            .shared
            .locations
            .lock()
            .get(&agent)
            .copied()
            .ok_or(PlatformError::UnknownAgent(agent))?;
        self.shared
            .send_envelope(host, Envelope::AdminDeactivate(agent));
        Ok(())
    }

    /// See [`ThreadWorld::deactivate_agent`].
    pub fn activate_agent(&self, agent: AgentId) -> Result<()> {
        let host = self
            .shared
            .locations
            .lock()
            .get(&agent)
            .copied()
            .ok_or(PlatformError::UnknownAgent(agent))?;
        self.shared
            .send_envelope(host, Envelope::AdminActivate(agent));
        Ok(())
    }

    /// Chaos: drop each remote message with probability `p` (clamped to
    /// `[0, 1]`). The DES equivalent is a fault-loss overlay.
    pub fn set_message_drop_probability(&self, p: f64) {
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        self.shared.chaos.lock().drop_probability = p;
        self.shared.chaos_on.store(true, Ordering::SeqCst);
    }

    /// Chaos: duplicate each delivered message with probability `p`
    /// (clamped to `[0, 1]`); receivers suppress the second copy.
    pub fn set_duplication_probability(&self, p: f64) {
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        self.shared.chaos.lock().dup_probability = p;
        self.shared.chaos_on.store(true, Ordering::SeqCst);
    }

    /// Chaos: hard-partition hosts `a` and `b` — messages between them
    /// drop and dispatches toward either side fail synchronously (the
    /// agent gets `on_dispatch_failed`).
    pub fn partition(&self, a: HostId, b: HostId) {
        self.shared.chaos.lock().partition(a, b);
        self.shared.chaos_on.store(true, Ordering::SeqCst);
    }

    /// Heal a partition installed by [`ThreadWorld::partition`].
    pub fn heal_partition(&self, a: HostId, b: HostId) {
        self.shared.chaos.lock().heal_partition(a, b);
    }

    /// Chaos: crash `host` — its agents and stored capsules are lost and
    /// it refuses traffic until [`ThreadWorld::restart_host`].
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownHost`] if the host does not exist.
    pub fn crash_host(&self, host: HostId) -> Result<()> {
        if !self.hosts.contains(&host) {
            return Err(PlatformError::UnknownHost(host));
        }
        {
            let mut knobs = self.shared.chaos.lock();
            knobs.crashed.insert(host);
            // A crash supersedes a hang: the stall buffers die with the
            // host's state (AdminCrash drops them).
            knobs.hung.remove(&host);
        }
        self.shared.chaos_on.store(true, Ordering::SeqCst);
        self.shared.send_envelope(host, Envelope::AdminCrash);
        if let Some(sup) = &self.shared.supervision {
            let now_us = self.shared.now().as_micros();
            let mut s = sup.lock();
            s.observe_hang_cleared(host);
            s.observe_crash(host, now_us);
        }
        Ok(())
    }

    /// Bring a crashed host back up (empty, but reachable again). With
    /// durability configured, each of the host's workers then runs the
    /// recovery pass over its durable store: journalled agents are
    /// restored and handed their logged profile deltas via
    /// [`Agent::on_recovered`].
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownHost`] if the host does not exist.
    pub fn restart_host(&self, host: HostId) -> Result<()> {
        if !self.hosts.contains(&host) {
            return Err(PlatformError::UnknownHost(host));
        }
        let was_crashed = self.shared.chaos.lock().crashed.remove(&host);
        if was_crashed {
            // A scripted heal cancels any pending automatic failover.
            if let Some(sup) = &self.shared.supervision {
                sup.lock().observe_restart(host);
            }
            if self.shared.durability.is_some() {
                self.shared.send_envelope(host, Envelope::AdminRestart);
            }
        }
        Ok(())
    }

    /// Chaos: wedge `host` — it stays reachable and accepts arrivals, but
    /// deliveries and timer callbacks stall (staying in flight) until
    /// [`ThreadWorld::unhang_host`] or a supervisor bounce. The DES
    /// equivalent is [`crate::chaos::Fault::Hang`].
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownHost`] if the host does not exist.
    pub fn hang_host(&self, host: HostId) -> Result<()> {
        if !self.hosts.contains(&host) {
            return Err(PlatformError::UnknownHost(host));
        }
        let newly = {
            let mut knobs = self.shared.chaos.lock();
            !knobs.crashed.contains(&host) && knobs.hung.insert(host)
        };
        if newly {
            self.shared.chaos_on.store(true, Ordering::SeqCst);
            self.shared.metrics.lock().hangs_injected += 1;
            self.shared.trace.lock().record(
                self.shared.now(),
                None,
                format!("chaos: {host} hung (deliveries stalling)"),
            );
            if let Some(sup) = &self.shared.supervision {
                let now_us = self.shared.now().as_micros();
                sup.lock().observe_hang(host, now_us);
            }
        }
        Ok(())
    }

    /// Heal a hang installed by [`ThreadWorld::hang_host`]: the host's
    /// stalled envelopes are replayed in order.
    ///
    /// # Errors
    ///
    /// [`PlatformError::UnknownHost`] if the host does not exist.
    pub fn unhang_host(&self, host: HostId) -> Result<()> {
        if !self.hosts.contains(&host) {
            return Err(PlatformError::UnknownHost(host));
        }
        // Clear the knob before broadcasting the resume so the replayed
        // envelopes are not parked again.
        let was_hung = self.shared.chaos.lock().hung.remove(&host);
        if was_hung {
            self.shared.trace.lock().record(
                self.shared.now(),
                None,
                format!("chaos: {host} unhung (stalled deliveries replaying)"),
            );
            if let Some(sup) = &self.shared.supervision {
                sup.lock().observe_hang_cleared(host);
            }
            self.shared.send_envelope(host, Envelope::AdminResume);
        }
        Ok(())
    }

    /// Whether `host` is currently wedged by a hang fault.
    pub fn host_hung(&self, host: HostId) -> bool {
        self.shared.chaos.lock().hung.contains(&host)
    }

    /// Block until no envelopes are in flight (the world is quiescent) or
    /// `timeout` elapses. On timeout the returned [`DrainStatus`] carries
    /// a [`StallDiagnostic`] naming what is still queued where.
    pub fn run_until_idle(&self, timeout: Duration) -> DrainStatus {
        let deadline = Instant::now() + timeout;
        loop {
            if self.shared.in_flight.load(Ordering::SeqCst) == 0 {
                // settle: double-check after a short pause to avoid racing
                // a thread between dequeue and counter decrement
                thread::sleep(Duration::from_millis(2));
                if self.shared.in_flight.load(Ordering::SeqCst) == 0 {
                    return DrainStatus::Idle;
                }
            }
            if Instant::now() >= deadline {
                return DrainStatus::TimedOut(self.stall_diagnostic());
            }
            thread::sleep(Duration::from_micros(200));
        }
    }

    fn stall_diagnostic(&self) -> StallDiagnostic {
        let (queued, deferred) = {
            let mb = self.shared.mailbox.lock();
            (mb.depths(), mb.deferred())
        };
        let mut parked: Vec<(AgentId, usize)> = self
            .shared
            .parked
            .lock()
            .iter()
            .filter(|(_, n)| **n > 0)
            .map(|(a, n)| (*a, *n))
            .collect();
        parked.sort_unstable();
        StallDiagnostic {
            in_flight: self.shared.in_flight.load(Ordering::SeqCst),
            queued,
            parked,
            deferred,
        }
    }

    /// Stop all host threads and return the merged metrics and trace.
    pub fn shutdown(self) -> (Metrics, Trace) {
        let (metrics, trace, _) = self.shutdown_with_telemetry();
        (metrics, trace)
    }

    /// Stop all host threads and additionally return the finalized
    /// telemetry sink (span trees + latency registry).
    pub fn shutdown_with_telemetry(self) -> (Metrics, Trace, Telemetry) {
        self.shared.supervisor_stop.store(true, Ordering::SeqCst);
        {
            let routes = self.shared.routes.lock();
            for txs in routes.values() {
                for tx in txs {
                    let _ = tx.send(Envelope::Shutdown);
                }
            }
        }
        for handle in self.handles {
            let _ = handle.join();
        }
        let metrics = self.shared.metrics.lock().clone();
        let trace = self.shared.trace.lock().clone();
        let telemetry = {
            let now = self.shared.now();
            let mut t = self.shared.telemetry.lock();
            if !t.spans().is_empty() {
                t.finalize(now);
            }
            t.clone()
        };
        (metrics, trace, telemetry)
    }
}

/// Outcome of [`ThreadWorld::run_until_idle`].
#[derive(Debug)]
pub enum DrainStatus {
    /// The world quiesced: no envelopes in flight.
    Idle,
    /// The timeout elapsed with work still pending; the diagnostic names
    /// what is stuck where.
    TimedOut(StallDiagnostic),
}

impl DrainStatus {
    /// Whether the world quiesced before the timeout.
    pub fn is_idle(&self) -> bool {
        matches!(self, DrainStatus::Idle)
    }
}

impl fmt::Display for DrainStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrainStatus::Idle => write!(f, "idle"),
            DrainStatus::TimedOut(d) => d.fmt(f),
        }
    }
}

/// Why a [`ThreadWorld`] failed to quiesce: a snapshot of pending work
/// taken when [`ThreadWorld::run_until_idle`] timed out.
#[derive(Debug)]
pub struct StallDiagnostic {
    /// Envelopes sent but not yet handled.
    pub in_flight: i64,
    /// Nonzero queued (scheduled, unhandled) depths per agent.
    pub queued: Vec<(AgentId, usize)>,
    /// Messages held for deactivated agents, per agent.
    pub parked: Vec<(AgentId, usize)>,
    /// Messages deferred by a full blocking mailbox, per agent.
    pub deferred: Vec<(AgentId, usize)>,
}

impl fmt::Display for StallDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn fmt_depths(entries: &[(AgentId, usize)]) -> String {
            entries
                .iter()
                .map(|(a, n)| format!("{a}:{n}"))
                .collect::<Vec<_>>()
                .join(", ")
        }
        write!(
            f,
            "thread world failed to quiesce: {} envelopes in flight; \
             queued: [{}]; parked: [{}]; deferred: [{}]",
            self.in_flight,
            fmt_depths(&self.queued),
            fmt_depths(&self.parked),
            fmt_depths(&self.deferred),
        )
    }
}

struct HostState {
    id: HostId,
    /// This thread's worker index within the host (always 0 in the
    /// classic 1-worker mode).
    worker: usize,
    active: HashMap<AgentId, Box<dyn Agent>>,
    store: DeactivatedStore,
    auth: Authenticator,
    pending: HashMap<AgentId, Vec<Message>>,
    carried_permits: HashMap<AgentId, TravelPermit>,
    /// Message ids already delivered here; chaos-injected duplicates are
    /// suppressed against this set.
    seen: HashSet<MessageId>,
    rng: StdRng,
    /// Local id allocation window fetched in batches from the shared
    /// counter so `Ctx` keeps its simple `&mut u64` interface.
    id_cursor: u64,
    id_end: u64,
    /// Trace context of the callback currently running on this host's
    /// thread; parents every hop the callback causes. Saved/restored
    /// around nested callbacks by [`run_callback`].
    current_trace: Option<TraceCtx>,
    /// Ambient request deadline of the running callback, stamped onto
    /// everything it sends. Same save/restore discipline.
    current_deadline: Option<SimTime>,
    /// This worker's WAL-backed stable storage for the agents it owns;
    /// present when the world was built with durability.
    durable: Option<DurableStore>,
    /// Envelopes parked while the host is hung; each still holds an
    /// in-flight slot so `run_until_idle` blocks through the hang. Drained
    /// (replayed) by [`Envelope::AdminResume`], dropped by a crash.
    stalled: Vec<Envelope>,
}

const ID_BATCH: u64 = 1 << 16;

fn host_loop(id: HostId, worker: usize, seed: u64, rx: Receiver<Envelope>, shared: Arc<Shared>) {
    let mut host = HostState {
        id,
        worker,
        active: HashMap::new(),
        store: DeactivatedStore::new(),
        auth: Authenticator::new(seed ^ 0x5ee5_ee5e),
        pending: HashMap::new(),
        carried_permits: HashMap::new(),
        seen: HashSet::new(),
        rng: StdRng::seed_from_u64(seed),
        id_cursor: 0,
        id_end: 0,
        current_trace: None,
        current_deadline: None,
        durable: shared.durability.map(DurableStore::new),
        stalled: Vec::new(),
    };
    while let Ok(env) = rx.recv() {
        let shutdown = matches!(env, Envelope::Shutdown);
        handle_envelope(&mut host, env, &shared);
        if host.durable.is_some() {
            maybe_checkpoint(&mut host, &shared);
        }
        if !shutdown {
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        }
        if shutdown {
            break;
        }
    }
}

/// Dedicated supervisor thread: runs the failure detector over wall time
/// and executes its verdicts — automatic restart of crashed hosts (the
/// workers never died, so a worker respawn is a broadcast
/// [`Envelope::AdminRestart`] recovery pass), bouncing of hung hosts, and
/// the suspected-host bookkeeping in between. Exits when
/// [`Shared::supervisor_stop`] is raised at shutdown.
fn supervisor_loop(shared: Arc<Shared>) {
    let poll = {
        let Some(sup) = shared.supervision.as_ref() else {
            return;
        };
        let interval = sup.lock().config().lease_interval_us;
        // Poll a few times per lease so detection latency stays well under
        // one interval while shutdown remains responsive.
        Duration::from_micros((interval / 4).clamp(1_000, 50_000))
    };
    loop {
        if shared.supervisor_stop.load(Ordering::SeqCst) {
            return;
        }
        thread::sleep(poll);
        let verdicts = {
            let Some(sup) = shared.supervision.as_ref() else {
                return;
            };
            let now_us = shared.now().as_micros();
            sup.lock().tick(now_us)
        };
        for verdict in verdicts {
            match verdict {
                Verdict::Suspect(host) => {
                    shared.metrics.lock().hosts_suspected += 1;
                    shared.trace.lock().record(
                        shared.now(),
                        None,
                        format!("supervisor: {host} suspected (missed heartbeat lease)"),
                    );
                }
                Verdict::FailOver(host) => {
                    // Re-check under the knob lock: a manual restart may
                    // have raced the verdict.
                    let still_down = shared.chaos.lock().crashed.remove(&host);
                    if !still_down {
                        continue;
                    }
                    {
                        let mut m = shared.metrics.lock();
                        m.leases_expired += 1;
                        m.failovers += 1;
                    }
                    shared.trace.lock().record(
                        shared.now(),
                        None,
                        format!("supervisor: {host} lease expired, failing over (worker respawn)"),
                    );
                    if shared.durability.is_some() {
                        shared.send_envelope(host, Envelope::AdminRestart);
                    }
                }
                Verdict::BounceHang(host) => {
                    let still_hung = shared.chaos.lock().hung.remove(&host);
                    if !still_hung {
                        continue;
                    }
                    shared.metrics.lock().hangs_detected += 1;
                    shared.trace.lock().record(
                        shared.now(),
                        None,
                        format!("supervisor: {host} hung past grace, bouncing"),
                    );
                    shared.send_envelope(host, Envelope::AdminResume);
                }
            }
        }
    }
}

/// Fold the worker's durable-store counters into the shared metrics.
fn drain_durable_counters(host: &mut HostState, shared: &Arc<Shared>) {
    if let Some(counters) = host.durable.as_mut().map(DurableStore::take_counters) {
        counters.merge_into(&mut shared.metrics.lock());
    }
}

/// Journal the live capsule of an agent this worker owns (see the DES
/// twin in [`crate::sim::SimWorld`]: every callback for capsule-policy
/// agents, baseline only for delta-policy agents).
fn journal_live_capsule(host: &mut HostState, shared: &Arc<Shared>, id: AgentId) {
    if host.durable.is_none() {
        return;
    }
    let has_capsule = host
        .durable
        .as_ref()
        .is_some_and(|s| s.state().capsules.contains_key(&id.0));
    let value = {
        let Some(agent) = host.active.get(&id) else {
            return;
        };
        if matches!(agent.durable_policy(), DurablePolicy::Deltas) && has_capsule {
            return;
        }
        let home = shared.homes.lock().get(&id).copied().unwrap_or(host.id);
        let permit = host.carried_permits.get(&id).copied();
        let capsule = AgentCapsule::capture(id, agent.as_ref(), home, permit);
        serde_json::to_value(&capsule).unwrap_or(serde_json::Value::Null)
    };
    if let Some(store) = host.durable.as_mut() {
        let _ = store.put_capsule(id.0, value, true);
    }
    drain_durable_counters(host, shared);
}

/// Journal the removal of an agent's capsule (departure or disposal).
fn journal_capsule_gone(host: &mut HostState, shared: &Arc<Shared>, id: AgentId) {
    if let Some(store) = host.durable.as_mut() {
        let _ = store.remove_capsule(id.0);
        drain_durable_counters(host, shared);
    }
}

/// Checkpoint this worker's durable store once its journal has grown past
/// the configured threshold (see the DES twin for the policy).
fn maybe_checkpoint(host: &mut HostState, shared: &Arc<Shared>) {
    if !host
        .durable
        .as_ref()
        .is_some_and(DurableStore::should_checkpoint)
    {
        return;
    }
    let mut ids: Vec<AgentId> = host
        .active
        .iter()
        .filter(|(_, a)| matches!(a.durable_policy(), DurablePolicy::Deltas))
        .map(|(id, _)| *id)
        .collect();
    ids.sort_unstable();
    let mut fresh: Vec<(u64, serde_json::Value, bool)> = Vec::new();
    for id in ids {
        let Some(agent) = host.active.get(&id) else {
            continue;
        };
        let home = shared.homes.lock().get(&id).copied().unwrap_or(host.id);
        let permit = host.carried_permits.get(&id).copied();
        let capsule = AgentCapsule::capture(id, agent.as_ref(), home, permit);
        fresh.push((
            id.0,
            serde_json::to_value(&capsule).unwrap_or(serde_json::Value::Null),
            true,
        ));
    }
    if let Some(store) = host.durable.as_mut() {
        // in-memory checkpoints cannot fail; the runtimes never install
        // file-backed stores
        let _ = store.checkpoint(fresh);
    }
    drain_durable_counters(host, shared);
}

/// Recovery pass for one worker of a restarted host: replay the durable
/// store and restore the agents this worker owns.
fn recover_worker(host: &mut HostState, shared: &Arc<Shared>) {
    let recovered = match host.durable.as_ref().map(DurableStore::recover) {
        Some(Ok(r)) => r,
        Some(Err(e)) => {
            shared.trace.lock().record(
                shared.now(),
                None,
                format!("recovery: {} failed: {e}", host.id),
            );
            return;
        }
        None => return,
    };
    {
        let mut m = shared.metrics.lock();
        if host.worker == 0 {
            m.hosts_recovered += 1;
        }
        m.wal_records_replayed += recovered.replayed as u64;
    }
    let mut restored_active: Vec<AgentId> = Vec::new();
    let mut restored = 0u64;
    for (raw, rec) in &recovered.state.capsules {
        let id = AgentId(*raw);
        // Poison protection: a crash-looping agent is quarantined to
        // dead-letters instead of being restored yet again.
        let decision = shared
            .supervision
            .as_ref()
            .map(|s| s.lock().note_restore(id));
        if matches!(decision, Some(RestoreDecision::Quarantine)) {
            shared.metrics.lock().agents_quarantined += 1;
            shared.trace.lock().record(
                shared.now(),
                Some(id),
                format!("supervisor: {id} quarantined (restart budget exhausted)"),
            );
            continue;
        }
        let capsule: AgentCapsule = match serde_json::from_value(rec.capsule.clone()) {
            Ok(c) => c,
            Err(e) => {
                shared.trace.lock().record(
                    shared.now(),
                    None,
                    format!("recovery: {} capsule for {id} unreadable: {e}", host.id),
                );
                continue;
            }
        };
        let home = capsule.home;
        let permit = capsule.permit;
        if rec.active {
            match shared.registry.rehydrate(&capsule) {
                Ok(agent) => {
                    host.active.insert(id, agent);
                    shared.locations.lock().insert(id, host.id);
                    shared.homes.lock().insert(id, home);
                    if let Some(p) = permit {
                        if home != host.id {
                            host.carried_permits.insert(id, p);
                        }
                    }
                    restored_active.push(id);
                    restored += 1;
                }
                Err(e) => {
                    shared.trace.lock().record(
                        shared.now(),
                        None,
                        format!("recovery: {} cannot rehydrate {id}: {e}", host.id),
                    );
                }
            }
        } else {
            host.store.store(capsule);
            shared.locations.lock().insert(id, host.id);
            shared.homes.lock().insert(id, home);
            restored += 1;
        }
    }
    shared.metrics.lock().agents_recovered += restored;
    if host.worker == 0 || restored > 0 {
        shared.trace.lock().record(
            shared.now(),
            None,
            format!(
                "recovery: {} replayed {} wal records, restored {restored} agents",
                host.id, recovered.replayed
            ),
        );
    }
    restored_active.sort_unstable();
    for id in restored_active {
        let deltas = recovered.state.deltas_for(id.0);
        shared.metrics.lock().profile_deltas_replayed += deltas.len() as u64;
        run_callback(host, shared, id, None, "on_recovered", move |a, ctx| {
            a.on_recovered(ctx, &deltas)
        });
    }
}

fn handle_envelope(host: &mut HostState, env: Envelope, shared: &Arc<Shared>) {
    let chaos_on = shared.chaos_on.load(Ordering::Relaxed);
    // A hung host accepts the connection but never drains it: deliveries
    // and timer callbacks park in the stall buffer. The extra in-flight
    // slot cancels the decrement in `host_loop`, so the envelope counts as
    // pending until a heal or supervisor bounce replays it.
    if chaos_on
        && matches!(env, Envelope::Deliver(_) | Envelope::Timer { .. })
        && shared.chaos.lock().hung.contains(&host.id)
    {
        shared.in_flight.fetch_add(1, Ordering::SeqCst);
        host.stalled.push(env);
        return;
    }
    match env {
        Envelope::Deliver(msg) => {
            // The scheduled delivery leaves the mailbox now, whatever its
            // fate; a freed slot may release a deferred message.
            let outcome = shared.mailbox.lock().on_consume(msg.to, msg.id);
            if let Some(released) = outcome.released {
                let dest = shared.locations.lock().get(&released.to).copied();
                match dest {
                    Some(h) => {
                        shared.send_envelope(h, Envelope::Deliver(released));
                    }
                    None => {
                        shared.metrics.lock().messages_dead_lettered += 1;
                        shared.dead_letter(
                            released.kind.as_str(),
                            released.trace,
                            format!("{} to {} (gone at release)", released.kind, released.to),
                        );
                    }
                }
            }
            if outcome.tombstoned {
                shared.span_event(
                    msg.trace,
                    SpanEventKind::Shed,
                    "evicted: mailbox overflow (reject-oldest)",
                );
                shared.end_span(msg.trace);
                return;
            }
            if deadline_expired(msg.deadline, shared.now()) {
                shared.metrics.lock().deadline_drops += 1;
                shared.span_event(
                    msg.trace,
                    SpanEventKind::DeadlineExceeded,
                    format!("dropped: deadline passed before {} delivery", msg.kind),
                );
                shared.end_span(msg.trace);
                shared.trace.lock().record(
                    shared.now(),
                    msg.from,
                    format!("deadline exceeded: {} to {} dropped", msg.kind, msg.to),
                );
                return;
            }
            if chaos_on && shared.chaos.lock().crashed.contains(&host.id) {
                let mut m = shared.metrics.lock();
                m.messages_lost += 1;
                m.chaos_drops += 1;
                drop(m);
                shared.span_event(
                    msg.trace,
                    SpanEventKind::Chaos,
                    "dropped: destination crashed",
                );
                shared.end_span(msg.trace);
                return;
            }
            let to = msg.to;
            if host.active.contains_key(&to) {
                if chaos_on && !host.seen.insert(msg.id) {
                    shared.metrics.lock().dupes_suppressed += 1;
                    shared.span_event(
                        msg.trace,
                        SpanEventKind::Chaos,
                        "duplicate suppressed at receiver",
                    );
                    return;
                }
                shared.metrics.lock().messages_delivered += 1;
                if let Some(dur) = shared.end_span(msg.trace) {
                    let mut t = shared.telemetry.lock();
                    let reg = t.registry_mut();
                    reg.observe("stage.transfer_us", dur);
                    reg.observe(&format!("latency_us.{}", msg.kind), dur);
                    reg.inc(&format!("delivered.{}", msg.kind), 1);
                }
                let parent = msg.trace;
                let kind = msg.kind.clone();
                host.current_deadline = msg.deadline;
                run_callback(host, shared, to, parent, kind.as_str(), move |a, ctx| {
                    a.on_message(ctx, msg)
                });
                host.current_deadline = None;
            } else if host.store.contains(to) {
                // Held until the agent is activated; the hop span stays
                // open until the replayed copy lands.
                shared.span_event(
                    msg.trace,
                    SpanEventKind::Note,
                    "parked: recipient deactivated",
                );
                host.pending.entry(to).or_default().push(msg);
                *shared.parked.lock().entry(to).or_insert(0) += 1;
            } else {
                shared.metrics.lock().messages_dead_lettered += 1;
                shared.dead_letter(
                    msg.kind.as_str(),
                    msg.trace,
                    format!("{} to {} (gone at delivery)", msg.kind, to),
                );
            }
        }
        Envelope::Arrive(capsule) => {
            if chaos_on && shared.chaos.lock().crashed.contains(&host.id) {
                shared.locations.lock().remove(&capsule.id);
                let mut m = shared.metrics.lock();
                m.agents_lost_in_crash += 1;
                m.chaos_drops += 1;
                drop(m);
                shared.span_event(
                    capsule.trace,
                    SpanEventKind::Chaos,
                    format!("arrival failed: {} crashed; agent lost", host.id),
                );
                shared.end_span(capsule.trace);
                shared.trace.lock().record(
                    shared.now(),
                    Some(capsule.id),
                    format!("arrival failed: {} crashed; {} lost", host.id, capsule.id),
                );
                return;
            }
            handle_arrival(host, capsule, shared)
        }
        Envelope::Create { id, agent, cloned } => {
            host.active.insert(id, agent);
            shared.metrics.lock().agents_created += 1;
            if cloned {
                run_callback(host, shared, id, None, "on_clone", |a, ctx| a.on_clone(ctx));
            } else {
                run_callback(host, shared, id, None, "on_creation", |a, ctx| {
                    a.on_creation(ctx)
                });
            }
        }
        Envelope::Timer {
            agent,
            tag,
            trace,
            deadline,
        } => {
            if host.active.contains_key(&agent) {
                shared.metrics.lock().timers_fired += 1;
                if let Some(dur) = shared.end_span(trace) {
                    shared
                        .telemetry
                        .lock()
                        .registry_mut()
                        .observe("stage.timer_wait_us", dur);
                }
                // Timers fire even past the deadline: a watchdog is often
                // the very thing that turns an expired request into a
                // reply.
                host.current_deadline = deadline;
                run_callback(host, shared, agent, trace, "on_timer", move |a, ctx| {
                    a.on_timer(ctx, tag)
                });
                host.current_deadline = None;
            } else {
                shared.end_span(trace);
            }
        }
        Envelope::AdminDeactivate(agent) => do_deactivate(host, shared, agent),
        Envelope::AdminActivate(agent) => do_activate(host, shared, agent),
        Envelope::AdminDispose(agent) => do_dispose(host, shared, agent),
        Envelope::AdminRetract { agent, to } => {
            if host.active.contains_key(&agent) {
                do_dispatch(host, shared, agent, to);
            }
        }
        Envelope::AdminCrash => {
            let mut lost: Vec<AgentId> = host.active.keys().copied().collect();
            host.active.clear();
            lost.extend(host.store.drain());
            host.pending.clear();
            host.seen.clear();
            host.carried_permits.clear();
            // A crash while hung loses the stall buffer with the host;
            // release the in-flight slots the parked envelopes held.
            let stalled = std::mem::take(&mut host.stalled);
            if !stalled.is_empty() {
                let mut m = shared.metrics.lock();
                for env in &stalled {
                    if matches!(env, Envelope::Deliver(_)) {
                        m.messages_lost += 1;
                    }
                }
                drop(m);
                shared
                    .in_flight
                    .fetch_sub(stalled.len() as i64, Ordering::SeqCst);
            }
            if let Some(store) = host.durable.as_mut() {
                // Stable storage survives, minus the unsynced WAL tail;
                // the agents still count as lost until recovery.
                let _ = store.crash();
            }
            {
                let mut locs = shared.locations.lock();
                for id in &lost {
                    locs.remove(id);
                }
            }
            {
                let mut mb = shared.mailbox.lock();
                let mut parked = shared.parked.lock();
                for id in &lost {
                    mb.forget(*id);
                    parked.remove(id);
                }
            }
            {
                let mut m = shared.metrics.lock();
                // The crash is broadcast to every worker of the host but
                // is one event; worker 0 owns the host-level bookkeeping.
                if host.worker == 0 {
                    m.host_crashes += 1;
                }
                m.agents_lost_in_crash += lost.len() as u64;
            }
            if host.worker == 0 {
                shared.trace.lock().record(
                    shared.now(),
                    None,
                    format!("chaos: {} crashed ({} agents lost)", host.id, lost.len()),
                );
            }
        }
        Envelope::AdminRestart => {
            if host.worker == 0 {
                shared.trace.lock().record(
                    shared.now(),
                    None,
                    format!("chaos: {} restarted", host.id),
                );
            }
            recover_worker(host, shared);
        }
        Envelope::AdminResume => {
            let stalled = std::mem::take(&mut host.stalled);
            if host.worker == 0 && !stalled.is_empty() {
                shared.trace.lock().record(
                    shared.now(),
                    None,
                    format!(
                        "chaos: {} resumed ({} stalled envelopes replayed)",
                        host.id,
                        stalled.len()
                    ),
                );
            }
            for env in stalled {
                // Replay through the normal path (a re-park if the host
                // hung again keeps the slot; otherwise release it).
                handle_envelope(host, env, shared);
                shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            }
        }
        Envelope::Shutdown => {}
    }
}

fn handle_arrival(host: &mut HostState, capsule: AgentCapsule, shared: &Arc<Shared>) {
    let id = capsule.id;
    // Work past its deadline is cancelled rather than landed: the
    // requester has already been answered (or timed out) by now.
    if deadline_expired(capsule.deadline, shared.now()) {
        shared.locations.lock().remove(&id);
        shared.metrics.lock().deadline_drops += 1;
        shared.span_event(
            capsule.trace,
            SpanEventKind::DeadlineExceeded,
            format!("cancelled: deadline passed before arrival at {}", host.id),
        );
        shared.end_span(capsule.trace);
        shared.trace.lock().record(
            shared.now(),
            Some(id),
            format!(
                "deadline exceeded: {id} cancelled before arrival at {}",
                host.id
            ),
        );
        return;
    }
    if capsule.home == host.id && host.auth.expects(id) {
        let ok = capsule
            .permit
            .map(|p| host.auth.verify(id, &p))
            .unwrap_or(false);
        if !ok {
            shared.metrics.lock().migrations_rejected += 1;
            shared.locations.lock().remove(&id);
            shared.span_event(
                capsule.trace,
                SpanEventKind::Note,
                format!("arrival rejected at {}: authentication failed", host.id),
            );
            shared.end_span(capsule.trace);
            shared.trace.lock().record(
                shared.now(),
                Some(id),
                format!("arrival rejected at {}: authentication failed", host.id),
            );
            return;
        }
    } else if let Some(p) = capsule.permit {
        host.carried_permits.insert(id, p);
    }
    match shared.registry.rehydrate(&capsule) {
        Ok(agent) => {
            {
                let mut m = shared.metrics.lock();
                m.migrations += 1;
                m.migration_bytes += capsule.wire_size() as u64;
            }
            host.active.insert(id, agent);
            shared.locations.lock().insert(id, host.id);
            if let Some(dur) = shared.end_span(capsule.trace) {
                shared
                    .telemetry
                    .lock()
                    .registry_mut()
                    .observe("stage.migration_us", dur);
            }
            host.current_deadline = capsule.deadline;
            run_callback(host, shared, id, capsule.trace, "on_arrival", |a, ctx| {
                a.on_arrival(ctx)
            });
            host.current_deadline = None;
        }
        Err(e) => {
            shared.metrics.lock().migrations_rejected += 1;
            shared.locations.lock().remove(&id);
            shared.span_event(
                capsule.trace,
                SpanEventKind::Note,
                format!("arrival rejected: {e}"),
            );
            shared.end_span(capsule.trace);
            shared
                .trace
                .lock()
                .record(shared.now(), Some(id), format!("arrival rejected: {e}"));
        }
    }
}

fn run_callback<F>(
    host: &mut HostState,
    shared: &Arc<Shared>,
    id: AgentId,
    parent: Option<TraceCtx>,
    name: &str,
    f: F,
) where
    F: FnOnce(&mut dyn Agent, &mut Ctx<'_>),
{
    let Some(mut agent) = host.active.remove(&id) else {
        return;
    };
    if host.id_end - host.id_cursor < 1024 {
        host.id_cursor = shared.next_agent_id.fetch_add(ID_BATCH, Ordering::SeqCst);
        host.id_end = host.id_cursor + ID_BATCH;
    }
    let handler = shared.child_span(
        parent,
        HopKind::Handler,
        InternedStr::new(name),
        Some(id),
        Some(host.id),
    );
    let saved = std::mem::replace(&mut host.current_trace, handler);
    // Nested callbacks inherit the caller's ambient deadline; envelope
    // handlers overwrite it from the carried value before calling in.
    let saved_deadline = host.current_deadline;
    let mut actions = Vec::new();
    {
        let mut ctx = Ctx::new(
            id,
            host.id,
            shared.now(),
            &mut host.rng,
            &mut actions,
            &mut host.id_cursor,
        )
        .with_trace(handler)
        .with_deadline(host.current_deadline);
        f(agent.as_mut(), &mut ctx);
    }
    host.active.insert(id, agent);
    apply_actions(host, shared, id, actions);
    // Callback boundary = journaling boundary (see the DES twin).
    if host.durable.is_some() && host.active.contains_key(&id) {
        journal_live_capsule(host, shared, id);
    }
    if let Some(h) = handler {
        let now = shared.now();
        let mut t = shared.telemetry.lock();
        t.end(h.span_id, now);
        if let Some(wall) = t
            .span(h.span_id)
            .and_then(|s| s.wall_end_ns.map(|e| e.saturating_sub(s.wall_start_ns)))
        {
            t.registry_mut().observe("stage.handler_wall_ns", wall);
        }
    }
    host.current_trace = saved;
    host.current_deadline = saved_deadline;
}

fn apply_actions(host: &mut HostState, shared: &Arc<Shared>, actor: AgentId, actions: Vec<Action>) {
    for action in actions {
        match action {
            Action::Send { to, mut msg } => {
                msg.id = MessageId(shared.next_msg_id.fetch_add(1, Ordering::SeqCst));
                msg.deadline = host.current_deadline;
                // Every send is a fresh hop: any context the message
                // already carried names a hop that ended at its delivery.
                msg.trace = shared.child_span(
                    host.current_trace,
                    HopKind::Message,
                    msg.kind.clone(),
                    msg.from,
                    Some(host.id),
                );
                let dest = shared.locations.lock().get(&to).copied();
                match dest {
                    Some(h) => {
                        let mut duplicate = false;
                        if shared.chaos_on.load(Ordering::Relaxed) {
                            let (blocked, drop_p, dup_p) = {
                                let knobs = shared.chaos.lock();
                                (
                                    knobs.blocks(host.id, h),
                                    knobs.drop_probability,
                                    knobs.dup_probability,
                                )
                            };
                            let dropped = blocked
                                || (h != host.id
                                    && drop_p > 0.0
                                    && shared.chaos_rng.lock().gen::<f64>() < drop_p);
                            if dropped {
                                let mut m = shared.metrics.lock();
                                m.messages_lost += 1;
                                m.chaos_drops += 1;
                                drop(m);
                                shared.span_event(
                                    msg.trace,
                                    SpanEventKind::Chaos,
                                    "dropped: chaos fault on link",
                                );
                                shared.end_span(msg.trace);
                                continue;
                            }
                            if dup_p > 0.0 && shared.chaos_rng.lock().gen::<f64>() < dup_p {
                                duplicate = true;
                                shared.metrics.lock().chaos_dupes += 1;
                                shared.span_event(
                                    msg.trace,
                                    SpanEventKind::Chaos,
                                    "duplicated by chaos",
                                );
                            }
                        }
                        if h != host.id {
                            shared.metrics.lock().remote_message_bytes += msg.wire_size() as u64;
                        }
                        if duplicate {
                            shared.enqueue_deliver(h, msg.clone());
                        }
                        shared.enqueue_deliver(h, msg);
                    }
                    None => {
                        shared.metrics.lock().messages_dead_lettered += 1;
                        shared.dead_letter(
                            msg.kind.as_str(),
                            msg.trace,
                            format!("{} to {} (unreachable)", msg.kind, to),
                        );
                    }
                }
            }
            Action::Create { id, agent } => {
                shared.locations.lock().insert(id, host.id);
                shared.homes.lock().insert(id, host.id);
                if shared.worker_of(id) != host.worker {
                    // The id hashes to a sibling worker: install it there,
                    // or every future envelope for it would miss.
                    shared.send_envelope(
                        host.id,
                        Envelope::Create {
                            id,
                            agent,
                            cloned: false,
                        },
                    );
                    continue;
                }
                host.active.insert(id, agent);
                shared.metrics.lock().agents_created += 1;
                let parent = host.current_trace;
                run_callback(host, shared, id, parent, "on_creation", |a, ctx| {
                    a.on_creation(ctx)
                });
            }
            Action::CreateOfType {
                id,
                agent_type,
                state,
            } => {
                let capsule = AgentCapsule {
                    id,
                    agent_type,
                    state,
                    home: host.id,
                    permit: None,
                    trace: None,
                    deadline: None,
                };
                match shared.registry.rehydrate(&capsule) {
                    Ok(agent) => {
                        shared.locations.lock().insert(id, host.id);
                        shared.homes.lock().insert(id, host.id);
                        if shared.worker_of(id) != host.worker {
                            shared.send_envelope(
                                host.id,
                                Envelope::Create {
                                    id,
                                    agent,
                                    cloned: false,
                                },
                            );
                            continue;
                        }
                        host.active.insert(id, agent);
                        shared.metrics.lock().agents_created += 1;
                        let parent = host.current_trace;
                        run_callback(host, shared, id, parent, "on_creation", |a, ctx| {
                            a.on_creation(ctx)
                        });
                    }
                    Err(e) => {
                        shared.trace.lock().record(
                            shared.now(),
                            Some(actor),
                            format!("create-of-type failed for {id}: {e}"),
                        );
                    }
                }
            }
            Action::DispatchSelf { dest } => do_dispatch(host, shared, actor, dest),
            Action::CloneSelf { id } => {
                let Some(capsule) = host
                    .active
                    .get(&actor)
                    .map(|a| AgentCapsule::capture(id, a.as_ref(), host.id, None))
                else {
                    continue;
                };
                match shared.registry.rehydrate(&capsule) {
                    Ok(copy) => {
                        shared.locations.lock().insert(id, host.id);
                        shared.homes.lock().insert(id, host.id);
                        if shared.worker_of(id) != host.worker {
                            shared.send_envelope(
                                host.id,
                                Envelope::Create {
                                    id,
                                    agent: copy,
                                    cloned: true,
                                },
                            );
                            continue;
                        }
                        host.active.insert(id, copy);
                        shared.metrics.lock().agents_created += 1;
                        let parent = host.current_trace;
                        run_callback(host, shared, id, parent, "on_clone", |a, ctx| {
                            a.on_clone(ctx)
                        });
                    }
                    Err(e) => {
                        shared.trace.lock().record(
                            shared.now(),
                            Some(actor),
                            format!("clone failed for {actor}: {e}"),
                        );
                    }
                }
            }
            Action::Retract { id, to } => {
                let location = shared.locations.lock().get(&id).copied();
                match location {
                    Some(at) if at == host.id && shared.worker_of(id) == host.worker => {
                        do_dispatch(host, shared, id, to)
                    }
                    Some(at) => {
                        shared.send_envelope(at, Envelope::AdminRetract { agent: id, to });
                    }
                    None => {
                        shared.metrics.lock().messages_dead_lettered += 1;
                    }
                }
            }
            Action::Deactivate { id } => {
                if let Some(at) = forward_admin(host, shared, id) {
                    shared.send_envelope(at, Envelope::AdminDeactivate(id));
                } else {
                    do_deactivate(host, shared, id);
                }
            }
            Action::Activate { id } => {
                if let Some(at) = forward_admin(host, shared, id) {
                    shared.send_envelope(at, Envelope::AdminActivate(id));
                } else {
                    do_activate(host, shared, id);
                }
            }
            Action::Dispose { id } => {
                if let Some(at) = forward_admin(host, shared, id) {
                    shared.send_envelope(at, Envelope::AdminDispose(id));
                } else {
                    do_dispose(host, shared, id);
                }
            }
            Action::SetTimer { id, delay, tag } => {
                // A pending timer is a hop of the request that armed it:
                // span opens at arm, closes at fire.
                let trace = shared.child_span(
                    host.current_trace,
                    HopKind::Timer,
                    InternedStr::new("timer"),
                    Some(id),
                    Some(host.id),
                );
                let shared2 = Arc::clone(shared);
                let host_id = host.id;
                let deadline = host.current_deadline;
                shared.in_flight.fetch_add(1, Ordering::SeqCst);
                thread::spawn(move || {
                    thread::sleep(Duration::from_micros(delay.as_micros()));
                    // route to wherever the agent is now
                    let dest = shared2
                        .locations
                        .lock()
                        .get(&id)
                        .copied()
                        .unwrap_or(host_id);
                    shared2.send_envelope(
                        dest,
                        Envelope::Timer {
                            agent: id,
                            tag,
                            trace,
                            deadline,
                        },
                    );
                    shared2.in_flight.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Action::SetDeadline { deadline } => host.current_deadline = deadline,
            Action::Note { label } => {
                if host.current_trace.is_some() {
                    shared.span_event(host.current_trace, SpanEventKind::Note, label.clone());
                }
                shared.trace.lock().record(shared.now(), Some(actor), label);
            }
            Action::CountFault { counter } => {
                let (kind, label) = {
                    let mut m = shared.metrics.lock();
                    match counter {
                        FaultCounter::Retry => {
                            m.retries += 1;
                            (SpanEventKind::Retry, "retry attempt")
                        }
                        FaultCounter::DegradedReply => {
                            m.degraded_replies += 1;
                            (SpanEventKind::Degraded, "degraded reply")
                        }
                        FaultCounter::Shed => {
                            m.requests_shed += 1;
                            (SpanEventKind::Shed, "request shed")
                        }
                        FaultCounter::BreakerRejection => {
                            m.breaker_rejections += 1;
                            (SpanEventKind::Breaker, "dispatch suppressed: circuit open")
                        }
                        FaultCounter::LedgerResolution => {
                            m.intents_resolved_by_ledger += 1;
                            (
                                SpanEventKind::Note,
                                "purchase resolved from marketplace ledger",
                            )
                        }
                    }
                };
                shared.span_event(host.current_trace, kind, label);
            }
            Action::Observe { name, value } => {
                if shared.tracing() {
                    shared
                        .telemetry
                        .lock()
                        .registry_mut()
                        .observe(name.as_str(), value);
                }
            }
            Action::IncCounter { name, by } => {
                if shared.tracing() {
                    shared
                        .telemetry
                        .lock()
                        .registry_mut()
                        .inc(name.as_str(), by);
                }
            }
            Action::JournalIntent { intent, detail } => {
                if let Some(store) = host.durable.as_mut() {
                    let _ = store.log_intent(intent, detail);
                    drain_durable_counters(host, shared);
                }
            }
            Action::JournalCommit { intent, detail } => {
                if let Some(store) = host.durable.as_mut() {
                    let _ = store.log_commit(intent, detail);
                    drain_durable_counters(host, shared);
                }
            }
            Action::JournalAbort { intent, reason } => {
                if let Some(store) = host.durable.as_mut() {
                    let _ = store.log_abort(intent, reason);
                    drain_durable_counters(host, shared);
                }
            }
            Action::JournalDelta { id, delta } => {
                if let Some(store) = host.durable.as_mut() {
                    let _ = store.log_delta(id.0, delta);
                    drain_durable_counters(host, shared);
                }
            }
        }
    }
}

fn do_dispatch(host: &mut HostState, shared: &Arc<Shared>, id: AgentId, dest: HostId) {
    if !shared.routes.lock().contains_key(&dest) {
        shared.trace.lock().record(
            shared.now(),
            Some(id),
            format!("dispatch failed: unknown {dest}"),
        );
        return;
    }
    if !host.active.contains_key(&id) {
        return;
    }
    // Same semantics as the DES world: an unreachable (partitioned or
    // crashed) destination refuses the dispatch synchronously.
    if shared.chaos_on.load(Ordering::Relaxed) && shared.chaos.lock().blocks(host.id, dest) {
        shared.metrics.lock().chaos_drops += 1;
        shared.span_event(
            host.current_trace,
            SpanEventKind::Chaos,
            format!("dispatch refused: {dest} unreachable"),
        );
        shared.trace.lock().record(
            shared.now(),
            Some(id),
            format!("dispatch refused: {dest} unreachable"),
        );
        let parent = host.current_trace;
        run_callback(
            host,
            shared,
            id,
            parent,
            "on_dispatch_failed",
            move |a, ctx| a.on_dispatch_failed(ctx, dest),
        );
        return;
    }
    let parent = host.current_trace;
    run_callback(host, shared, id, parent, "on_dispatch", |a, ctx| {
        a.on_dispatch(ctx)
    });
    let Some(agent) = host.active.remove(&id) else {
        return;
    };
    let home = shared.homes.lock().get(&id).copied().unwrap_or(host.id);
    let permit = if host.id == home {
        Some(host.auth.issue(id))
    } else {
        host.carried_permits.remove(&id)
    };
    let mut capsule = AgentCapsule::capture(id, agent.as_ref(), home, permit);
    capsule.deadline = host.current_deadline;
    capsule.trace = shared.child_span(
        host.current_trace,
        HopKind::Migration,
        capsule.agent_type.clone(),
        Some(id),
        Some(host.id),
    );
    shared.locations.lock().remove(&id);
    // The agent has left this worker; forget its capsule (forced, so a
    // crash cannot resurrect a second copy).
    journal_capsule_gone(host, shared, id);
    shared.send_envelope(dest, Envelope::Arrive(capsule));
}

/// Whether an admin action (deactivate / activate / dispose) on `id` must
/// be forwarded to the worker that owns the agent instead of applied
/// inline; `Some(host)` names where to send it. With one worker per host
/// the answer is always "inline", which is exactly the classic runtime
/// (inline handlers no-op when the agent is not local).
fn forward_admin(host: &HostState, shared: &Arc<Shared>, id: AgentId) -> Option<HostId> {
    if shared.workers == 1 || shared.worker_of(id) == host.worker {
        return None;
    }
    shared.locations.lock().get(&id).copied()
}

fn do_dispose(host: &mut HostState, shared: &Arc<Shared>, id: AgentId) {
    let was_active = host.active.contains_key(&id);
    if !was_active && !host.store.contains(id) {
        return;
    }
    if was_active {
        let parent = host.current_trace;
        run_callback(host, shared, id, parent, "on_disposal", |a, ctx| {
            a.on_disposal(ctx)
        });
        host.active.remove(&id);
    } else {
        host.store.load(id);
    }
    // Messages parked while the agent was deactivated can never replay
    // now: dead-letter them (closing their still-open hop spans) rather
    // than leaking them — and their parked-depth gauge — forever.
    for msg in host.pending.remove(&id).unwrap_or_default() {
        shared.metrics.lock().messages_dead_lettered += 1;
        shared.dead_letter(
            msg.kind.as_str(),
            msg.trace,
            format!("{} to {} (recipient disposed while parked)", msg.kind, id),
        );
    }
    shared.locations.lock().remove(&id);
    shared.mailbox.lock().forget(id);
    shared.parked.lock().remove(&id);
    journal_capsule_gone(host, shared, id);
    shared.metrics.lock().agents_disposed += 1;
}

fn do_deactivate(host: &mut HostState, shared: &Arc<Shared>, id: AgentId) {
    if !host.active.contains_key(&id) {
        return;
    }
    let parent = host.current_trace;
    run_callback(host, shared, id, parent, "on_deactivation", |a, ctx| {
        a.on_deactivation(ctx)
    });
    let Some(agent) = host.active.remove(&id) else {
        return;
    };
    let home = shared.homes.lock().get(&id).copied().unwrap_or(host.id);
    let capsule = AgentCapsule::capture(id, agent.as_ref(), home, None);
    if let Some(store) = host.durable.as_mut() {
        if let Ok(value) = serde_json::to_value(&capsule) {
            let _ = store.put_capsule(id.0, value, false);
        }
        drain_durable_counters(host, shared);
    }
    host.store.store(capsule);
    shared.metrics.lock().deactivations += 1;
}

fn do_activate(host: &mut HostState, shared: &Arc<Shared>, id: AgentId) {
    let Some(capsule) = host.store.load(id) else {
        return;
    };
    match shared.registry.rehydrate(&capsule) {
        Ok(agent) => {
            host.active.insert(id, agent);
            shared.metrics.lock().activations += 1;
            let parent = host.current_trace;
            run_callback(host, shared, id, parent, "on_activation", |a, ctx| {
                a.on_activation(ctx)
            });
            let pending = host.pending.remove(&id).unwrap_or_default();
            shared.parked.lock().remove(&id);
            for msg in pending {
                shared.enqueue_deliver(host.id, msg);
            }
        }
        Err(_) => {
            host.store.store(capsule);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Default, Serialize, Deserialize)]
    struct Hopper {
        hops: u32,
    }

    impl Agent for Hopper {
        fn agent_type(&self) -> &'static str {
            "hopper"
        }
        fn snapshot(&self) -> serde_json::Value {
            serde_json::to_value(self).unwrap()
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            if msg.is("hop") {
                let dest: u32 = msg.payload_as().unwrap();
                ctx.dispatch_self(HostId(dest));
            }
        }
        fn on_arrival(&mut self, ctx: &mut Ctx<'_>) {
            self.hops += 1;
            ctx.note(format!(
                "hopper arrived at {} (hops={})",
                ctx.host(),
                self.hops
            ));
        }
    }

    #[test]
    fn threaded_world_delivers_and_migrates() {
        let mut builder = ThreadWorldBuilder::new(11);
        builder.register_serde::<Hopper>("hopper");
        let a = builder.add_host("a");
        let b = builder.add_host("b");
        let world = builder.start();
        let id = world.create_agent(a, Box::new(Hopper::default())).unwrap();
        world
            .send_external(id, Message::new("hop").with_payload(&b.0).unwrap())
            .unwrap();
        let status = world.run_until_idle(Duration::from_secs(5));
        assert!(status.is_idle(), "world must quiesce: {status}");
        let (metrics, trace) = world.shutdown();
        assert_eq!(metrics.migrations, 1);
        assert_eq!(metrics.migrations_rejected, 0);
        assert!(trace
            .events()
            .iter()
            .any(|e| e.label.contains("hopper arrived at host-2")));
    }

    #[test]
    fn threaded_round_trip_authenticates() {
        let mut builder = ThreadWorldBuilder::new(13);
        builder.register_serde::<Hopper>("hopper");
        let a = builder.add_host("a");
        let b = builder.add_host("b");
        let world = builder.start();
        let id = world.create_agent(a, Box::new(Hopper::default())).unwrap();
        world
            .send_external(id, Message::new("hop").with_payload(&b.0).unwrap())
            .unwrap();
        assert!(world.run_until_idle(Duration::from_secs(5)).is_idle());
        world
            .send_external(id, Message::new("hop").with_payload(&a.0).unwrap())
            .unwrap();
        assert!(world.run_until_idle(Duration::from_secs(5)).is_idle());
        let (metrics, _) = world.shutdown();
        assert_eq!(metrics.migrations, 2);
        assert_eq!(metrics.migrations_rejected, 0);
    }

    #[test]
    fn threaded_deactivate_activate_cycle() {
        let mut builder = ThreadWorldBuilder::new(17);
        builder.register_serde::<Hopper>("hopper");
        let a = builder.add_host("a");
        let world = builder.start();
        let id = world.create_agent(a, Box::new(Hopper { hops: 4 })).unwrap();
        assert!(world.run_until_idle(Duration::from_secs(5)).is_idle());
        world.deactivate_agent(id).unwrap();
        assert!(world.run_until_idle(Duration::from_secs(5)).is_idle());
        world.activate_agent(id).unwrap();
        assert!(world.run_until_idle(Duration::from_secs(5)).is_idle());
        let (metrics, _) = world.shutdown();
        assert_eq!(metrics.deactivations, 1);
        assert_eq!(metrics.activations, 1);
    }

    #[test]
    fn unknown_host_create_is_an_error() {
        let builder = ThreadWorldBuilder::new(1);
        let world = builder.start();
        assert!(world
            .create_agent(HostId(42), Box::new(Hopper::default()))
            .is_err());
        world.shutdown();
    }

    /// Clones itself once on request; the clone notes its arrival.
    #[derive(Debug, Default, Serialize, Deserialize)]
    struct Mitosis {
        generation: u32,
    }

    impl Agent for Mitosis {
        fn agent_type(&self) -> &'static str {
            "mitosis"
        }
        fn snapshot(&self) -> serde_json::Value {
            serde_json::to_value(self).unwrap()
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            if msg.is("divide") {
                self.generation += 1;
                ctx.clone_self();
            }
        }
        fn on_clone(&mut self, ctx: &mut Ctx<'_>) {
            ctx.note(format!("clone born at generation {}", self.generation));
        }
    }

    #[test]
    fn threaded_clone_copies_state() {
        let mut builder = ThreadWorldBuilder::new(19);
        builder.register_serde::<Mitosis>("mitosis");
        let a = builder.add_host("a");
        let world = builder.start();
        let cell = world.create_agent(a, Box::new(Mitosis::default())).unwrap();
        world.send_external(cell, Message::new("divide")).unwrap();
        assert!(world.run_until_idle(Duration::from_secs(5)).is_idle());
        let (metrics, trace) = world.shutdown();
        assert_eq!(metrics.agents_created, 2, "original + clone");
        assert!(trace
            .events()
            .iter()
            .any(|e| e.label.contains("clone born at generation 1")));
    }

    /// Manager that retracts a named agent home on request.
    #[derive(Debug, Serialize, Deserialize)]
    struct Manager {
        target: AgentId,
        home: HostId,
    }

    impl Agent for Manager {
        fn agent_type(&self) -> &'static str {
            "manager"
        }
        fn snapshot(&self) -> serde_json::Value {
            serde_json::to_value(self).unwrap()
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            if msg.is("recall") {
                ctx.retract(self.target, self.home);
            }
        }
    }

    #[test]
    fn threaded_retract_pulls_agent_home() {
        let mut builder = ThreadWorldBuilder::new(23);
        builder.register_serde::<Hopper>("hopper");
        builder.register_serde::<Manager>("manager");
        let a = builder.add_host("a");
        let b = builder.add_host("b");
        let world = builder.start();
        let hopper = world.create_agent(a, Box::new(Hopper::default())).unwrap();
        let manager = world
            .create_agent(
                a,
                Box::new(Manager {
                    target: hopper,
                    home: a,
                }),
            )
            .unwrap();
        world
            .send_external(hopper, Message::new("hop").with_payload(&b.0).unwrap())
            .unwrap();
        assert!(world.run_until_idle(Duration::from_secs(5)).is_idle());
        world
            .send_external(manager, Message::new("recall"))
            .unwrap();
        assert!(world.run_until_idle(Duration::from_secs(5)).is_idle());
        let (metrics, trace) = world.shutdown();
        assert_eq!(metrics.migrations, 2, "hop out + retracted home");
        assert_eq!(
            metrics.migrations_rejected, 0,
            "retraction passes authentication"
        );
        assert!(trace
            .events()
            .iter()
            .any(|e| e.label.contains("hopper arrived at host-1 (hops=2)")));
    }

    /// Janitor that deactivates or disposes a named target on request.
    #[derive(Debug, Serialize, Deserialize)]
    struct Janitor {
        target: AgentId,
    }

    impl Agent for Janitor {
        fn agent_type(&self) -> &'static str {
            "janitor"
        }
        fn snapshot(&self) -> serde_json::Value {
            serde_json::to_value(self).unwrap()
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
            if msg.is("hibernate") {
                ctx.deactivate(self.target);
            } else if msg.is("scrap") {
                ctx.dispose(self.target);
            } else if msg.is("wake") {
                ctx.activate(self.target);
            }
        }
    }

    /// Regression: disposing an agent while it is deactivated must drop
    /// its parked messages (dead-lettered, spans closed) instead of
    /// leaking them in the pending map and the parked-depth gauge.
    #[test]
    fn dispose_while_deactivated_dead_letters_parked_messages() {
        let mut builder = ThreadWorldBuilder::new(29);
        builder.register_serde::<Hopper>("hopper");
        builder.register_serde::<Janitor>("janitor");
        let a = builder.add_host("a");
        let world = builder.start();
        let hopper = world.create_agent(a, Box::new(Hopper::default())).unwrap();
        let janitor = world
            .create_agent(a, Box::new(Janitor { target: hopper }))
            .unwrap();
        assert!(world.run_until_idle(Duration::from_secs(5)).is_idle());
        world
            .send_external(janitor, Message::new("hibernate"))
            .unwrap();
        assert!(world.run_until_idle(Duration::from_secs(5)).is_idle());
        // These park: the recipient is deactivated.
        world.send_external(hopper, Message::new("nudge")).unwrap();
        world.send_external(hopper, Message::new("nudge")).unwrap();
        assert!(world.run_until_idle(Duration::from_secs(5)).is_idle());
        assert_eq!(world.parked_total(), 2, "both messages should be parked");
        world.send_external(janitor, Message::new("scrap")).unwrap();
        assert!(world.run_until_idle(Duration::from_secs(5)).is_idle());
        assert_eq!(world.parked_total(), 0, "dispose must clear parked depth");
        let (metrics, _) = world.shutdown();
        assert_eq!(metrics.deactivations, 1);
        assert_eq!(metrics.agents_disposed, 1);
        assert_eq!(
            metrics.messages_dead_lettered, 2,
            "parked messages dead-letter on dispose instead of leaking"
        );
    }

    #[test]
    fn multi_worker_world_migrates_and_authenticates() {
        let mut builder = ThreadWorldBuilder::new(31);
        builder.workers(4);
        builder.register_serde::<Hopper>("hopper");
        let a = builder.add_host("a");
        let b = builder.add_host("b");
        let world = builder.start();
        let mut ids = Vec::new();
        for _ in 0..16 {
            ids.push(world.create_agent(a, Box::new(Hopper::default())).unwrap());
        }
        for id in &ids {
            world
                .send_external(*id, Message::new("hop").with_payload(&b.0).unwrap())
                .unwrap();
        }
        assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());
        for id in &ids {
            world
                .send_external(*id, Message::new("hop").with_payload(&a.0).unwrap())
                .unwrap();
        }
        assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());
        let (metrics, _) = world.shutdown();
        assert_eq!(metrics.migrations, 32, "out and home for all 16");
        assert_eq!(
            metrics.migrations_rejected, 0,
            "permits verify on the worker that issued them"
        );
        assert_eq!(metrics.messages_dead_lettered, 0);
    }

    #[test]
    fn multi_worker_clone_lands_on_its_owning_worker() {
        let mut builder = ThreadWorldBuilder::new(37);
        builder.workers(4);
        builder.register_serde::<Mitosis>("mitosis");
        let a = builder.add_host("a");
        let world = builder.start();
        let mut cells = Vec::new();
        for _ in 0..8 {
            cells.push(world.create_agent(a, Box::new(Mitosis::default())).unwrap());
        }
        for cell in &cells {
            world.send_external(*cell, Message::new("divide")).unwrap();
        }
        assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());
        let (metrics, trace) = world.shutdown();
        assert_eq!(metrics.agents_created, 16, "8 originals + 8 clones");
        assert_eq!(
            trace
                .events()
                .iter()
                .filter(|e| e.label.contains("clone born at generation 1"))
                .count(),
            8,
            "every clone ran on_clone wherever its id hashed to"
        );
    }

    #[test]
    fn multi_worker_admin_cycle_reaches_sibling_workers() {
        let mut builder = ThreadWorldBuilder::new(41);
        builder.workers(4);
        builder.register_serde::<Hopper>("hopper");
        builder.register_serde::<Janitor>("janitor");
        let a = builder.add_host("a");
        let world = builder.start();
        // Enough targets that some land on a different worker than their
        // janitor — that's the code path under test.
        let mut pairs = Vec::new();
        for _ in 0..8 {
            let h = world.create_agent(a, Box::new(Hopper::default())).unwrap();
            let j = world
                .create_agent(a, Box::new(Janitor { target: h }))
                .unwrap();
            pairs.push((h, j));
        }
        assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());
        for (_, j) in &pairs {
            world.send_external(*j, Message::new("hibernate")).unwrap();
        }
        assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());
        for (_, j) in &pairs {
            world.send_external(*j, Message::new("wake")).unwrap();
        }
        assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());
        for (_, j) in &pairs {
            world.send_external(*j, Message::new("scrap")).unwrap();
        }
        assert!(world.run_until_idle(Duration::from_secs(10)).is_idle());
        let (metrics, _) = world.shutdown();
        assert_eq!(metrics.deactivations, 8);
        assert_eq!(metrics.activations, 8);
        assert_eq!(metrics.agents_disposed, 8);
    }
}
