//! # agentsim — an Aglet-style mobile-agent platform
//!
//! This crate is the mobile-agent substrate of the `abcrm` reproduction of
//! *"An Agent-Based Consumer Recommendation Mechanism"* (Wang, Hwang &
//! Wang, AINA 2004). The paper builds on IBM Aglets; this crate reproduces
//! the aglet behaviours the mechanism depends on:
//!
//! * **lifecycle** — create, dispatch (migrate with state), deactivate into
//!   stable storage, activate, dispose ([`agent::Agent`]);
//! * **messaging** — asynchronous typed messages with request/response
//!   correlation ([`message::Message`]);
//! * **migration** — agents serialize into [`agent::AgentCapsule`]s and
//!   rehydrate through an [`agent::AgentRegistry`] at the destination;
//! * **security** — single-use travel permits authenticate returning
//!   mobile agents ([`security`]), per the paper's §4.1 principles 2 and 5;
//! * **networking** — a latency/bandwidth/loss link model ([`net`]).
//!
//! Two runtimes execute the same [`agent::Agent`] code:
//!
//! * [`sim::SimWorld`] — a deterministic discrete-event world (used by all
//!   benchmarks; same seed ⇒ same execution);
//! * [`thread_net::ThreadWorld`] — one OS thread per host over crossbeam
//!   channels (demonstrates runtime-agnosticism on real concurrency).
//!
//! ## Quickstart
//!
//! ```
//! use agentsim::prelude::*;
//! use serde::{Serialize, Deserialize};
//!
//! /// A mobile agent that visits a host and reports back in the trace.
//! #[derive(Serialize, Deserialize)]
//! struct Scout;
//!
//! impl Agent for Scout {
//!     fn agent_type(&self) -> &'static str { "scout" }
//!     fn snapshot(&self) -> serde_json::Value { serde_json::json!(null) }
//!     fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Message) {
//!         if msg.is("visit") {
//!             let dest: u32 = msg.payload_as().expect("host id payload");
//!             ctx.dispatch_self(HostId(dest));
//!         }
//!     }
//!     fn on_arrival(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.note("scout arrived");
//!     }
//! }
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut world = SimWorld::new(42);
//! world.registry_mut().register_serde::<Scout>("scout");
//! let home = world.add_host("buyer-agent-server");
//! let market = world.add_host("marketplace");
//! let scout = world.create_agent(home, Box::new(Scout))?;
//! world.send_external(scout, Message::new("visit").with_payload(&market.0)?)?;
//! world.run_until_idle();
//! assert_eq!(world.location(scout), Some(Location::Active(market)));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod agent;
pub mod chaos;
pub mod clock;
pub mod durable;
pub mod error;
pub mod ids;
pub mod intern;
pub mod message;
pub mod metrics;
pub mod net;
pub mod overload;
pub mod payload;
pub mod security;
pub mod shard;
pub mod sim;
pub mod storage;
pub mod supervise;
pub mod telemetry;
pub mod thread_net;
pub mod trace;

/// Convenient glob import of the commonly used types.
pub mod prelude {
    pub use crate::agent::{Agent, AgentCapsule, AgentRegistry, Ctx, DurablePolicy};
    pub use crate::chaos::{ChaosConfig, ChaosEvent, ChaosPlan, Fault};
    pub use crate::clock::{SimDuration, SimTime};
    pub use crate::durable::{DurabilityConfig, DurableState, DurableStore, IntentState};
    pub use crate::error::PlatformError;
    pub use crate::ids::{AgentId, HostId, MessageId};
    pub use crate::intern::{intern, InternedStr};
    pub use crate::message::Message;
    pub use crate::metrics::Metrics;
    pub use crate::net::{LinkSpec, Topology};
    pub use crate::overload::{MailboxConfig, MailboxPolicy};
    pub use crate::payload::Payload;
    pub use crate::security::{Authenticator, TravelPermit};
    pub use crate::shard::ShardedSimWorld;
    pub use crate::sim::{Location, SimWorld};
    pub use crate::supervise::{RestoreDecision, SupervisionConfig, Supervisor, Verdict};
    pub use crate::telemetry::{
        Histogram, HopKind, Registry, Span, SpanEvent, SpanEventKind, Telemetry, TraceCtx,
    };
    pub use crate::thread_net::{DrainStatus, StallDiagnostic, ThreadWorld, ThreadWorldBuilder};
    pub use crate::trace::{Trace, TraceEvent};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exports_compile() {
        use crate::prelude::*;
        let world = SimWorld::new(0);
        let _ = format!("{world:?}");
    }
}
