//! Stable storage for deactivated agents.
//!
//! Paper §4.1, principle 3: when a BRA dispatches its MBA, the BSMA calls
//! `Aglet.deactivate()` which *"can store the BRA to recommendation
//! mechanism storage"*; on the MBA's authenticated return, `Aglet.active()`
//! loads it back. This module is that storage: a capsule store with byte
//! accounting, so the "deactivation frees memory" claim is measurable
//! (experiment E8).

use crate::agent::AgentCapsule;
use crate::ids::AgentId;
use std::collections::HashMap;

/// Capsule store for deactivated agents on one host.
#[derive(Debug, Default)]
pub struct DeactivatedStore {
    capsules: HashMap<AgentId, AgentCapsule>,
    stored_bytes: usize,
    total_stores: u64,
    total_loads: u64,
}

impl DeactivatedStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Persist a capsule. Replaces any capsule already stored for the same
    /// agent (byte accounting is adjusted).
    pub fn store(&mut self, capsule: AgentCapsule) {
        self.total_stores += 1;
        self.stored_bytes += capsule.wire_size();
        if let Some(old) = self.capsules.insert(capsule.id, capsule) {
            self.stored_bytes -= old.wire_size();
        }
    }

    /// Remove and return the capsule for `id`, if present.
    pub fn load(&mut self, id: AgentId) -> Option<AgentCapsule> {
        let capsule = self.capsules.remove(&id)?;
        self.total_loads += 1;
        self.stored_bytes -= capsule.wire_size();
        Some(capsule)
    }

    /// Whether a capsule for `id` is stored.
    pub fn contains(&self, id: AgentId) -> bool {
        self.capsules.contains_key(&id)
    }

    /// Number of stored capsules.
    pub fn len(&self) -> usize {
        self.capsules.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.capsules.is_empty()
    }

    /// Total serialized bytes currently in stable storage.
    pub fn stored_bytes(&self) -> usize {
        self.stored_bytes
    }

    /// Lifetime counters: (stores, loads).
    pub fn counters(&self) -> (u64, u64) {
        (self.total_stores, self.total_loads)
    }

    /// Iterate over stored agent ids (unordered).
    pub fn ids(&self) -> impl Iterator<Item = AgentId> + '_ {
        self.capsules.keys().copied()
    }

    /// Discard every stored capsule, returning the ids that were lost.
    /// Models stable storage dying with its host in a crash.
    pub fn drain(&mut self) -> Vec<AgentId> {
        self.stored_bytes = 0;
        self.capsules.drain().map(|(id, _)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::HostId;

    fn capsule(id: u64, payload_len: usize) -> AgentCapsule {
        AgentCapsule {
            id: AgentId(id),
            agent_type: "t".into(),
            state: serde_json::json!(vec![7u8; payload_len]).into(),
            home: HostId(0),
            permit: None,
            trace: None,
            deadline: None,
        }
    }

    #[test]
    fn store_then_load_round_trips() {
        let mut s = DeactivatedStore::new();
        s.store(capsule(1, 10));
        assert!(s.contains(AgentId(1)));
        assert_eq!(s.len(), 1);
        let c = s.load(AgentId(1)).unwrap();
        assert_eq!(c.id, AgentId(1));
        assert!(s.is_empty());
        assert_eq!(s.stored_bytes(), 0);
    }

    #[test]
    fn load_missing_returns_none() {
        let mut s = DeactivatedStore::new();
        assert!(s.load(AgentId(9)).is_none());
    }

    #[test]
    fn byte_accounting_tracks_store_and_load() {
        let mut s = DeactivatedStore::new();
        let c1 = capsule(1, 100);
        let c2 = capsule(2, 300);
        let expected = c1.wire_size() + c2.wire_size();
        s.store(c1);
        s.store(c2);
        assert_eq!(s.stored_bytes(), expected);
        s.load(AgentId(1)).unwrap();
        assert!(s.stored_bytes() < expected);
    }

    #[test]
    fn restore_same_agent_replaces_capsule() {
        let mut s = DeactivatedStore::new();
        s.store(capsule(1, 10));
        s.store(capsule(1, 500));
        assert_eq!(s.len(), 1);
        let c = s.load(AgentId(1)).unwrap();
        assert!(c.wire_size() > 400);
        assert_eq!(s.stored_bytes(), 0);
    }

    #[test]
    fn drain_discards_everything_and_reports_ids() {
        let mut s = DeactivatedStore::new();
        s.store(capsule(1, 10));
        s.store(capsule(2, 10));
        let mut lost = s.drain();
        lost.sort_unstable();
        assert_eq!(lost, vec![AgentId(1), AgentId(2)]);
        assert!(s.is_empty());
        assert_eq!(s.stored_bytes(), 0);
    }

    #[test]
    fn counters_track_lifetime_operations() {
        let mut s = DeactivatedStore::new();
        s.store(capsule(1, 1));
        s.store(capsule(2, 1));
        s.load(AgentId(1));
        s.load(AgentId(3)); // miss, not counted
        assert_eq!(s.counters(), (2, 1));
    }
}
