//! Interned immutable strings for message kinds and agent type tags.
//!
//! Every message carries a `kind` and every capsule an `agent_type`, and
//! both are drawn from a small fixed vocabulary (the paper's performatives:
//! `"query-request"`, `"mba-register"`, …). Storing them as `String` made
//! each `Message::new` and each capsule snapshot allocate and copy; an
//! [`InternedStr`] is an `Arc<str>` handed out by a global table, so
//! constructing the same kind twice yields two pointer-sized handles onto
//! one allocation, and `clone` is a reference-count bump.

use serde::{Deserialize, Error, Serialize, Value};
use std::borrow::Borrow;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::{Arc, Mutex, OnceLock};

/// Process-wide intern table. A plain mutex: lookups are a hash + lock and
/// only unique spellings ever allocate.
fn table() -> &'static Mutex<HashSet<Arc<str>>> {
    static TABLE: OnceLock<Mutex<HashSet<Arc<str>>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashSet::new()))
}

/// A cheaply cloneable, interned, immutable string.
///
/// Two `InternedStr`s with equal text always share one allocation, so
/// equality checks compare pointers before falling back to bytes.
#[derive(Clone)]
pub struct InternedStr(Arc<str>);

impl InternedStr {
    /// Intern `s`, returning a shared handle.
    pub fn new(s: &str) -> Self {
        let mut t = table().lock().expect("intern table poisoned");
        if let Some(existing) = t.get(s) {
            return InternedStr(Arc::clone(existing));
        }
        let arc: Arc<str> = Arc::from(s);
        t.insert(Arc::clone(&arc));
        InternedStr(arc)
    }

    /// View as a plain `&str`.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the string is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Intern `s` (free-function form used by hot paths).
pub fn intern(s: &str) -> InternedStr {
    InternedStr::new(s)
}

impl Deref for InternedStr {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for InternedStr {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Borrow<str> for InternedStr {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl PartialEq for InternedStr {
    fn eq(&self, other: &Self) -> bool {
        // Interned: equal text implies the same allocation.
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for InternedStr {}

impl Hash for InternedStr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Must agree with `str::hash` so `Borrow<str>` lookups work.
        self.0.hash(state);
    }
}

impl PartialOrd for InternedStr {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for InternedStr {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_str().cmp(other.as_str())
    }
}

impl PartialEq<str> for InternedStr {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for InternedStr {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for InternedStr {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<InternedStr> for str {
    fn eq(&self, other: &InternedStr) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<InternedStr> for &str {
    fn eq(&self, other: &InternedStr) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<InternedStr> for String {
    fn eq(&self, other: &InternedStr) -> bool {
        self.as_str() == other.as_str()
    }
}

impl From<&str> for InternedStr {
    fn from(s: &str) -> Self {
        InternedStr::new(s)
    }
}

impl From<String> for InternedStr {
    fn from(s: String) -> Self {
        InternedStr::new(&s)
    }
}

impl From<&String> for InternedStr {
    fn from(s: &String) -> Self {
        InternedStr::new(s)
    }
}

impl From<InternedStr> for String {
    fn from(s: InternedStr) -> Self {
        s.as_str().to_string()
    }
}

impl Default for InternedStr {
    fn default() -> Self {
        InternedStr::new("")
    }
}

impl fmt::Display for InternedStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for InternedStr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl Serialize for InternedStr {
    fn serialize_value(&self) -> Value {
        Value::String(self.as_str().to_string())
    }
}

impl Deserialize for InternedStr {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(InternedStr::new(s)),
            other => Err(Error::msg(format!(
                "InternedStr: expected string, got {other}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_text_shares_one_allocation() {
        let a = intern("query-request");
        let b = intern("query-request");
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
    }

    #[test]
    fn compares_against_plain_strings() {
        let k = intern("mba-register");
        assert_eq!(k, "mba-register");
        assert_eq!("mba-register", k);
        assert_eq!(k, String::from("mba-register"));
        assert_ne!(k, "mba-returned");
        assert_eq!(k.as_str(), "mba-register");
    }

    #[test]
    fn hashes_like_str_for_map_lookups() {
        use std::collections::HashMap;
        let mut m: HashMap<InternedStr, u32> = HashMap::new();
        m.insert(intern("pa-load"), 7);
        assert_eq!(m.get("pa-load"), Some(&7));
    }

    #[test]
    fn serde_round_trips() {
        let k = intern("buy-request");
        let v = k.serialize_value();
        assert_eq!(v.as_str(), Some("buy-request"));
        let back = InternedStr::deserialize_value(&v).unwrap();
        assert_eq!(back, k);
        assert!(InternedStr::deserialize_value(&Value::Null).is_err());
    }
}
