//! Cheap-to-clone, encode-once message/capsule payloads.
//!
//! Every message and every migration capsule used to carry a bare
//! `serde_json::Value`: reading it cloned the whole tree, cloning the
//! message deep-copied it, and every `wire_size` call re-serialized it to a
//! fresh `String`. [`Payload`] shares one immutable value tree behind an
//! `Arc` and caches its serialized form, so:
//!
//! * `clone` is a reference-count bump (fan-out and routing hops are free);
//! * [`Payload::typed`] deserializes *by reference* — no tree copy;
//! * [`Payload::encoded_len`] (which drives `wire_size` and therefore the
//!   network delay model) is computed once per payload and shared by all
//!   clones; the full encoding ([`Payload::encoded`]) is materialized as
//!   [`bytes::Bytes`] only when actual bytes are needed.
//!
//! # Determinism invariant
//!
//! `encoded_len` must equal `serde_json::to_string(&value).len()` exactly:
//! transfer delays derive from wire sizes, and the Fig 4.1/4.2/4.3 workflow
//! traces are byte-identical only if every payload reports the same size as
//! the pre-cache implementation. The fast length pass below mirrors the
//! `Value` `Display` impl case by case and is property-tested against it.

use bytes::Bytes;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Error, Serialize, Value};
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

struct Inner {
    value: Value,
    encoded_len: OnceLock<usize>,
    encoded: OnceLock<Bytes>,
}

/// An immutable, cheaply cloneable message/capsule payload.
///
/// Dereferences to the underlying [`Value`] for reads (`payload.get(..)`,
/// `payload["key"]`, `payload.as_str()`); build one from any serializable
/// value with [`Payload::encode`] or from an existing tree via `From`.
#[derive(Clone)]
pub struct Payload {
    inner: Arc<Inner>,
}

impl Payload {
    /// The shared null payload (what `Message::new` starts with).
    pub fn null() -> Payload {
        static NULL: OnceLock<Payload> = OnceLock::new();
        NULL.get_or_init(|| Payload::from(Value::Null)).clone()
    }

    /// Serialize `value` into a payload.
    ///
    /// # Errors
    ///
    /// Returns the underlying serialization error, if any.
    pub fn encode<T: Serialize>(value: &T) -> serde_json::Result<Payload> {
        Ok(Payload::from(serde_json::to_value(value)?))
    }

    /// The underlying value tree.
    pub fn value(&self) -> &Value {
        &self.inner.value
    }

    /// Clone out the underlying value tree (one deep copy; prefer
    /// [`Payload::value`] or [`Payload::typed`] on hot paths).
    pub fn to_value(&self) -> Value {
        self.inner.value.clone()
    }

    /// Deserialize into a concrete type, by reference — the tree is not
    /// cloned.
    ///
    /// # Errors
    ///
    /// Returns the underlying deserialization error if the payload does not
    /// match `T`.
    pub fn typed<T: DeserializeOwned>(&self) -> serde_json::Result<T> {
        T::deserialize_value(&self.inner.value)
    }

    /// Project the object member `key` into its own payload (one subtree
    /// clone — the routing-hop replacement for re-parsing a whole
    /// envelope). Returns the null payload if absent.
    pub fn project(&self, key: &str) -> Payload {
        match self.inner.value.get(key) {
            Some(v) => Payload::from(v.clone()),
            None => Payload::null(),
        }
    }

    /// Length in bytes of the compact JSON encoding. Computed once per
    /// payload (shared by all clones) without materializing the string.
    pub fn encoded_len(&self) -> usize {
        if let Some(b) = self.inner.encoded.get() {
            return b.len();
        }
        *self
            .inner
            .encoded_len
            .get_or_init(|| encoded_len_of(&self.inner.value))
    }

    /// The compact JSON encoding, materialized once and shared by all
    /// clones.
    pub fn encoded(&self) -> Bytes {
        self.inner
            .encoded
            .get_or_init(|| Bytes::from(self.inner.value.to_string()))
            .clone()
    }

    /// Whether two payloads share the same underlying tree (used by tests
    /// to assert zero-copy behaviour).
    pub fn ptr_eq(a: &Payload, b: &Payload) -> bool {
        Arc::ptr_eq(&a.inner, &b.inner)
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload::null()
    }
}

impl Deref for Payload {
    type Target = Value;
    fn deref(&self) -> &Value {
        &self.inner.value
    }
}

impl From<Value> for Payload {
    fn from(value: Value) -> Self {
        Payload {
            inner: Arc::new(Inner {
                value,
                encoded_len: OnceLock::new(),
                encoded: OnceLock::new(),
            }),
        }
    }
}

impl From<&Value> for Payload {
    fn from(value: &Value) -> Self {
        Payload::from(value.clone())
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        Payload::ptr_eq(self, other) || self.inner.value == other.inner.value
    }
}

impl PartialEq<Value> for Payload {
    fn eq(&self, other: &Value) -> bool {
        self.inner.value == *other
    }
}

impl PartialEq<Payload> for Value {
    fn eq(&self, other: &Payload) -> bool {
        *self == other.inner.value
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner.value, f)
    }
}

impl fmt::Display for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.inner.value, f)
    }
}

impl Serialize for Payload {
    fn serialize_value(&self) -> Value {
        self.inner.value.clone()
    }
}

impl Deserialize for Payload {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(Payload::from(v.clone()))
    }
}

// ---------------------------------------------------------------------------
// Fast exact length of the compact JSON encoding.
// ---------------------------------------------------------------------------

/// Byte length of `value.to_string()` without building the string. Each arm
/// mirrors the corresponding `Display` arm of the serde shim's `Value`.
fn encoded_len_of(value: &Value) -> usize {
    match value {
        Value::Null => 4,
        Value::Bool(b) => {
            if *b {
                4
            } else {
                5
            }
        }
        Value::Number(n) => number_len(n),
        Value::String(s) => escaped_len(s),
        Value::Array(a) => {
            // "[" + "]" + commas + elements
            2 + a.len().saturating_sub(1) + a.iter().map(encoded_len_of).sum::<usize>()
        }
        Value::Object(m) => {
            // "{" + "}" + commas + per entry: key + ":" + value
            2 + m.len().saturating_sub(1)
                + m.iter()
                    .map(|(k, v)| escaped_len(k) + 1 + encoded_len_of(v))
                    .sum::<usize>()
        }
    }
}

fn number_len(n: &serde_json::Number) -> usize {
    if !n.is_f64() {
        // Integer storage: either unsigned-representable or negative.
        if let Some(u) = n.as_u64() {
            return digits(u);
        }
        if let Some(i) = n.as_i64() {
            return 1 + digits(i.unsigned_abs());
        }
    }
    let x = n.as_f64();
    if !x.is_finite() {
        return 4; // "null"
    }
    if x == x.trunc() && x.abs() < 1e15 {
        // printed as "{x:.1}": sign + integer digits + ".0"
        let sign = usize::from(x.is_sign_negative());
        return sign + digits(x.abs().trunc() as u64) + 2;
    }
    // General floats go through the formatter; count without allocating.
    use fmt::Write;
    let mut counter = LenCounter(0);
    let _ = write!(counter, "{x}");
    counter.0
}

/// `fmt::Write` sink that counts bytes instead of storing them.
struct LenCounter(usize);

impl fmt::Write for LenCounter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.0 += s.len();
        Ok(())
    }
}

fn digits(mut n: u64) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

/// `2` for the quotes plus the escaped length of every char, mirroring the
/// shim's `write_escaped`.
fn escaped_len(s: &str) -> usize {
    let mut len = 2;
    for c in s.chars() {
        len += match c {
            '"' | '\\' | '\n' | '\r' | '\t' | '\u{08}' | '\u{0C}' => 2,
            c if (c as u32) < 0x20 => 6, // \uXXXX
            c => c.len_utf8(),
        };
    }
    len
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn assert_len_matches(v: Value) {
        let p = Payload::from(v.clone());
        let text = serde_json::to_string(&v).unwrap();
        assert_eq!(p.encoded_len(), text.len(), "length mismatch for {text:?}");
        assert_eq!(&p.encoded()[..], text.as_bytes());
    }

    #[test]
    fn encoded_len_matches_to_string_exactly() {
        assert_len_matches(json!(null));
        assert_len_matches(json!(true));
        assert_len_matches(json!(false));
        assert_len_matches(json!(0));
        assert_len_matches(json!(10));
        assert_len_matches(json!(-1));
        assert_len_matches(json!(u64::MAX));
        assert_len_matches(json!(i64::MIN));
        assert_len_matches(json!(1.5));
        assert_len_matches(json!(-2.0));
        assert_len_matches(json!(0.0));
        assert_len_matches(json!(3.25e-9));
        assert_len_matches(json!(1e18));
        assert_len_matches(json!(f64::NAN));
        assert_len_matches(json!(""));
        assert_len_matches(json!("plain"));
        assert_len_matches(json!("quote\"back\\slash\nnewline\ttab"));
        assert_len_matches(json!("\u{01}control\u{1f}"));
        assert_len_matches(json!("unicode: ünïcødé ✓"));
        assert_len_matches(json!([1, 2, 3]));
        assert_len_matches(json!([]));
        assert_len_matches(json!({}));
        assert_len_matches(json!({"a": [1, {"b": "c"}], "d": null}));
    }

    #[test]
    fn clone_shares_tree_and_encoding() {
        let p = Payload::from(json!({"items": [1, 2, 3]}));
        let q = p.clone();
        assert!(Payload::ptr_eq(&p, &q));
        let a = p.encoded();
        let b = q.encoded();
        assert!(Bytes::ptr_eq(&a, &b), "encoding computed once, shared");
        assert_eq!(p.encoded_len(), a.len());
    }

    #[test]
    fn typed_deserializes_without_cloning_the_tree() {
        /// Captures the address of the `Value` handed to `deserialize_value`.
        struct AddrProbe(usize);
        impl Deserialize for AddrProbe {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                Ok(AddrProbe(v as *const Value as usize))
            }
        }
        let p = Payload::from(json!({"big": "payload"}));
        let probe: AddrProbe = p.typed().unwrap();
        assert_eq!(
            probe.0,
            p.value() as *const Value as usize,
            "typed() must pass the payload's own tree, not a copy"
        );
    }

    #[test]
    fn project_extracts_the_inner_payload() {
        let envelope = Payload::from(json!({"kind": "ping", "payload": {"n": 7}}));
        let inner = envelope.project("payload");
        assert_eq!(inner["n"].as_u64(), Some(7));
        assert_eq!(envelope.project("missing"), Payload::null());
    }

    #[test]
    fn equality_and_serde_round_trip() {
        let p = Payload::from(json!({"a": 1}));
        assert_eq!(p, json!({"a": 1}));
        assert_eq!(json!({"a": 1}), p);
        let v = p.serialize_value();
        let back = Payload::deserialize_value(&v).unwrap();
        assert_eq!(back, p);
        assert!(Payload::null().is_null());
    }
}
