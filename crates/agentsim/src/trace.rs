//! World trace: an ordered record of labelled events.
//!
//! Workflow implementations call [`crate::agent::Ctx::note`] with labels
//! like `"fig4.2/step3"`; tests assert the label sequence matches the
//! paper's numbered figures (experiments E2–E4).

use crate::clock::SimTime;
use crate::ids::AgentId;
use serde::{Deserialize, Serialize};

/// One labelled trace event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulated time the note was recorded.
    pub at: SimTime,
    /// Agent that emitted the note, if any (world-level notes have none).
    pub agent: Option<AgentId>,
    /// Free-form label, conventionally `"<figure>/<step>"` for workflow
    /// steps.
    pub label: String,
}

/// Append-only event trace.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event.
    pub fn record(&mut self, at: SimTime, agent: Option<AgentId>, label: impl Into<String>) {
        self.events.push(TraceEvent {
            at,
            agent,
            label: label.into(),
        });
    }

    /// All events in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Labels only, in order.
    pub fn labels(&self) -> Vec<&str> {
        self.events.iter().map(|e| e.label.as_str()).collect()
    }

    /// Labels starting with `prefix`, in order. Workflow tests use this to
    /// extract one figure's steps from an interleaved trace.
    pub fn labels_with_prefix(&self, prefix: &str) -> Vec<&str> {
        self.events
            .iter()
            .filter(|e| e.label.starts_with(prefix))
            .map(|e| e.label.as_str())
            .collect()
    }

    /// First event carrying `label`, if any.
    pub fn find(&self, label: &str) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.label == label)
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drop all events (used between bench iterations).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_preserve_order() {
        let mut t = Trace::new();
        t.record(SimTime(1), None, "a");
        t.record(SimTime(2), Some(AgentId(1)), "b");
        assert_eq!(t.labels(), vec!["a", "b"]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn prefix_filter_extracts_one_workflow() {
        let mut t = Trace::new();
        t.record(SimTime(1), None, "fig4.2/step1");
        t.record(SimTime(2), None, "fig4.3/step1");
        t.record(SimTime(3), None, "fig4.2/step2");
        assert_eq!(
            t.labels_with_prefix("fig4.2/"),
            vec!["fig4.2/step1", "fig4.2/step2"]
        );
    }

    #[test]
    fn find_returns_first_match() {
        let mut t = Trace::new();
        t.record(SimTime(1), None, "x");
        t.record(SimTime(5), None, "x");
        assert_eq!(t.find("x").unwrap().at, SimTime(1));
        assert!(t.find("y").is_none());
    }

    #[test]
    fn clear_empties_the_trace() {
        let mut t = Trace::new();
        t.record(SimTime(1), None, "a");
        t.clear();
        assert!(t.is_empty());
    }
}
