//! Overload protection primitives shared by both runtimes.
//!
//! A [`MailboxConfig`] bounds every agent's inbox to `capacity` messages;
//! [`MailboxPolicy`] decides what happens to traffic past the bound. The
//! bookkeeping lives in [`MailboxState`], which both the discrete-event
//! world and the thread-backed world drive through the same two calls:
//! [`MailboxState::on_enqueue`] when a delivery is scheduled and
//! [`MailboxState::on_consume`] when it is handed to the agent. Keeping the
//! state machine runtime-agnostic means the policies behave identically
//! under deterministic simulation and real concurrency.
//!
//! The module also hosts [`remaining_us`], the single definition of
//! deadline arithmetic (saturating at zero) used by `Ctx`, the runtimes and
//! the retry clamps in the application layer.

use crate::clock::SimTime;
use crate::ids::{AgentId, MessageId};
use crate::message::Message;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};

/// What to do with a message that arrives at a full mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MailboxPolicy {
    /// Drop the incoming message (the queue keeps its oldest work).
    #[default]
    RejectNewest,
    /// Evict the oldest queued message to make room for the incoming one.
    RejectOldest,
    /// Park the incoming message outside the mailbox until a slot frees;
    /// if it carries a deadline it is dropped once that passes.
    Block,
}

/// Per-agent mailbox bound, applied uniformly to every agent in a world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MailboxConfig {
    /// Maximum queued (scheduled but not yet handled) messages per agent.
    pub capacity: usize,
    /// Policy applied once `capacity` is reached.
    pub policy: MailboxPolicy,
}

impl MailboxConfig {
    /// A bound of `capacity` messages with the given full-mailbox policy.
    pub fn new(capacity: usize, policy: MailboxPolicy) -> Self {
        MailboxConfig { capacity, policy }
    }
}

/// Verdict for one enqueue attempt against the bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueVerdict {
    /// Deliver normally.
    Admit,
    /// Deliver, after the oldest queued message was marked for eviction
    /// (its in-flight copy is dropped at consume time).
    AdmitEvictingOldest,
    /// Drop the incoming message.
    Reject,
    /// Hold the incoming message in overflow (caller passes it to
    /// [`MailboxState::defer`]); it is released by a later consume.
    Defer,
}

/// Result of consuming a scheduled delivery.
#[derive(Debug, Default)]
pub struct ConsumeOutcome {
    /// The consumed message was evicted by reject-oldest: skip handling.
    pub tombstoned: bool,
    /// A deferred message freed by this consume; the caller schedules it.
    pub released: Option<Message>,
}

/// Mailbox-depth bookkeeping for one world.
///
/// With `config == None` the state only tracks depths (cheap map updates,
/// used by the thread world's stall diagnostics); no bound is enforced.
#[derive(Debug)]
pub struct MailboxState {
    config: Option<MailboxConfig>,
    depth: HashMap<AgentId, usize>,
    /// Queued message ids oldest-first, kept only under reject-oldest.
    order: HashMap<AgentId, VecDeque<MessageId>>,
    /// Ids evicted by reject-oldest, per recipient; their scheduled
    /// copies are dropped at consume time.
    tombstones: HashMap<AgentId, HashSet<MessageId>>,
    /// Deferred messages (block policy), oldest first.
    overflow: HashMap<AgentId, VecDeque<Message>>,
    max_depth_seen: usize,
}

impl MailboxState {
    /// Fresh state; `None` config tracks depths without enforcing a bound.
    pub fn new(config: Option<MailboxConfig>) -> Self {
        MailboxState {
            config,
            depth: HashMap::new(),
            order: HashMap::new(),
            tombstones: HashMap::new(),
            overflow: HashMap::new(),
            max_depth_seen: 0,
        }
    }

    /// The installed bound, if any.
    pub fn config(&self) -> Option<MailboxConfig> {
        self.config
    }

    /// Deepest mailbox observed so far (feeds the
    /// `overload.mailbox_depth_max` gauge).
    pub fn max_depth_seen(&self) -> usize {
        self.max_depth_seen
    }

    /// Current queued depth for `agent`.
    pub fn depth(&self, agent: AgentId) -> usize {
        self.depth.get(&agent).copied().unwrap_or(0)
    }

    /// Nonzero queued depths, sorted by agent id (stall diagnostics).
    pub fn depths(&self) -> Vec<(AgentId, usize)> {
        let mut v: Vec<_> = self
            .depth
            .iter()
            .filter(|(_, d)| **d > 0)
            .map(|(a, d)| (*a, *d))
            .collect();
        v.sort_unstable();
        v
    }

    /// Nonzero overflow (deferred) counts, sorted by agent id.
    pub fn deferred(&self) -> Vec<(AgentId, usize)> {
        let mut v: Vec<_> = self
            .overflow
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(a, q)| (*a, q.len()))
            .collect();
        v.sort_unstable();
        v
    }

    /// Account a delivery being scheduled for `to` and decide its fate.
    pub fn on_enqueue(&mut self, to: AgentId, id: MessageId) -> EnqueueVerdict {
        let Some(config) = self.config else {
            let d = self.depth.entry(to).or_insert(0);
            *d += 1;
            self.max_depth_seen = self.max_depth_seen.max(*d);
            return EnqueueVerdict::Admit;
        };
        let d = self.depth.entry(to).or_insert(0);
        if *d < config.capacity {
            *d += 1;
            self.max_depth_seen = self.max_depth_seen.max(*d);
            if config.policy == MailboxPolicy::RejectOldest {
                self.order.entry(to).or_default().push_back(id);
            }
            return EnqueueVerdict::Admit;
        }
        match config.policy {
            MailboxPolicy::RejectNewest => EnqueueVerdict::Reject,
            MailboxPolicy::RejectOldest => {
                let order = self.order.entry(to).or_default();
                match order.pop_front() {
                    Some(oldest) => {
                        self.tombstones.entry(to).or_default().insert(oldest);
                        order.push_back(id);
                        EnqueueVerdict::AdmitEvictingOldest
                    }
                    // Depth was filled by untracked traffic (shouldn't
                    // happen in steady state); fail safe by rejecting.
                    None => EnqueueVerdict::Reject,
                }
            }
            MailboxPolicy::Block => EnqueueVerdict::Defer,
        }
    }

    /// Store a message the bound deferred (verdict was
    /// [`EnqueueVerdict::Defer`]).
    pub fn defer(&mut self, msg: Message) {
        self.overflow.entry(msg.to).or_default().push_back(msg);
    }

    /// Account a scheduled delivery being consumed. Tombstoned copies must
    /// be skipped by the caller; a released message must be (re)scheduled.
    pub fn on_consume(&mut self, to: AgentId, id: MessageId) -> ConsumeOutcome {
        if self
            .tombstones
            .get_mut(&to)
            .is_some_and(|set| set.remove(&id))
        {
            if self.tombstones.get(&to).is_some_and(HashSet::is_empty) {
                self.tombstones.remove(&to);
            }
            // Its slot was handed to the evicting message at enqueue time.
            return ConsumeOutcome {
                tombstoned: true,
                released: None,
            };
        }
        // Decrement without ever materialising an entry: a consume for an
        // agent with no tracked depth (already forgotten, or never
        // enqueued) must not plant a junk zero in the map — over a long
        // run those would accumulate one per disposed agent. Emptied
        // entries are removed for the same reason. `saturating_sub` keeps
        // the gauge from underflowing no matter how calls interleave.
        if let Some(d) = self.depth.get_mut(&to) {
            *d = d.saturating_sub(1);
            if *d == 0 {
                self.depth.remove(&to);
            }
        }
        if let Some(order) = self.order.get_mut(&to) {
            if let Some(pos) = order.iter().position(|m| *m == id) {
                order.remove(pos);
            }
            if order.is_empty() {
                self.order.remove(&to);
            }
        }
        let mut released = None;
        if let Some(config) = self.config {
            if self.depth.get(&to).copied().unwrap_or(0) < config.capacity {
                if let Some(queue) = self.overflow.get_mut(&to) {
                    if let Some(msg) = queue.pop_front() {
                        let d = self.depth.entry(to).or_insert(0);
                        *d += 1;
                        self.max_depth_seen = self.max_depth_seen.max(*d);
                        if config.policy == MailboxPolicy::RejectOldest {
                            self.order.entry(to).or_default().push_back(msg.id);
                        }
                        released = Some(msg);
                    }
                    if self.overflow.get(&to).is_some_and(VecDeque::is_empty) {
                        self.overflow.remove(&to);
                    }
                }
            }
        }
        ConsumeOutcome {
            tombstoned: false,
            released,
        }
    }

    /// Forget all bookkeeping for `agent` (disposed or lost in a crash).
    pub fn forget(&mut self, agent: AgentId) {
        self.depth.remove(&agent);
        self.order.remove(&agent);
        self.tombstones.remove(&agent);
        self.overflow.remove(&agent);
    }
}

/// Microseconds of deadline budget left at `now`: `None` when no deadline
/// is set, otherwise saturating at zero once the deadline has passed.
pub fn remaining_us(deadline: Option<SimTime>, now: SimTime) -> Option<u64> {
    deadline.map(|d| d.0.saturating_sub(now.0))
}

/// Whether `deadline` has already passed at `now` (a deadline exactly at
/// `now` is still considered live, so zero-latency hops never self-expire).
pub fn deadline_expired(deadline: Option<SimTime>, now: SimTime) -> bool {
    matches!(deadline, Some(d) if now > d)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::panic)]

    use super::*;

    fn msg(id: u64, to: u64) -> Message {
        let mut m = Message::new("m");
        m.id = MessageId(id);
        m.to = AgentId(to);
        m
    }

    #[test]
    fn untracked_state_admits_everything_and_tracks_depth() {
        let mut mb = MailboxState::new(None);
        for i in 0..100 {
            assert_eq!(
                mb.on_enqueue(AgentId(1), MessageId(i)),
                EnqueueVerdict::Admit
            );
        }
        assert_eq!(mb.depth(AgentId(1)), 100);
        assert_eq!(mb.max_depth_seen(), 100);
        let out = mb.on_consume(AgentId(1), MessageId(0));
        assert!(!out.tombstoned);
        assert_eq!(mb.depth(AgentId(1)), 99);
    }

    #[test]
    fn reject_newest_drops_past_capacity() {
        let cfg = MailboxConfig::new(2, MailboxPolicy::RejectNewest);
        let mut mb = MailboxState::new(Some(cfg));
        assert_eq!(
            mb.on_enqueue(AgentId(1), MessageId(1)),
            EnqueueVerdict::Admit
        );
        assert_eq!(
            mb.on_enqueue(AgentId(1), MessageId(2)),
            EnqueueVerdict::Admit
        );
        assert_eq!(
            mb.on_enqueue(AgentId(1), MessageId(3)),
            EnqueueVerdict::Reject
        );
        assert_eq!(mb.depth(AgentId(1)), 2);
        assert_eq!(mb.max_depth_seen(), 2);
    }

    #[test]
    fn reject_oldest_tombstones_the_head() {
        let cfg = MailboxConfig::new(2, MailboxPolicy::RejectOldest);
        let mut mb = MailboxState::new(Some(cfg));
        mb.on_enqueue(AgentId(1), MessageId(1));
        mb.on_enqueue(AgentId(1), MessageId(2));
        assert_eq!(
            mb.on_enqueue(AgentId(1), MessageId(3)),
            EnqueueVerdict::AdmitEvictingOldest
        );
        // depth never exceeds capacity
        assert_eq!(mb.depth(AgentId(1)), 2);
        assert_eq!(mb.max_depth_seen(), 2);
        // the evicted head is skipped at consume time
        assert!(mb.on_consume(AgentId(1), MessageId(1)).tombstoned);
        assert!(!mb.on_consume(AgentId(1), MessageId(2)).tombstoned);
        assert!(!mb.on_consume(AgentId(1), MessageId(3)).tombstoned);
        assert_eq!(mb.depth(AgentId(1)), 0);
    }

    #[test]
    fn block_defers_and_releases_in_order() {
        let cfg = MailboxConfig::new(1, MailboxPolicy::Block);
        let mut mb = MailboxState::new(Some(cfg));
        assert_eq!(
            mb.on_enqueue(AgentId(1), MessageId(1)),
            EnqueueVerdict::Admit
        );
        assert_eq!(
            mb.on_enqueue(AgentId(1), MessageId(2)),
            EnqueueVerdict::Defer
        );
        mb.defer(msg(2, 1));
        assert_eq!(
            mb.on_enqueue(AgentId(1), MessageId(3)),
            EnqueueVerdict::Defer
        );
        mb.defer(msg(3, 1));
        assert_eq!(mb.deferred(), vec![(AgentId(1), 2)]);
        let out = mb.on_consume(AgentId(1), MessageId(1));
        let released = out.released.expect("oldest deferred message released");
        assert_eq!(released.id, MessageId(2));
        // its slot is occupied again
        assert_eq!(mb.depth(AgentId(1)), 1);
        assert_eq!(mb.max_depth_seen(), 1);
    }

    #[test]
    fn forget_clears_all_bookkeeping() {
        let cfg = MailboxConfig::new(1, MailboxPolicy::RejectOldest);
        let mut mb = MailboxState::new(Some(cfg));
        mb.on_enqueue(AgentId(1), MessageId(1));
        mb.on_enqueue(AgentId(1), MessageId(2));
        mb.forget(AgentId(1));
        assert_eq!(mb.depth(AgentId(1)), 0);
        assert!(mb.depths().is_empty());
        // the tombstone went with it: a stale consume is a plain miss
        assert!(!mb.on_consume(AgentId(1), MessageId(1)).tombstoned);
    }

    #[test]
    fn remaining_budget_saturates_at_zero() {
        assert_eq!(remaining_us(None, SimTime(5)), None);
        assert_eq!(remaining_us(Some(SimTime(100)), SimTime(40)), Some(60));
        assert_eq!(remaining_us(Some(SimTime(100)), SimTime(100)), Some(0));
        assert_eq!(remaining_us(Some(SimTime(100)), SimTime(500)), Some(0));
    }

    #[test]
    fn expiry_is_strictly_after_the_deadline() {
        assert!(!deadline_expired(None, SimTime(999)));
        assert!(!deadline_expired(Some(SimTime(100)), SimTime(100)));
        assert!(deadline_expired(Some(SimTime(100)), SimTime(101)));
    }

    /// Under reject-oldest, an eviction hands the victim's slot to the
    /// incoming message: across an arbitrarily long storm the depth gauge
    /// must not move at all, and every eviction must surface as exactly
    /// one `AdmitEvictingOldest` verdict (the runtimes count one mailbox
    /// rejection per such verdict).
    #[test]
    fn reject_oldest_eviction_nets_zero_depth() {
        let cfg = MailboxConfig::new(4, MailboxPolicy::RejectOldest);
        let mut mb = MailboxState::new(Some(cfg));
        for i in 0..4 {
            mb.on_enqueue(AgentId(1), MessageId(i));
        }
        let full = mb.depth(AgentId(1));
        let mut evictions = 0;
        for i in 4..250 {
            match mb.on_enqueue(AgentId(1), MessageId(i)) {
                EnqueueVerdict::AdmitEvictingOldest => evictions += 1,
                v => panic!("storm at capacity must evict, got {v:?}"),
            }
            assert_eq!(mb.depth(AgentId(1)), full, "evict+admit must net zero");
        }
        assert_eq!(evictions, 246, "exactly one eviction verdict per enqueue");
        assert_eq!(mb.max_depth_seen(), 4);
        // Drain: every scheduled id is consumed exactly once; only the
        // last `capacity` ids survive, all others were tombstoned.
        let mut delivered = 0;
        let mut tombstoned = 0;
        for i in 0..250 {
            if mb.on_consume(AgentId(1), MessageId(i)).tombstoned {
                tombstoned += 1;
            } else {
                delivered += 1;
            }
        }
        assert_eq!((delivered, tombstoned), (4, 246));
        assert_eq!(mb.depth(AgentId(1)), 0);
    }

    /// Model-based sweep: random enqueue/consume/forget interleavings
    /// against a reference model. The gauge must track the model's live
    /// count exactly, never exceed capacity, and never underflow (an
    /// underflow would wrap a `usize` and blow the `<= capacity` check).
    #[test]
    fn depth_gauge_matches_reference_model_under_random_ops() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..16u64 {
            for policy in [
                MailboxPolicy::RejectNewest,
                MailboxPolicy::RejectOldest,
                MailboxPolicy::Block,
            ] {
                let capacity = 3;
                let cfg = MailboxConfig::new(capacity, policy);
                let mut mb = MailboxState::new(Some(cfg));
                let mut rng = StdRng::seed_from_u64(seed);
                // Scheduled (admitted, unconsumed) deliveries, as the
                // runtimes would hold them; consumed in random order.
                let mut scheduled: Vec<(AgentId, MessageId)> = Vec::new();
                // live[agent] = model's depth: admitted minus consumed
                // minus pending tombstones.
                let mut live: HashMap<AgentId, usize> = HashMap::new();
                let mut next_id = 1u64;
                for _ in 0..400 {
                    let agent = AgentId(rng.gen_range(1..4u64));
                    if rng.gen_bool(0.55) {
                        let id = MessageId(next_id);
                        next_id += 1;
                        match mb.on_enqueue(agent, id) {
                            EnqueueVerdict::Admit => {
                                scheduled.push((agent, id));
                                *live.entry(agent).or_insert(0) += 1;
                            }
                            EnqueueVerdict::AdmitEvictingOldest => {
                                // slot transfer: one in, oldest out
                                scheduled.push((agent, id));
                            }
                            EnqueueVerdict::Reject => {}
                            EnqueueVerdict::Defer => {
                                let mut m = Message::new("m");
                                m.id = id;
                                m.to = agent;
                                mb.defer(m);
                            }
                        }
                    } else if !scheduled.is_empty() {
                        let pick = rng.gen_range(0..scheduled.len());
                        let (to, id) = scheduled.swap_remove(pick);
                        let out = mb.on_consume(to, id);
                        if !out.tombstoned {
                            *live.entry(to).or_insert(0) -= 1;
                        }
                        if let Some(released) = out.released {
                            *live.entry(released.to).or_insert(0) += 1;
                            scheduled.push((released.to, released.id));
                        }
                    }
                    for a in 1..4u64 {
                        let d = mb.depth(AgentId(a));
                        assert!(
                            d <= capacity,
                            "depth {d} exceeds capacity (underflow wrap?) \
                             seed={seed} policy={policy:?}"
                        );
                        assert_eq!(
                            d,
                            live.get(&AgentId(a)).copied().unwrap_or(0),
                            "gauge diverged from model: seed={seed} policy={policy:?}"
                        );
                    }
                }
                // Stale consumes for unknown agents must not disturb
                // anything (and must not underflow past zero).
                let before = mb.depths();
                mb.on_consume(AgentId(99), MessageId(u64::MAX));
                assert_eq!(mb.depth(AgentId(99)), 0);
                assert_eq!(mb.depths(), before);
            }
        }
    }

    #[test]
    fn per_agent_bounds_are_independent() {
        let cfg = MailboxConfig::new(1, MailboxPolicy::RejectNewest);
        let mut mb = MailboxState::new(Some(cfg));
        assert_eq!(
            mb.on_enqueue(AgentId(1), MessageId(1)),
            EnqueueVerdict::Admit
        );
        assert_eq!(
            mb.on_enqueue(AgentId(2), MessageId(2)),
            EnqueueVerdict::Admit
        );
        assert_eq!(
            mb.on_enqueue(AgentId(1), MessageId(3)),
            EnqueueVerdict::Reject
        );
        assert_eq!(mb.depth(AgentId(2)), 1);
    }
}
