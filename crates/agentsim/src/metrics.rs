//! World-level counters.
//!
//! Collected by both runtimes and consumed by experiment E8 (platform
//! microbenchmarks) and the commerce simulations.

use serde::{Deserialize, Serialize};

/// Counters accumulated over a world's lifetime.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Messages successfully delivered.
    #[serde(default)]
    pub messages_delivered: u64,
    /// Messages dropped by the loss model.
    #[serde(default)]
    pub messages_lost: u64,
    /// Messages addressed to unknown/disposed/deactivated agents.
    #[serde(default)]
    pub messages_dead_lettered: u64,
    /// Message payload bytes moved across host boundaries.
    #[serde(default)]
    pub remote_message_bytes: u64,
    /// Agent migrations completed (arrivals).
    #[serde(default)]
    pub migrations: u64,
    /// Migrations rejected at arrival (unknown type, auth failure).
    #[serde(default)]
    pub migrations_rejected: u64,
    /// Capsule bytes moved across host boundaries.
    #[serde(default)]
    pub migration_bytes: u64,
    /// Agents created.
    #[serde(default)]
    pub agents_created: u64,
    /// Agents disposed.
    #[serde(default)]
    pub agents_disposed: u64,
    /// Deactivations performed.
    #[serde(default)]
    pub deactivations: u64,
    /// Activations performed.
    #[serde(default)]
    pub activations: u64,
    /// Timer callbacks fired.
    #[serde(default)]
    pub timers_fired: u64,
    /// Messages/migrations dropped because of an active chaos fault
    /// (partition, crash, or fault-loss overlay) rather than the link's
    /// own configured loss.
    #[serde(default)]
    pub chaos_drops: u64,
    /// Duplicate message copies injected by the chaos engine.
    #[serde(default)]
    pub chaos_dupes: u64,
    /// Messages delayed (reordered) by the chaos engine's jitter.
    #[serde(default)]
    pub chaos_delays: u64,
    /// Duplicate deliveries suppressed by receiver-side deduplication.
    #[serde(default)]
    pub dupes_suppressed: u64,
    /// Host crashes injected.
    #[serde(default)]
    pub host_crashes: u64,
    /// Agents (active or deactivated capsules) lost to a host crash.
    #[serde(default)]
    pub agents_lost_in_crash: u64,
    /// Retry attempts made by application agents (re-dispatch, watchdog
    /// re-arm) via [`crate::agent::Ctx::count_retry`].
    #[serde(default)]
    pub retries: u64,
    /// Degraded (partial/fallback) replies served by application agents
    /// via [`crate::agent::Ctx::count_degraded_reply`].
    #[serde(default)]
    pub degraded_replies: u64,
    /// Requests shed by admission control via
    /// [`crate::agent::Ctx::count_shed`].
    #[serde(default)]
    pub requests_shed: u64,
    /// Dispatches suppressed by an open circuit breaker via
    /// [`crate::agent::Ctx::count_breaker_rejection`].
    #[serde(default)]
    pub breaker_rejections: u64,
    /// Messages or migrations dropped because their request deadline had
    /// already passed when they were due for delivery.
    #[serde(default)]
    pub deadline_drops: u64,
    /// Deliveries rejected (or evicted) by a bounded mailbox.
    #[serde(default)]
    pub mailbox_rejections: u64,
    /// Messages that crossed a shard boundary (sharded DES runs only).
    #[serde(default)]
    pub boundary_messages: u64,
    /// Agent migrations that crossed a shard boundary.
    #[serde(default)]
    pub boundary_migrations: u64,
    /// Records appended to durable-store write-ahead logs.
    #[serde(default)]
    pub wal_records_appended: u64,
    /// WAL records replayed during crash-recovery passes.
    #[serde(default)]
    pub wal_records_replayed: u64,
    /// Durable-store checkpoints (snapshot + log truncation) taken.
    #[serde(default)]
    pub checkpoints: u64,
    /// Host restarts that ran a durable recovery pass.
    #[serde(default)]
    pub hosts_recovered: u64,
    /// Agents restored from journalled capsules after a crash.
    #[serde(default)]
    pub agents_recovered: u64,
    /// Purchase intents write-ahead-logged.
    #[serde(default)]
    pub intents_logged: u64,
    /// Purchase commits write-ahead-logged.
    #[serde(default)]
    pub purchases_committed: u64,
    /// Purchase aborts write-ahead-logged.
    #[serde(default)]
    pub purchases_aborted: u64,
    /// In-doubt intents resolved by querying the marketplace ledger.
    #[serde(default)]
    pub intents_resolved_by_ledger: u64,
    /// Profile deltas write-ahead-logged.
    #[serde(default)]
    pub profile_deltas_logged: u64,
    /// Profile deltas replayed into recovered agents.
    #[serde(default)]
    pub profile_deltas_replayed: u64,
    /// Hang faults injected by the chaos engine (host wedged, not dead).
    #[serde(default)]
    pub hangs_injected: u64,
    /// Hung hosts detected (and bounced) by the supervisor's progress
    /// watermark.
    #[serde(default)]
    pub hangs_detected: u64,
    /// Hosts marked *suspected* after missing a heartbeat lease.
    #[serde(default)]
    pub hosts_suspected: u64,
    /// Suspicions that aged past the lease grace period, triggering
    /// automatic recovery.
    #[serde(default)]
    pub leases_expired: u64,
    /// Automatic host recoveries performed by the supervisor (standby
    /// failover on the DES runtime, worker respawn on the threaded one).
    #[serde(default)]
    pub failovers: u64,
    /// Roaming agents re-bound to a new home host by a failover.
    #[serde(default)]
    pub agents_rehomed: u64,
    /// Orphaned roaming agents retired (disposed) because their home host
    /// failed over without restoring any owner to re-bind them to.
    #[serde(default)]
    pub agents_retired: u64,
    /// Agents quarantined to dead-letters after exhausting their restart
    /// budget (crash-looping), instead of being restored yet again.
    #[serde(default)]
    pub agents_quarantined: u64,
}

impl Metrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes that crossed host boundaries (messages + migrations).
    pub fn total_network_bytes(&self) -> u64 {
        self.remote_message_bytes + self.migration_bytes
    }

    /// Agents currently alive according to the counters.
    pub fn live_agents(&self) -> u64 {
        self.agents_created.saturating_sub(self.agents_disposed)
    }

    /// Fold another shard's counters into this one (field-wise sum).
    ///
    /// Used by the sharded runtime to present a single platform-wide view.
    /// Implemented over the serialized form so a counter added to the
    /// struct can never be silently left out of the merge.
    pub fn merge(&mut self, other: &Metrics) {
        let mine = serde_json::to_value(&*self).expect("metrics serialize");
        let theirs = serde_json::to_value(other).expect("metrics serialize");
        let (mine_obj, theirs_obj) = (
            mine.as_object().expect("metrics is an object"),
            theirs.as_object().expect("metrics is an object"),
        );
        let mut merged = serde_json::Map::new();
        for (key, value) in mine_obj {
            let sum = value.as_u64().unwrap_or(0).saturating_add(
                theirs_obj
                    .get(key)
                    .and_then(serde_json::Value::as_u64)
                    .unwrap_or(0),
            );
            merged.insert(key.clone(), serde_json::json!(sum));
        }
        *self =
            serde_json::from_value(serde_json::Value::Object(merged)).expect("metrics deserialize");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_network_bytes_sums_components() {
        let m = Metrics {
            remote_message_bytes: 100,
            migration_bytes: 50,
            ..Metrics::default()
        };
        assert_eq!(m.total_network_bytes(), 150);
    }

    #[test]
    fn live_agents_never_underflows() {
        let m = Metrics {
            agents_created: 2,
            agents_disposed: 5,
            ..Metrics::default()
        };
        assert_eq!(m.live_agents(), 0);
        let m = Metrics {
            agents_created: 5,
            agents_disposed: 2,
            ..Metrics::default()
        };
        assert_eq!(m.live_agents(), 3);
    }

    #[test]
    fn metrics_round_trip_serde() {
        let m = Metrics {
            messages_delivered: 7,
            ..Metrics::default()
        };
        let back: Metrics = serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn every_field_round_trips_nonzero() {
        // populate every counter with a distinct value so a missing
        // serde attribute or renamed field cannot hide
        let text = serde_json::to_string(&Metrics::default()).unwrap();
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        let populated = serde_json::Value::Object(
            value
                .as_object()
                .unwrap()
                .iter()
                .enumerate()
                .map(|(i, (k, _))| (k.clone(), serde_json::json!(i as u64 + 1)))
                .collect(),
        );
        let back: Metrics = serde_json::from_value(populated.clone()).unwrap();
        assert_eq!(serde_json::to_value(&back).unwrap(), populated);
    }

    #[test]
    fn merge_sums_every_field() {
        // exercise the serde-based merge against fully populated inputs so
        // a field skipped by the merge shows up as an inequality
        let text = serde_json::to_string(&Metrics::default()).unwrap();
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        let populated = |base: u64| -> Metrics {
            serde_json::from_value(serde_json::Value::Object(
                value
                    .as_object()
                    .unwrap()
                    .iter()
                    .enumerate()
                    .map(|(i, (k, _))| (k.clone(), serde_json::json!(base + i as u64)))
                    .collect(),
            ))
            .unwrap()
        };
        let mut a = populated(1);
        let b = populated(100);
        a.merge(&b);
        let expected: serde_json::Value = serde_json::Value::Object(
            value
                .as_object()
                .unwrap()
                .iter()
                .enumerate()
                .map(|(i, (k, _))| (k.clone(), serde_json::json!(101 + 2 * i as u64)))
                .collect(),
        );
        assert_eq!(serde_json::to_value(&a).unwrap(), expected);
    }

    #[test]
    fn legacy_snapshots_deserialize_with_defaults() {
        // a pre-chaos-engine snapshot: only the original twelve counters
        let legacy = serde_json::json!({
            "messages_delivered": 3,
            "messages_lost": 1,
            "messages_dead_lettered": 0,
            "remote_message_bytes": 512,
            "migrations": 2,
            "migrations_rejected": 0,
            "migration_bytes": 256,
            "agents_created": 4,
            "agents_disposed": 1,
            "deactivations": 0,
            "activations": 0,
            "timers_fired": 5
        });
        let m: Metrics = serde_json::from_value(legacy).unwrap();
        assert_eq!(m.messages_delivered, 3);
        assert_eq!(m.timers_fired, 5);
        assert_eq!(m.chaos_drops, 0);
        assert_eq!(m.retries, 0);

        // ...and the degenerate empty snapshot: every field defaulted
        let empty: Metrics = serde_json::from_str("{}").unwrap();
        assert_eq!(empty, Metrics::default());
    }
}
