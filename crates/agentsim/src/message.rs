//! Inter-agent messages.
//!
//! The paper's principle 6 (§4.1): *"The coordination of functional agents
//! in recommendation mechanism is through the message passing."* Messages
//! carry an interned `kind` (a performative, e.g. `"query-request"`), a
//! cheaply cloneable [`Payload`], and correlation metadata for
//! request/response protocols.

use crate::clock::SimTime;
use crate::ids::{AgentId, MessageId};
use crate::intern::InternedStr;
use crate::payload::Payload;
use crate::telemetry::TraceCtx;
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};

/// A message exchanged between agents.
///
/// Construct with [`Message::new`], attach a typed payload with
/// [`Message::with_payload`], and read it back with [`Message::payload_as`]:
///
/// ```
/// use agentsim::message::Message;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let msg = Message::new("price-quote").with_payload(&42_u32)?;
/// let price: u32 = msg.payload_as()?;
/// assert_eq!(price, 42);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Message {
    /// Unique id, assigned by the world when the message is sent.
    pub id: MessageId,
    /// Sender agent. `None` for messages injected from outside the world
    /// (e.g. a simulated browser request entering through the front).
    pub from: Option<AgentId>,
    /// Destination agent.
    pub to: AgentId,
    /// Performative / message kind, e.g. `"query-request"`. Interned: the
    /// same spelling always shares one allocation.
    pub kind: InternedStr,
    /// Structured payload (shared, encode-once).
    pub payload: Payload,
    /// Id of the message this one answers, if any.
    pub in_reply_to: Option<MessageId>,
    /// Telemetry context of the in-flight hop this message represents.
    /// `None` when tracing is off (the default); stamped by the world at
    /// send time, never by application code.
    #[serde(default)]
    pub trace: Option<TraceCtx>,
    /// Absolute deadline of the request this message serves, if one was
    /// minted at ingress. Stamped by the world from the sending handler's
    /// ambient deadline; an expired message is dropped at delivery.
    /// Excluded from [`Message::wire_size`] (a few header bytes at most).
    #[serde(default)]
    pub deadline: Option<SimTime>,
}

impl Message {
    /// Create a message of the given kind with a null payload and no
    /// addressing; the world fills in `id`, senders fill in `from`/`to`
    /// via the send API.
    pub fn new(kind: impl Into<InternedStr>) -> Self {
        Message {
            id: MessageId(0),
            from: None,
            to: AgentId(0),
            kind: kind.into(),
            payload: Payload::null(),
            in_reply_to: None,
            trace: None,
            deadline: None,
        }
    }

    /// Attach a serializable payload.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error if `value` cannot be
    /// serialized.
    pub fn with_payload<T: Serialize>(mut self, value: &T) -> serde_json::Result<Self> {
        self.payload = Payload::encode(value)?;
        Ok(self)
    }

    /// Attach an already-built payload without re-serializing — the
    /// routing-hop fast path: forwarding a received payload (or a
    /// [`Payload::project`]ion of one) shares the tree and its cached
    /// encoding instead of copying either.
    pub fn carrying(mut self, payload: impl Into<Payload>) -> Self {
        self.payload = payload.into();
        self
    }

    /// Mark this message as a reply to `original`.
    pub fn replying_to(mut self, original: &Message) -> Self {
        self.in_reply_to = Some(original.id);
        self
    }

    /// Deserialize the payload into a concrete type, by reference — the
    /// payload tree is not cloned.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error if the payload does not
    /// match `T`.
    pub fn payload_as<T: DeserializeOwned>(&self) -> serde_json::Result<T> {
        self.payload.typed()
    }

    /// Approximate on-the-wire size in bytes, used by the network model to
    /// derive transfer time. The payload's encoded length is computed once
    /// and cached (shared with every clone of the payload).
    pub fn wire_size(&self) -> usize {
        // kind + payload dominate; fixed header estimated at 32 bytes.
        32 + self.kind.len() + self.payload.encoded_len()
    }

    /// Whether this message is of the given kind.
    pub fn is(&self, kind: &str) -> bool {
        self.kind == kind
    }

    /// Detach the telemetry context, returning it.
    ///
    /// Span ids are scoped to one shard's `Telemetry` store, so a message
    /// crossing a shard boundary must not carry its origin-shard trace into
    /// the destination shard: the origin ends the hop with a boundary event
    /// and strips the context before handing the message over.
    pub fn strip_trace(&mut self) -> Option<TraceCtx> {
        self.trace.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Quote {
        item: String,
        price: u64,
    }

    #[test]
    fn typed_payload_round_trips() {
        let q = Quote {
            item: "book".into(),
            price: 120,
        };
        let msg = Message::new("quote").with_payload(&q).unwrap();
        assert_eq!(msg.payload_as::<Quote>().unwrap(), q);
    }

    #[test]
    fn payload_type_mismatch_is_an_error() {
        let msg = Message::new("quote")
            .with_payload(&"just a string")
            .unwrap();
        assert!(msg.payload_as::<Quote>().is_err());
    }

    #[test]
    fn replying_links_message_ids() {
        let mut original = Message::new("ask");
        original.id = MessageId(7);
        let reply = Message::new("answer").replying_to(&original);
        assert_eq!(reply.in_reply_to, Some(MessageId(7)));
    }

    #[test]
    fn wire_size_grows_with_payload() {
        let small = Message::new("k").with_payload(&1u8).unwrap();
        let big = Message::new("k").with_payload(&vec![0u8; 1000]).unwrap();
        assert!(big.wire_size() > small.wire_size());
        assert!(small.wire_size() >= 32);
    }

    #[test]
    fn wire_size_equals_header_plus_kind_plus_encoding() {
        let msg = Message::new("quote")
            .with_payload(&Quote {
                item: "book".into(),
                price: 120,
            })
            .unwrap();
        let encoded = serde_json::to_string(msg.payload.value()).unwrap();
        assert_eq!(msg.wire_size(), 32 + "quote".len() + encoded.len());
    }

    #[test]
    fn is_matches_kind_exactly() {
        let msg = Message::new("query-request");
        assert!(msg.is("query-request"));
        assert!(!msg.is("query"));
    }

    #[test]
    fn clone_shares_the_payload_tree() {
        let msg = Message::new("bulk").with_payload(&vec![7u32; 64]).unwrap();
        let copy = msg.clone();
        assert!(crate::payload::Payload::ptr_eq(&msg.payload, &copy.payload));
        assert_eq!(copy.wire_size(), msg.wire_size());
    }

    #[test]
    fn carrying_forwards_a_payload_without_reencoding() {
        let original = Message::new("envelope")
            .with_payload(&Quote {
                item: "book".into(),
                price: 9,
            })
            .unwrap();
        let forwarded = Message::new("routed").carrying(original.payload.clone());
        assert!(crate::payload::Payload::ptr_eq(
            &original.payload,
            &forwarded.payload
        ));
    }
}
