//! Per-host durable state: WAL-backed capsules, purchase intents and
//! profile deltas, with snapshot checkpointing and crash recovery.
//!
//! A [`DurableStore`] models the stable storage a production host would
//! put under its agent runtime. Every capsule boundary (callback end,
//! deactivation, arrival), every two-phase purchase record and every
//! profile delta is appended to a [`simdb::Wal`] using the durability
//! record variants; a `synced` watermark models the fsync point — on a
//! crash only the synced prefix survives, so the store can answer "what
//! would a real disk hold" without ever touching the filesystem.
//!
//! Policy, mirroring production databases:
//! * purchase records ([`LogRecord::PurchaseIntent`] /
//!   [`LogRecord::PurchaseCommit`] / [`LogRecord::PurchaseAbort`]) are
//!   **forced**: the watermark advances through them immediately
//!   (fsync-on-commit), so a logged intent is never lost;
//! * capsule and delta records batch: the watermark advances once
//!   `sync_every` unsynced records accumulate (1 = sync everything);
//! * a checkpoint serializes the materialized state into a snapshot and
//!   truncates the log, bounding replay cost.

use crate::metrics::Metrics;
use serde::{Deserialize, Serialize};
use simdb::file_wal::FileWal;
use simdb::wal::{LogRecord, Wal};
use simdb::{DbError, Result};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Tuning knobs for per-host durability. Installed on a world via
/// `enable_durability`; absent = the host keeps no durable state and all
/// journaling actions are no-ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DurabilityConfig {
    /// Checkpoint (snapshot + truncate) once this many records have been
    /// appended since the last checkpoint. 0 disables checkpointing.
    pub checkpoint_every: usize,
    /// Advance the fsync watermark once this many unsynced capsule/delta
    /// records accumulate. Purchase records always force a sync. 1 syncs
    /// every record.
    pub sync_every: usize,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            checkpoint_every: 256,
            sync_every: 1,
        }
    }
}

/// A capsule as the durable store holds it: the serialized
/// [`crate::agent::AgentCapsule`] plus whether the agent was active or
/// deactivated when last journalled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapsuleRecord {
    /// Serialized `AgentCapsule` (id, type, state, home, permit).
    pub capsule: serde_json::Value,
    /// `true` = running agent journalled at a callback boundary;
    /// `false` = deactivated into long-term storage.
    pub active: bool,
}

/// Resolution state of a logged purchase intent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IntentState {
    /// Intent logged, outcome unknown — after a crash this must be
    /// resolved against the marketplace ledger before retrying.
    Pending(serde_json::Value),
    /// The purchase definitely happened.
    Committed(serde_json::Value),
    /// The purchase definitely did not happen.
    Aborted(String),
}

/// The materialized durable state of one host: what a recovery pass gets
/// back after replaying the WAL over the last snapshot.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DurableState {
    /// Last journalled capsule per agent (raw id), capsule- and
    /// delta-policy agents alike.
    pub capsules: BTreeMap<u64, CapsuleRecord>,
    /// Purchase intents keyed by intent id.
    pub intents: BTreeMap<u64, IntentState>,
    /// Profile deltas in log order: `(agent raw id, delta)`. Cleared at
    /// checkpoints (the snapshot capsule absorbs them).
    pub deltas: Vec<(u64, serde_json::Value)>,
}

impl DurableState {
    /// Apply one log record to the materialized state.
    fn apply(&mut self, record: &LogRecord) -> Result<()> {
        match record {
            LogRecord::Capsule {
                agent,
                capsule,
                active,
            } => {
                self.capsules.insert(
                    *agent,
                    CapsuleRecord {
                        capsule: capsule.clone(),
                        active: *active,
                    },
                );
            }
            LogRecord::CapsuleGone { agent } => {
                self.capsules.remove(agent);
                self.deltas.retain(|(a, _)| a != agent);
            }
            LogRecord::PurchaseIntent { intent, detail } => {
                // an intent never downgrades a known outcome (idempotent
                // replay: a re-logged intent after a commit is a no-op)
                self.intents
                    .entry(*intent)
                    .or_insert_with(|| IntentState::Pending(detail.clone()));
            }
            LogRecord::PurchaseCommit { intent, detail } => {
                self.intents
                    .insert(*intent, IntentState::Committed(detail.clone()));
            }
            LogRecord::PurchaseAbort { intent, reason } => {
                // commit wins over a racing abort record on replay; a
                // committed purchase is never un-happened
                match self.intents.get(intent) {
                    Some(IntentState::Committed(_)) => {}
                    _ => {
                        self.intents
                            .insert(*intent, IntentState::Aborted(reason.clone()));
                    }
                }
            }
            LogRecord::ProfileDelta { agent, delta } => {
                self.deltas.push((*agent, delta.clone()));
            }
            LogRecord::CreateTable { .. } | LogRecord::Put { .. } | LogRecord::Delete { .. } => {
                return Err(DbError::Serialization(
                    "table record is not valid for a durable store".into(),
                ));
            }
        }
        Ok(())
    }

    /// Deltas logged for `agent`, in log order.
    pub fn deltas_for(&self, agent: u64) -> Vec<serde_json::Value> {
        self.deltas
            .iter()
            .filter(|(a, _)| *a == agent)
            .map(|(_, d)| d.clone())
            .collect()
    }

    /// Intents still pending (logged, no commit or abort).
    pub fn pending_intents(&self) -> impl Iterator<Item = (u64, &serde_json::Value)> {
        self.intents.iter().filter_map(|(id, s)| match s {
            IntentState::Pending(d) => Some((*id, d)),
            _ => None,
        })
    }
}

/// Counters a [`DurableStore`] accumulates; merged into the world
/// [`Metrics`] by the owning runtime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurableCounters {
    /// WAL records appended (any kind).
    pub wal_records_appended: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Purchase intents logged.
    pub intents_logged: u64,
    /// Purchase commits logged.
    pub purchases_committed: u64,
    /// Purchase aborts logged.
    pub purchases_aborted: u64,
    /// Profile deltas logged.
    pub profile_deltas_logged: u64,
}

impl DurableCounters {
    /// Fold these counters into the world metrics.
    pub fn merge_into(&self, m: &mut Metrics) {
        m.wal_records_appended += self.wal_records_appended;
        m.checkpoints += self.checkpoints;
        m.intents_logged += self.intents_logged;
        m.purchases_committed += self.purchases_committed;
        m.purchases_aborted += self.purchases_aborted;
        m.profile_deltas_logged += self.profile_deltas_logged;
    }
}

/// What a recovery pass found: the materialized state plus how much log
/// had to be replayed to get there.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// Materialized durable state (synced prefix over last snapshot).
    pub state: DurableState,
    /// WAL records replayed over the snapshot.
    pub replayed: usize,
}

/// Real-file persistence side-car for a [`DurableStore`]: the WAL is
/// mirrored to `wal` record-for-record and the snapshot lands next to it
/// at `snap_path` on every checkpoint.
#[derive(Debug)]
struct FileBacking {
    wal: FileWal,
    snap_path: PathBuf,
}

/// The stable storage of one durable host.
#[derive(Debug)]
pub struct DurableStore {
    cfg: DurabilityConfig,
    /// Serialized [`DurableState`] at the last checkpoint.
    snapshot: Vec<u8>,
    wal: Wal,
    /// Fsync watermark: records `< synced` survive a crash.
    synced: usize,
    /// Materialized view of snapshot + full WAL (what a crash-free
    /// reader sees).
    state: DurableState,
    since_checkpoint: usize,
    counters: DurableCounters,
    /// Real-file mirror; `None` = purely simulated stable storage.
    file: Option<FileBacking>,
}

impl Clone for DurableStore {
    /// Clones are in-memory: the file backing (if any) stays with the
    /// original — two handles appending to one log would corrupt it.
    fn clone(&self) -> Self {
        DurableStore {
            cfg: self.cfg,
            snapshot: self.snapshot.clone(),
            wal: self.wal.clone(),
            synced: self.synced,
            state: self.state.clone(),
            since_checkpoint: self.since_checkpoint,
            counters: self.counters,
            file: None,
        }
    }
}

impl DurableStore {
    /// Empty store under `cfg`.
    pub fn new(cfg: DurabilityConfig) -> Self {
        DurableStore {
            cfg,
            snapshot: Vec::new(),
            wal: Wal::new(),
            synced: 0,
            state: DurableState::default(),
            since_checkpoint: 0,
            counters: DurableCounters::default(),
            file: None,
        }
    }

    /// Open (or create) a store backed by real files: the WAL at `path`
    /// and the snapshot beside it at `{path}.snap`. Existing files are
    /// recovered — snapshot plus surviving log prefix, with a torn final
    /// record repaired — so a process restart resumes where the disk left
    /// off. Everything already on disk counts as synced.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] on filesystem failures; [`DbError::WalCorrupt`] /
    /// [`DbError::Serialization`] if the on-disk log or snapshot is
    /// corrupt beyond a torn tail.
    pub fn with_file(cfg: DurabilityConfig, path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let mut snap_os = path.as_os_str().to_os_string();
        snap_os.push(".snap");
        let snap_path = PathBuf::from(snap_os);
        let snapshot = match std::fs::read(&snap_path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(DbError::Io(e.to_string())),
        };
        let (file_wal, wal) = FileWal::open(path)?;
        let recovered = Self::replay(&snapshot, &wal)?;
        let synced = wal.len();
        Ok(DurableStore {
            cfg,
            snapshot,
            wal,
            synced,
            state: recovered.state,
            since_checkpoint: synced,
            counters: DurableCounters::default(),
            file: Some(FileBacking {
                wal: file_wal,
                snap_path,
            }),
        })
    }

    /// Whether this store mirrors to real files.
    pub fn is_file_backed(&self) -> bool {
        self.file.is_some()
    }

    /// The store's configuration.
    pub fn config(&self) -> DurabilityConfig {
        self.cfg
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> DurableCounters {
        self.counters
    }

    /// Reset the counters after they have been merged elsewhere.
    pub fn take_counters(&mut self) -> DurableCounters {
        std::mem::take(&mut self.counters)
    }

    /// Records currently in the WAL (snapshot excluded).
    pub fn wal_len(&self) -> usize {
        self.wal.len()
    }

    /// Records below the fsync watermark (these survive a crash).
    pub fn synced_len(&self) -> usize {
        self.synced
    }

    /// The live materialized state (snapshot + full WAL; crash-free view).
    pub fn state(&self) -> &DurableState {
        &self.state
    }

    fn append(&mut self, record: LogRecord, force_sync: bool) -> Result<()> {
        self.state.apply(&record)?;
        if let Some(f) = self.file.as_mut() {
            f.wal.append(&record)?;
        }
        self.wal.append(record);
        self.counters.wal_records_appended += 1;
        self.since_checkpoint += 1;
        if force_sync || self.wal.len() - self.synced >= self.cfg.sync_every.max(1) {
            self.synced = self.wal.len();
            if let Some(f) = self.file.as_mut() {
                f.wal.sync()?;
            }
        }
        Ok(())
    }

    /// Journal an agent capsule (active or deactivated). Batched sync.
    ///
    /// # Errors
    ///
    /// [`DbError::Serialization`] is impossible for capsule records; the
    /// `Result` mirrors the shared append path.
    pub fn put_capsule(
        &mut self,
        agent: u64,
        capsule: serde_json::Value,
        active: bool,
    ) -> Result<()> {
        self.append(
            LogRecord::Capsule {
                agent,
                capsule,
                active,
            },
            false,
        )
    }

    /// The agent left this host (dispatch away or dispose); forget it.
    /// Forced: a crash after a departure must never resurrect a second
    /// copy of an agent that is already travelling or disposed.
    ///
    /// # Errors
    ///
    /// See [`DurableStore::put_capsule`].
    pub fn remove_capsule(&mut self, agent: u64) -> Result<()> {
        self.append(LogRecord::CapsuleGone { agent }, true)
    }

    /// Log a purchase intent. Forced to the synced prefix immediately.
    ///
    /// # Errors
    ///
    /// See [`DurableStore::put_capsule`].
    pub fn log_intent(&mut self, intent: u64, detail: serde_json::Value) -> Result<()> {
        self.counters.intents_logged += 1;
        self.append(LogRecord::PurchaseIntent { intent, detail }, true)
    }

    /// Log a purchase commit. Forced.
    ///
    /// # Errors
    ///
    /// See [`DurableStore::put_capsule`].
    pub fn log_commit(&mut self, intent: u64, detail: serde_json::Value) -> Result<()> {
        self.counters.purchases_committed += 1;
        self.append(LogRecord::PurchaseCommit { intent, detail }, true)
    }

    /// Log a purchase abort. Forced.
    ///
    /// # Errors
    ///
    /// See [`DurableStore::put_capsule`].
    pub fn log_abort(&mut self, intent: u64, reason: String) -> Result<()> {
        self.counters.purchases_aborted += 1;
        self.append(LogRecord::PurchaseAbort { intent, reason }, true)
    }

    /// Log a profile delta for a delta-policy agent. Batched sync.
    ///
    /// # Errors
    ///
    /// See [`DurableStore::put_capsule`].
    pub fn log_delta(&mut self, agent: u64, delta: serde_json::Value) -> Result<()> {
        self.counters.profile_deltas_logged += 1;
        self.append(LogRecord::ProfileDelta { agent, delta }, false)
    }

    /// Whether enough records have accumulated to warrant a checkpoint.
    pub fn should_checkpoint(&self) -> bool {
        self.cfg.checkpoint_every > 0 && self.since_checkpoint >= self.cfg.checkpoint_every
    }

    /// Checkpoint: fold `fresh_capsules` (live capsules of delta-policy
    /// agents, captured by the runtime at the checkpoint boundary) into
    /// the state, serialize it as the new snapshot, truncate the WAL and
    /// clear the absorbed deltas.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] only on a file-backed store, if writing the
    /// snapshot or truncating the log file fails; an in-memory checkpoint
    /// cannot fail. On a file-backed store the snapshot is written via
    /// temp-file + rename so it is never torn; a crash between the rename
    /// and the log truncation can replay pre-checkpoint records over the
    /// new snapshot (idempotent for capsules and intents, duplicating
    /// only profile deltas) — a bounded, documented window.
    pub fn checkpoint(
        &mut self,
        fresh_capsules: Vec<(u64, serde_json::Value, bool)>,
    ) -> Result<()> {
        for (agent, capsule, active) in fresh_capsules {
            self.state
                .capsules
                .insert(agent, CapsuleRecord { capsule, active });
            self.state.deltas.retain(|(a, _)| *a != agent);
        }
        self.snapshot = serde_json::to_vec(&self.state).unwrap_or_default();
        self.wal.truncate();
        self.synced = 0;
        self.since_checkpoint = 0;
        self.counters.checkpoints += 1;
        if let Some(f) = self.file.as_mut() {
            let mut tmp_os = f.snap_path.as_os_str().to_os_string();
            tmp_os.push(".tmp");
            let tmp = PathBuf::from(tmp_os);
            std::fs::write(&tmp, &self.snapshot).map_err(|e| DbError::Io(e.to_string()))?;
            std::fs::rename(&tmp, &f.snap_path).map_err(|e| DbError::Io(e.to_string()))?;
            f.wal.reset(&self.wal)?;
        }
        Ok(())
    }

    /// Crash the host: everything past the fsync watermark is lost, and
    /// the materialized state is rebuilt from the snapshot plus the
    /// surviving log prefix — exactly what recovery will see.
    ///
    /// # Errors
    ///
    /// [`DbError::Serialization`] / [`DbError::WalCorrupt`] if the
    /// snapshot or surviving prefix do not replay (internal corruption).
    pub fn crash(&mut self) -> Result<()> {
        self.wal.retain_prefix(self.synced);
        if let Some(f) = self.file.as_mut() {
            // mirror the loss: the file keeps only the synced prefix
            f.wal.reset(&self.wal)?;
        }
        self.state = Self::replay(&self.snapshot, &self.wal)?.state;
        Ok(())
    }

    /// Recovery pass: materialize snapshot + WAL. On a store that has
    /// been [`DurableStore::crash`]ed this is the durable view; on a live
    /// store it equals [`DurableStore::state`].
    ///
    /// # Errors
    ///
    /// [`DbError::Serialization`] for an unreadable snapshot or a table
    /// record in the durability log; [`DbError::WalCorrupt`] never occurs
    /// here (the in-memory log is already decoded).
    pub fn recover(&self) -> Result<Recovered> {
        Self::replay(&self.snapshot, &self.wal)
    }

    fn replay(snapshot: &[u8], wal: &Wal) -> Result<Recovered> {
        let mut state: DurableState = if snapshot.is_empty() {
            DurableState::default()
        } else {
            serde_json::from_slice(snapshot).map_err(|e| DbError::Serialization(e.to_string()))?
        };
        for record in wal.records() {
            state.apply(record)?;
        }
        Ok(Recovered {
            state,
            replayed: wal.len(),
        })
    }

    /// Replay an encoded snapshot + WAL byte log into a state — the
    /// pure function the property tests exercise: `replay(snapshot,
    /// encode(log))` must equal direct application, be idempotent and
    /// tolerate any prefix truncation.
    ///
    /// # Errors
    ///
    /// [`DbError::WalCorrupt`] for undecodable non-final records;
    /// [`DbError::Serialization`] for an unreadable snapshot or a table
    /// record in the log.
    pub fn replay_bytes(snapshot: &[u8], wal_bytes: &[u8]) -> Result<Recovered> {
        let wal = Wal::decode(wal_bytes)?;
        Self::replay(snapshot, &wal)
    }

    /// Current WAL bytes (what would be on disk past the snapshot).
    pub fn wal_bytes(&self) -> Vec<u8> {
        self.wal.encode()
    }

    /// The snapshot bytes from the last checkpoint (empty before one).
    pub fn snapshot_bytes(&self) -> &[u8] {
        &self.snapshot
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use serde_json::json;

    fn cfg(sync_every: usize) -> DurabilityConfig {
        DurabilityConfig {
            checkpoint_every: 0,
            sync_every,
        }
    }

    #[test]
    fn capsule_lifecycle_materializes() {
        let mut s = DurableStore::new(cfg(1));
        s.put_capsule(7, json!({"x": 1}), true).unwrap();
        s.put_capsule(7, json!({"x": 2}), false).unwrap();
        assert_eq!(
            s.state().capsules.get(&7).unwrap(),
            &CapsuleRecord {
                capsule: json!({"x": 2}),
                active: false
            }
        );
        s.remove_capsule(7).unwrap();
        assert!(s.state().capsules.is_empty());
    }

    #[test]
    fn unsynced_tail_is_lost_on_crash_but_forced_records_survive() {
        let mut s = DurableStore::new(cfg(100)); // batch: nothing syncs on its own
        s.put_capsule(1, json!({"a": 1}), true).unwrap();
        s.log_intent(42, json!({"item": 3})).unwrap(); // forced: syncs the prefix
        s.put_capsule(2, json!({"b": 2}), true).unwrap(); // unsynced tail
        assert_eq!(s.synced_len(), 2);
        s.crash().unwrap();
        let rec = s.recover().unwrap();
        assert!(
            rec.state.capsules.contains_key(&1),
            "pre-intent capsule synced"
        );
        assert!(!rec.state.capsules.contains_key(&2), "unsynced tail lost");
        assert!(matches!(
            rec.state.intents.get(&42),
            Some(IntentState::Pending(_))
        ));
    }

    #[test]
    fn commit_wins_over_replayed_abort_and_intent_never_downgrades() {
        let mut st = DurableState::default();
        st.apply(&LogRecord::PurchaseIntent {
            intent: 1,
            detail: json!({}),
        })
        .unwrap();
        st.apply(&LogRecord::PurchaseCommit {
            intent: 1,
            detail: json!({"price": 2.0}),
        })
        .unwrap();
        st.apply(&LogRecord::PurchaseIntent {
            intent: 1,
            detail: json!({}),
        })
        .unwrap();
        st.apply(&LogRecord::PurchaseAbort {
            intent: 1,
            reason: "late".into(),
        })
        .unwrap();
        assert!(matches!(
            st.intents.get(&1),
            Some(IntentState::Committed(_))
        ));
    }

    #[test]
    fn checkpoint_truncates_and_recovery_still_sees_everything() {
        let mut s = DurableStore::new(DurabilityConfig {
            checkpoint_every: 3,
            sync_every: 1,
        });
        s.put_capsule(1, json!({"v": 1}), true).unwrap();
        s.log_intent(9, json!({})).unwrap();
        s.log_commit(9, json!({"ok": true})).unwrap();
        assert!(s.should_checkpoint());
        s.checkpoint(Vec::new()).unwrap();
        assert_eq!(s.wal_len(), 0);
        s.log_delta(5, json!({"d": 1})).unwrap();
        let rec = s.recover().unwrap();
        assert_eq!(rec.replayed, 1, "only post-checkpoint records replay");
        assert!(rec.state.capsules.contains_key(&1));
        assert!(matches!(
            rec.state.intents.get(&9),
            Some(IntentState::Committed(_))
        ));
        assert_eq!(rec.state.deltas_for(5), vec![json!({"d": 1})]);
    }

    #[test]
    fn checkpoint_absorbs_fresh_capsules_and_clears_their_deltas() {
        let mut s = DurableStore::new(cfg(1));
        s.log_delta(5, json!({"d": 1})).unwrap();
        s.checkpoint(vec![(5, json!({"full": true}), true)])
            .unwrap();
        let rec = s.recover().unwrap();
        assert!(rec.state.deltas_for(5).is_empty());
        assert_eq!(
            rec.state.capsules.get(&5).unwrap().capsule,
            json!({"full": true})
        );
    }

    #[test]
    fn table_records_are_rejected() {
        let mut st = DurableState::default();
        assert!(st
            .apply(&LogRecord::CreateTable { table: "t".into() })
            .is_err());
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let mut s = DurableStore::new(cfg(1));
        s.log_intent(1, json!({})).unwrap();
        s.log_abort(1, "x".into()).unwrap();
        let c = s.take_counters();
        assert_eq!(c.wal_records_appended, 2);
        assert_eq!(c.intents_logged, 1);
        assert_eq!(c.purchases_aborted, 1);
        assert_eq!(s.counters().wal_records_appended, 0);
    }
}
