//! Error types for platform operations.

use crate::ids::{AgentId, HostId};
use std::fmt;

/// Errors returned by platform operations (creation, dispatch, messaging,
/// activation, authentication).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// The named host is not registered in the world.
    UnknownHost(HostId),
    /// The named agent does not exist (never created, disposed, or migrated
    /// away from the queried host).
    UnknownAgent(AgentId),
    /// The agent exists but is deactivated; the attempted operation needs a
    /// live agent.
    AgentDeactivated(AgentId),
    /// The agent is already active; `activate` on it is invalid.
    AgentAlreadyActive(AgentId),
    /// No factory is registered for this agent type, so a capsule for it
    /// cannot be rehydrated after migration or activation.
    UnknownAgentType(String),
    /// Serialization of agent state failed during capsule construction.
    SnapshotFailed(String),
    /// Deserialization of agent state failed during rehydration.
    RestoreFailed(String),
    /// A returning mobile agent presented an invalid or replayed travel
    /// permit (paper §4.1 principle 2: "MBA must authenticate itself to
    /// BSMA").
    AuthenticationFailed(AgentId),
    /// The network has no route between the two hosts.
    NoRoute(HostId, HostId),
    /// The operation is not permitted in the agent's current lifecycle
    /// state (e.g. dispatching an agent that is mid-dispatch).
    InvalidLifecycle {
        /// Agent the operation targeted.
        agent: AgentId,
        /// Human-readable description of the violated rule.
        reason: String,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::UnknownHost(h) => write!(f, "unknown host {h}"),
            PlatformError::UnknownAgent(a) => write!(f, "unknown agent {a}"),
            PlatformError::AgentDeactivated(a) => write!(f, "agent {a} is deactivated"),
            PlatformError::AgentAlreadyActive(a) => write!(f, "agent {a} is already active"),
            PlatformError::UnknownAgentType(t) => write!(f, "no factory for agent type `{t}`"),
            PlatformError::SnapshotFailed(e) => write!(f, "agent snapshot failed: {e}"),
            PlatformError::RestoreFailed(e) => write!(f, "agent restore failed: {e}"),
            PlatformError::AuthenticationFailed(a) => {
                write!(f, "authentication failed for returning agent {a}")
            }
            PlatformError::NoRoute(a, b) => write!(f, "no network route from {a} to {b}"),
            PlatformError::InvalidLifecycle { agent, reason } => {
                write!(f, "invalid lifecycle operation on {agent}: {reason}")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, PlatformError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = PlatformError::UnknownAgent(AgentId(5));
        assert_eq!(e.to_string(), "unknown agent agent-5");
        let e = PlatformError::NoRoute(HostId(1), HostId(2));
        assert!(e.to_string().contains("host-1"));
        assert!(e.to_string().contains("host-2"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<PlatformError>();
    }

    #[test]
    fn lifecycle_error_carries_reason() {
        let e = PlatformError::InvalidLifecycle {
            agent: AgentId(1),
            reason: "already dispatching".into(),
        };
        assert!(e.to_string().contains("already dispatching"));
    }
}
