//! Deterministic chaos engine: seed-derived fault plans for both runtimes.
//!
//! A [`ChaosPlan`] is a sim-time-scheduled sequence of faults — partition
//! windows with scheduled healing, extra link loss, slow links, host
//! crash/restart — plus message duplication and bounded-jitter reordering
//! knobs. Plans are derived from a seed by [`ChaosPlan::generate`], so any
//! failure observed under chaos reproduces exactly from the `(seed, plan)`
//! pair alone; the plan serializes to one JSON line for the repro command.
//!
//! [`sim::SimWorld::install_chaos`](crate::sim::SimWorld::install_chaos)
//! schedules the plan as ordinary DES events; the threaded runtime applies
//! the same fault vocabulary through [`ChaosKnobs`]. Both runtimes share
//! the semantics:
//!
//! * **partition / crash** — dispatching an agent toward an unreachable
//!   host fails *synchronously*: the agent stays put and gets
//!   [`Agent::on_dispatch_failed`](crate::agent::Agent::on_dispatch_failed).
//!   Messages toward (or from) the dead side are dropped.
//! * **link loss** — an overlay probability on top of the configured link
//!   spec; drops count as [`Metrics::chaos_drops`](crate::metrics::Metrics).
//! * **duplication** — a copy of a delivered message is scheduled later
//!   *with the same message id*; receivers suppress the duplicate.
//! * **reordering** — bounded extra delivery jitter, FIFO-clamped per
//!   sender/receiver pair so causal message order within a conversation
//!   is preserved (TCP-like), only cross-pair interleaving changes.

use crate::clock::{SimDuration, SimTime};
use crate::ids::HostId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// One injectable fault. Every fault heals: the window is part of the
/// scheduled [`ChaosEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// Hard partition between hosts `a` and `b` (both directions).
    Partition {
        /// One side of the partitioned pair.
        a: HostId,
        /// The other side.
        b: HostId,
    },
    /// Extra loss probability overlaid on the pair `a`/`b`.
    LinkLoss {
        /// One side of the lossy pair.
        a: HostId,
        /// The other side.
        b: HostId,
        /// Overlay loss probability in `[0, 1]`.
        loss: f64,
    },
    /// Delivery-time multiplier on the pair `a`/`b`.
    SlowLink {
        /// One side of the slowed pair.
        a: HostId,
        /// The other side.
        b: HostId,
        /// Multiplier applied to delivery time (≥ 1).
        factor: f64,
    },
    /// Crash `host`: every active agent and stored capsule on it is lost
    /// and arrivals/deliveries fail until the scheduled restart.
    CrashHost {
        /// The host that crashes.
        host: HostId,
    },
    /// Hang `host`: the host stays up and reachable (arrivals land, no
    /// state is lost) but its agents stop draining their mailboxes —
    /// deliveries and timer callbacks stall until the fault heals or a
    /// supervisor bounces the host. Stuck-not-dead, distinct from
    /// [`Fault::CrashHost`].
    Hang {
        /// The host that wedges.
        host: HostId,
    },
}

/// A fault scheduled at a sim time, healing after a delay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosEvent {
    /// When the fault strikes (microseconds of sim time).
    pub at_us: u64,
    /// How long the fault lasts before healing (microseconds).
    pub heal_after_us: u64,
    /// What happens.
    pub fault: Fault,
}

impl ChaosEvent {
    /// Sim time at which the fault is applied.
    pub fn at(&self) -> SimTime {
        SimTime(self.at_us)
    }

    /// Sim time at which the fault heals.
    pub fn heals_at(&self) -> SimTime {
        SimTime(self.at_us.saturating_add(self.heal_after_us))
    }
}

/// A complete, reproducible fault schedule.
///
/// `Display` prints the plan as a single JSON line — paste it next to the
/// seed to reproduce a failing run exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Seed the plan was derived from (also the world seed in the sweep).
    pub seed: u64,
    /// Probability that a delivered message is duplicated.
    pub dup_probability: f64,
    /// Probability that a delivery picks up extra jitter.
    pub reorder_probability: f64,
    /// Maximum extra jitter per delivery (microseconds).
    pub max_jitter_us: u64,
    /// Scheduled fault windows, in no particular order.
    pub events: Vec<ChaosEvent>,
}

/// Input to [`ChaosPlan::generate`]: which parts of the world the plan is
/// allowed to break, and how hard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Horizon (microseconds) within which faults strike; heal times may
    /// extend up to 50% past it.
    pub horizon_us: u64,
    /// Host pairs whose links may be partitioned / degraded.
    pub links: Vec<(HostId, HostId)>,
    /// Hosts that may crash (keep coordinator/server hosts out of this
    /// list if the application cannot survive losing them).
    pub crashable: Vec<HostId>,
    /// Hosts that may hang (stuck-not-dead). Empty by default — plans
    /// derived from configs without hangable hosts draw no hang
    /// randomness, so pre-existing `(seed, config)` pairs keep producing
    /// byte-identical plans.
    #[serde(default)]
    pub hangable: Vec<HostId>,
    /// 0.0 = no faults, 1.0 = full configured intensity.
    pub intensity: f64,
}

impl ChaosConfig {
    /// A config breaking the given links and hosts over `horizon_us` at
    /// full intensity.
    pub fn new(horizon_us: u64, links: Vec<(HostId, HostId)>, crashable: Vec<HostId>) -> Self {
        ChaosConfig {
            horizon_us,
            links,
            crashable,
            hangable: Vec::new(),
            intensity: 1.0,
        }
    }

    /// Allow the given hosts to hang (stuck-not-dead). Opt-in: without
    /// this the generator never draws hang randomness, keeping legacy
    /// plans byte-identical.
    pub fn with_hangs(mut self, hangable: Vec<HostId>) -> Self {
        self.hangable = hangable;
        self
    }

    /// Scale how many faults are generated and how aggressive the
    /// dup/reorder knobs are (clamped to `[0, 1]`).
    pub fn with_intensity(mut self, intensity: f64) -> Self {
        self.intensity = if intensity.is_nan() {
            0.0
        } else {
            intensity.clamp(0.0, 1.0)
        };
        self
    }
}

impl ChaosPlan {
    /// A plan with no faults and no message mangling.
    pub fn quiet(seed: u64) -> Self {
        ChaosPlan {
            seed,
            dup_probability: 0.0,
            reorder_probability: 0.0,
            max_jitter_us: 0,
            events: Vec::new(),
        }
    }

    /// Derive a plan from `seed`. The derivation uses its own
    /// `StdRng::seed_from_u64(seed)`, so the same `(seed, config)` always
    /// yields the same plan, independent of the world's RNG state.
    pub fn generate(seed: u64, config: &ChaosConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let intensity = config.intensity.clamp(0.0, 1.0);
        let mut plan = ChaosPlan {
            seed,
            dup_probability: rng.gen_range(0.0..0.35) * intensity,
            reorder_probability: rng.gen_range(0.0..0.5) * intensity,
            max_jitter_us: rng.gen_range(200u64..5_000),
            events: Vec::new(),
        };
        if config.horizon_us == 0 || intensity == 0.0 {
            return plan;
        }
        let n_link_faults = if config.links.is_empty() {
            0
        } else {
            ((1 + rng.gen_range(0..4)) as f64 * intensity).round() as usize
        };
        for _ in 0..n_link_faults {
            let (a, b) = config.links[rng.gen_range(0..config.links.len())];
            let fault = match rng.gen_range(0..3u8) {
                0 => Fault::Partition { a, b },
                1 => Fault::LinkLoss {
                    a,
                    b,
                    loss: rng.gen_range(0.2..1.0),
                },
                _ => Fault::SlowLink {
                    a,
                    b,
                    factor: rng.gen_range(2.0..20.0),
                },
            };
            let lo = config.horizon_us / 20;
            let hi = (config.horizon_us / 2).max(lo + 1);
            plan.events.push(ChaosEvent {
                at_us: rng.gen_range(0..config.horizon_us),
                heal_after_us: rng.gen_range(lo..hi).max(1),
                fault,
            });
        }
        let n_crashes = if config.crashable.is_empty() {
            0
        } else {
            (rng.gen_range(0..2) as f64 * intensity).round() as usize
        };
        for _ in 0..n_crashes {
            let host = config.crashable[rng.gen_range(0..config.crashable.len())];
            let lo = config.horizon_us / 10;
            let hi = (config.horizon_us / 2).max(lo + 1);
            plan.events.push(ChaosEvent {
                at_us: rng.gen_range(0..config.horizon_us),
                heal_after_us: rng.gen_range(lo..hi).max(1),
                fault: Fault::CrashHost { host },
            });
        }
        // Hang faults are drawn last and only when hangable hosts were
        // opted in, so every draw above is unchanged for legacy configs.
        let n_hangs = if config.hangable.is_empty() {
            0
        } else {
            (rng.gen_range(0..2) as f64 * intensity).round() as usize
        };
        for _ in 0..n_hangs {
            let host = config.hangable[rng.gen_range(0..config.hangable.len())];
            let lo = config.horizon_us / 10;
            let hi = (config.horizon_us / 2).max(lo + 1);
            plan.events.push(ChaosEvent {
                at_us: rng.gen_range(0..config.horizon_us),
                heal_after_us: rng.gen_range(lo..hi).max(1),
                fault: Fault::Hang { host },
            });
        }
        plan
    }

    /// Whether the plan injects any fault or message mangling at all.
    pub fn is_quiet(&self) -> bool {
        self.events.is_empty() && self.dup_probability == 0.0 && self.reorder_probability == 0.0
    }
}

impl fmt::Display for ChaosPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match serde_json::to_string(self) {
            Ok(json) => f.write_str(&json),
            Err(_) => write!(f, "ChaosPlan{{seed:{}}}", self.seed),
        }
    }
}

/// Live fault switches for the threaded runtime (no sim clock to schedule
/// against): the test harness flips these while the world runs. The DES
/// runtime derives the same vocabulary from a [`ChaosPlan`] instead.
#[derive(Debug, Default)]
pub struct ChaosKnobs {
    /// Probability that a remote message is dropped.
    pub drop_probability: f64,
    /// Probability that a delivered message is duplicated.
    pub dup_probability: f64,
    /// Hard-partitioned unordered host pairs.
    pub partitions: HashSet<(HostId, HostId)>,
    /// Currently crashed hosts.
    pub crashed: HashSet<HostId>,
    /// Currently hung hosts: up and reachable, but deliveries and timers
    /// addressed to their agents are parked instead of processed.
    pub hung: HashSet<HostId>,
}

impl ChaosKnobs {
    /// Partition the pair `a`/`b` (stored normalized, both directions).
    pub fn partition(&mut self, a: HostId, b: HostId) {
        let key = if a.0 <= b.0 { (a, b) } else { (b, a) };
        self.partitions.insert(key);
    }

    /// Heal a partition installed by [`ChaosKnobs::partition`].
    pub fn heal_partition(&mut self, a: HostId, b: HostId) {
        let key = if a.0 <= b.0 { (a, b) } else { (b, a) };
        self.partitions.remove(&key);
    }

    /// Whether traffic between `a` and `b` is blocked by a partition or a
    /// crash of either endpoint.
    pub fn blocks(&self, a: HostId, b: HostId) -> bool {
        if self.crashed.contains(&a) || self.crashed.contains(&b) {
            return true;
        }
        let key = if a.0 <= b.0 { (a, b) } else { (b, a) };
        a != b && self.partitions.contains(&key)
    }

    /// Whether any knob deviates from the quiet default.
    pub fn any_active(&self) -> bool {
        self.drop_probability > 0.0
            || self.dup_probability > 0.0
            || !self.partitions.is_empty()
            || !self.crashed.is_empty()
            || !self.hung.is_empty()
    }
}

/// Upper bound on chaos-injected extra delivery delay used by the DES
/// runtime when a plan does not specify one.
pub const DEFAULT_MAX_JITTER: SimDuration = SimDuration(2_000);

#[cfg(test)]
mod tests {
    #![allow(clippy::panic)]

    use super::*;

    fn config() -> ChaosConfig {
        ChaosConfig::new(
            5_000_000,
            vec![(HostId(1), HostId(2)), (HostId(1), HostId(3))],
            vec![HostId(2)],
        )
    }

    #[test]
    fn generate_is_deterministic_in_the_seed() {
        let a = ChaosPlan::generate(42, &config());
        let b = ChaosPlan::generate(42, &config());
        assert_eq!(a, b);
        let c = ChaosPlan::generate(43, &config());
        assert_ne!(a, c, "different seeds should yield different plans");
    }

    #[test]
    fn generated_faults_stay_within_bounds() {
        for seed in 0..64 {
            let plan = ChaosPlan::generate(seed, &config());
            assert!((0.0..=0.35).contains(&plan.dup_probability));
            assert!((0.0..=0.5).contains(&plan.reorder_probability));
            for ev in &plan.events {
                assert!(ev.at_us < 5_000_000);
                assert!(ev.heal_after_us >= 1);
                assert!(ev.heals_at() > ev.at());
                match ev.fault {
                    Fault::LinkLoss { loss, .. } => assert!((0.0..=1.0).contains(&loss)),
                    Fault::SlowLink { factor, .. } => assert!(factor >= 1.0),
                    Fault::CrashHost { host } => assert_eq!(host, HostId(2)),
                    Fault::Partition { .. } => {}
                    Fault::Hang { .. } => {
                        panic!("hang faults require hangable hosts, none configured")
                    }
                }
            }
        }
    }

    #[test]
    fn hang_faults_require_opt_in_and_target_only_hangable_hosts() {
        // Without hangable hosts the plan is byte-identical to the legacy
        // derivation (no hang randomness is drawn at all).
        for seed in 0..64 {
            let legacy = ChaosPlan::generate(seed, &config());
            let explicit = ChaosPlan::generate(seed, &config().with_hangs(Vec::new()));
            assert_eq!(legacy, explicit);
        }
        // With hangable hosts, hangs strike only those hosts; at least one
        // seed in the range produces one.
        let hang_cfg = config().with_hangs(vec![HostId(3)]);
        let mut seen = 0;
        for seed in 0..64 {
            let plan = ChaosPlan::generate(seed, &hang_cfg);
            for ev in &plan.events {
                if let Fault::Hang { host } = ev.fault {
                    assert_eq!(host, HostId(3));
                    seen += 1;
                }
            }
        }
        assert!(seen > 0, "64 seeds should produce at least one hang");
    }

    #[test]
    fn zero_intensity_is_quiet() {
        let plan = ChaosPlan::generate(7, &config().with_intensity(0.0));
        assert!(plan.is_quiet());
        assert!(ChaosPlan::quiet(7).is_quiet());
    }

    #[test]
    fn plan_round_trips_serde_and_displays_as_json() {
        let plan = ChaosPlan::generate(11, &config());
        let line = plan.to_string();
        let back: ChaosPlan = serde_json::from_str(&line).unwrap();
        assert_eq!(plan, back, "Display output must reproduce the plan");
    }

    #[test]
    fn knobs_block_partitioned_pairs_and_crashed_hosts() {
        let mut knobs = ChaosKnobs::default();
        assert!(!knobs.any_active());
        knobs.partition(HostId(2), HostId(1));
        assert!(knobs.blocks(HostId(2), HostId(1)), "order-insensitive");
        assert!(!knobs.blocks(HostId(1), HostId(3)));
        knobs.crashed.insert(HostId(3));
        assert!(knobs.blocks(HostId(1), HostId(3)));
        assert!(knobs.blocks(HostId(3), HostId(3)), "crashed blocks local");
        assert!(knobs.any_active());
        // A hung host stays reachable: it parks work instead of refusing it.
        let mut hung = ChaosKnobs::default();
        hung.hung.insert(HostId(4));
        assert!(
            !hung.blocks(HostId(1), HostId(4)),
            "hung hosts accept traffic"
        );
        assert!(hung.any_active());
    }
}
