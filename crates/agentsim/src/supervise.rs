//! Self-healing supervision: failure detection, heartbeat leases, restart
//! budgets, and the policy engine behind automatic host failover.
//!
//! The [`Supervisor`] is a pure, clock-agnostic state machine shared by
//! both runtimes: the DES world drives it from sim time on a scheduled
//! detector tick, the threaded world from wall time on a dedicated
//! supervisor thread. Each runtime reports raw observations (a host
//! crashed, a host stopped draining its mailbox, a host came back) and
//! periodically asks for verdicts via [`Supervisor::tick`]; the runtime
//! then executes the verdicts (re-running the durable replay/rehydrate
//! path on a standby host, bouncing a hung host, quarantining a
//! crash-looping agent).
//!
//! Determinism: the supervisor holds no randomness and iterates its watch
//! tables in `BTreeMap` order, so on the DES runtime the same seed and the
//! same [`SupervisionConfig`] yield the same detection and failover
//! timeline, event for event.

use crate::ids::{AgentId, HostId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Tuning knobs for the self-healing layer. All times are microseconds —
/// of sim time on the DES runtime, of wall time on the threaded one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SupervisionConfig {
    /// Heartbeat lease interval: how often the failure detector looks at
    /// the world. A crashed host is *suspected* after missing one lease.
    pub lease_interval_us: u64,
    /// Missed leases (beyond the first) a suspected host is granted
    /// before its lease expires and failover starts.
    pub lease_grace: u32,
    /// How long a host's mailbox may sit stalled before the detector
    /// declares it hung (stuck-not-dead) and bounces it.
    pub hang_grace_us: u64,
    /// Restorations allowed per agent before it is quarantined to
    /// dead-letters instead of being restored again (poison protection).
    pub restart_budget: u32,
    /// Base backoff between successive automatic recoveries of the same
    /// host; doubles per recovery (exponential), capped at
    /// [`SupervisionConfig::backoff_max_us`].
    pub backoff_base_us: u64,
    /// Ceiling on the per-host recovery backoff.
    pub backoff_max_us: u64,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        SupervisionConfig {
            lease_interval_us: 250_000,
            lease_grace: 2,
            hang_grace_us: 500_000,
            restart_budget: 3,
            backoff_base_us: 100_000,
            backoff_max_us: 2_000_000,
        }
    }
}

impl SupervisionConfig {
    /// Sim/wall time after a crash at which the host's lease expires and
    /// failover may begin: one missed lease to suspect, `lease_grace`
    /// further leases to expire.
    pub fn lease_expiry_us(&self) -> u64 {
        self.lease_interval_us
            .saturating_mul(1 + self.lease_grace as u64)
    }
}

/// What the failure detector decided a host needs this tick. Returned by
/// [`Supervisor::tick`] in deterministic (host id) order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The host missed a heartbeat lease: mark it suspected (observable,
    /// but no recovery action yet).
    Suspect(HostId),
    /// The suspected host's lease expired: run automatic recovery
    /// (replay/rehydrate onto a standby, reclaim roamers).
    FailOver(HostId),
    /// The host is alive but its mailbox has been stalled past the hang
    /// grace: bounce it (clear the wedge, replay the stalled work).
    BounceHang(HostId),
}

/// Whether a capsule should be restored by a recovery pass or quarantined
/// because the agent has exhausted its restart budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestoreDecision {
    /// Within budget: restore the agent.
    Restore,
    /// Budget exhausted: skip the restore and count the agent as
    /// quarantined; its traffic dead-letters instead of crash-looping.
    Quarantine,
}

#[derive(Debug, Default, Clone)]
struct HostWatch {
    /// When the host was observed down (`None` = believed up).
    down_since: Option<u64>,
    /// Whether a `Suspect` verdict was already issued for this outage.
    suspected: bool,
    /// When the host's mailbox was observed stalled (`None` = draining).
    hung_since: Option<u64>,
    /// Automatic recoveries performed on this host so far (drives the
    /// exponential backoff).
    recoveries: u32,
    /// Earliest time the next automatic recovery of this host may run.
    not_before: u64,
}

/// The supervision policy engine. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Supervisor {
    cfg: SupervisionConfig,
    watches: BTreeMap<u32, HostWatch>,
    /// Restorations performed per agent (raw id), across every recovery
    /// pass while supervision is enabled.
    restores: BTreeMap<u64, u32>,
    quarantined: BTreeSet<u64>,
}

impl Supervisor {
    /// A supervisor with the given policy and no observations yet.
    pub fn new(cfg: SupervisionConfig) -> Self {
        Supervisor {
            cfg,
            watches: BTreeMap::new(),
            restores: BTreeMap::new(),
            quarantined: BTreeSet::new(),
        }
    }

    /// The active policy.
    pub fn config(&self) -> &SupervisionConfig {
        &self.cfg
    }

    /// Report that `host` crashed at `now_us`. Idempotent while the host
    /// stays down.
    pub fn observe_crash(&mut self, host: HostId, now_us: u64) {
        let w = self.watches.entry(host.0).or_default();
        if w.down_since.is_none() {
            w.down_since = Some(now_us);
            w.suspected = false;
        }
    }

    /// Report that `host` came back up (scripted restart or completed
    /// failover): its outage watch is cleared.
    pub fn observe_restart(&mut self, host: HostId) {
        if let Some(w) = self.watches.get_mut(&host.0) {
            w.down_since = None;
            w.suspected = false;
        }
    }

    /// Report that `host` stopped draining its mailbox at `now_us`
    /// (deliveries are parking instead of being processed). Idempotent
    /// while the stall lasts.
    pub fn observe_hang(&mut self, host: HostId, now_us: u64) {
        let w = self.watches.entry(host.0).or_default();
        if w.hung_since.is_none() {
            w.hung_since = Some(now_us);
        }
    }

    /// Report that `host` is draining again (healed or bounced).
    pub fn observe_hang_cleared(&mut self, host: HostId) {
        if let Some(w) = self.watches.get_mut(&host.0) {
            w.hung_since = None;
        }
    }

    /// Run the failure detector at `now_us`; returns the verdicts to
    /// execute, in ascending host-id order (deterministic).
    pub fn tick(&mut self, now_us: u64) -> Vec<Verdict> {
        let cfg = self.cfg;
        let backoff = |recoveries: u32| -> u64 {
            let shift = recoveries.saturating_sub(1).min(20);
            cfg.backoff_base_us
                .saturating_shl(shift)
                .min(cfg.backoff_max_us)
        };
        let mut verdicts = Vec::new();
        for (raw, w) in self.watches.iter_mut() {
            let host = HostId(*raw);
            if let Some(since) = w.down_since {
                let missed = now_us.saturating_sub(since);
                if !w.suspected && missed >= self.cfg.lease_interval_us {
                    w.suspected = true;
                    verdicts.push(Verdict::Suspect(host));
                }
                if w.suspected && missed >= cfg.lease_expiry_us() && now_us >= w.not_before {
                    w.down_since = None;
                    w.suspected = false;
                    w.recoveries += 1;
                    w.not_before = now_us.saturating_add(backoff(w.recoveries));
                    verdicts.push(Verdict::FailOver(host));
                }
            }
            if let Some(since) = w.hung_since {
                if now_us.saturating_sub(since) >= cfg.hang_grace_us && now_us >= w.not_before {
                    w.hung_since = None;
                    w.recoveries += 1;
                    w.not_before = now_us.saturating_add(backoff(w.recoveries));
                    verdicts.push(Verdict::BounceHang(host));
                }
            }
        }
        verdicts
    }

    /// Whether any watched host currently has an outstanding observation
    /// (outage or stall) that future ticks must act on. When false the
    /// detector can go dormant.
    pub fn watching(&self) -> bool {
        self.watches
            .values()
            .any(|w| w.down_since.is_some() || w.hung_since.is_some())
    }

    /// Charge one restoration of `agent` against its restart budget.
    pub fn note_restore(&mut self, agent: AgentId) -> RestoreDecision {
        if self.quarantined.contains(&agent.0) {
            return RestoreDecision::Quarantine;
        }
        let count = self.restores.entry(agent.0).or_insert(0);
        *count += 1;
        if *count > self.cfg.restart_budget {
            self.quarantined.insert(agent.0);
            RestoreDecision::Quarantine
        } else {
            RestoreDecision::Restore
        }
    }

    /// Whether `agent` has been quarantined by [`Supervisor::note_restore`].
    pub fn is_quarantined(&self, agent: AgentId) -> bool {
        self.quarantined.contains(&agent.0)
    }

    /// Number of agents currently quarantined.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }
}

/// `u64::checked_shl` with saturation, missing from std for the pattern
/// used by the backoff above.
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> Self {
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::panic)]

    use super::*;

    fn cfg() -> SupervisionConfig {
        SupervisionConfig {
            lease_interval_us: 100,
            lease_grace: 2,
            hang_grace_us: 250,
            restart_budget: 2,
            backoff_base_us: 50,
            backoff_max_us: 400,
        }
    }

    #[test]
    fn crash_is_suspected_then_failed_over_after_grace() {
        let mut sup = Supervisor::new(cfg());
        sup.observe_crash(HostId(3), 1_000);
        assert!(sup.tick(1_050).is_empty(), "within the first lease");
        assert_eq!(sup.tick(1_100), vec![Verdict::Suspect(HostId(3))]);
        assert!(sup.tick(1_200).is_empty(), "suspected, grace not spent");
        assert_eq!(sup.tick(1_300), vec![Verdict::FailOver(HostId(3))]);
        assert!(sup.tick(1_400).is_empty(), "outage handled");
        assert!(!sup.watching());
    }

    #[test]
    fn restart_before_expiry_cancels_failover() {
        let mut sup = Supervisor::new(cfg());
        sup.observe_crash(HostId(1), 0);
        assert_eq!(sup.tick(100), vec![Verdict::Suspect(HostId(1))]);
        sup.observe_restart(HostId(1));
        assert!(sup.tick(1_000).is_empty(), "host healed on its own");
    }

    #[test]
    fn repeated_crashes_back_off_exponentially() {
        let mut sup = Supervisor::new(cfg());
        sup.observe_crash(HostId(1), 0);
        sup.tick(100);
        assert_eq!(sup.tick(300), vec![Verdict::FailOver(HostId(1))]);
        // Second outage immediately after: recovery is delayed by the
        // backoff (not_before = 300 + 50), not just the lease expiry.
        sup.observe_crash(HostId(1), 300);
        sup.tick(400);
        assert_eq!(sup.tick(600), vec![Verdict::FailOver(HostId(1))]);
        // Third outage: backoff doubled (100), expiry at 900 but
        // not_before is 700 — still the expiry dominates here; crash a
        // fourth time to see the cap engage without panicking.
        sup.observe_crash(HostId(1), 600);
        sup.tick(700);
        assert_eq!(sup.tick(900), vec![Verdict::FailOver(HostId(1))]);
    }

    #[test]
    fn hang_bounces_after_grace() {
        let mut sup = Supervisor::new(cfg());
        sup.observe_hang(HostId(2), 1_000);
        assert!(sup.tick(1_100).is_empty());
        assert_eq!(sup.tick(1_250), vec![Verdict::BounceHang(HostId(2))]);
        assert!(!sup.watching());
    }

    #[test]
    fn hang_cleared_by_heal_never_bounces() {
        let mut sup = Supervisor::new(cfg());
        sup.observe_hang(HostId(2), 0);
        sup.observe_hang_cleared(HostId(2));
        assert!(sup.tick(10_000).is_empty());
    }

    #[test]
    fn restart_budget_quarantines_crash_loopers() {
        let mut sup = Supervisor::new(cfg());
        let a = AgentId(7);
        assert_eq!(sup.note_restore(a), RestoreDecision::Restore);
        assert_eq!(sup.note_restore(a), RestoreDecision::Restore);
        assert_eq!(sup.note_restore(a), RestoreDecision::Quarantine);
        assert!(sup.is_quarantined(a));
        assert_eq!(sup.note_restore(a), RestoreDecision::Quarantine);
        assert_eq!(sup.quarantined_count(), 1);
    }

    #[test]
    fn verdicts_come_in_host_id_order() {
        let mut sup = Supervisor::new(cfg());
        sup.observe_crash(HostId(9), 0);
        sup.observe_crash(HostId(2), 0);
        let verdicts = sup.tick(100);
        assert_eq!(
            verdicts,
            vec![Verdict::Suspect(HostId(2)), Verdict::Suspect(HostId(9))]
        );
    }

    #[test]
    fn config_round_trips_serde() {
        let c = SupervisionConfig::default();
        let back: SupervisionConfig =
            serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
        assert_eq!(c, back);
        assert_eq!(c.lease_expiry_us(), 750_000);
    }
}
