//! Network topology and link model.
//!
//! Hosts are connected by point-to-point links with latency, bandwidth and
//! an optional loss probability. Transfer time for a payload is
//! `latency + bytes / bandwidth`. The model is intentionally simple — the
//! paper's claims about mobile agents (§1: *"reduce the network load,
//! overcome network latency"*) are about exactly these two parameters, and
//! experiment E8 sweeps them.

use crate::clock::SimDuration;
use crate::ids::HostId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Characteristics of a (directed) link between two hosts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Bytes per second. `0` means infinite bandwidth (no serialization
    /// delay).
    pub bandwidth_bps: u64,
    /// Probability in `[0, 1]` that a transfer is lost.
    pub loss: f64,
}

impl LinkSpec {
    /// A LAN-ish link: 0.2 ms latency, 1 Gbit/s, lossless.
    pub fn lan() -> Self {
        LinkSpec {
            latency: SimDuration::from_micros(200),
            bandwidth_bps: 125_000_000,
            loss: 0.0,
        }
    }

    /// A WAN-ish link: 40 ms latency, 10 Mbit/s, lossless.
    pub fn wan() -> Self {
        LinkSpec {
            latency: SimDuration::from_millis(40),
            bandwidth_bps: 1_250_000,
            loss: 0.0,
        }
    }

    /// A link with the given latency and infinite bandwidth.
    pub fn with_latency(latency: SimDuration) -> Self {
        LinkSpec {
            latency,
            bandwidth_bps: 0,
            loss: 0.0,
        }
    }

    /// Set the loss probability (clamped to `[0, 1]`).
    pub fn lossy(mut self, loss: f64) -> Self {
        self.loss = loss.clamp(0.0, 1.0);
        self
    }

    /// Time to move `bytes` across this link.
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        if self.bandwidth_bps == 0 {
            return self.latency;
        }
        let serialization_us = (bytes as f64 / self.bandwidth_bps as f64) * 1_000_000.0;
        self.latency + SimDuration::from_micros(serialization_us as u64)
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec::lan()
    }
}

/// World topology: per-pair link specs with a default fallback.
///
/// Local (same-host) delivery uses [`Topology::local_delay`], modelling the
/// in-process message queue rather than a NIC.
#[derive(Debug, Clone)]
pub struct Topology {
    default_link: LinkSpec,
    links: HashMap<(HostId, HostId), LinkSpec>,
    local_delay: SimDuration,
}

impl Topology {
    /// Topology where every pair uses `default_link`.
    pub fn uniform(default_link: LinkSpec) -> Self {
        Topology {
            default_link,
            links: HashMap::new(),
            local_delay: SimDuration::from_micros(1),
        }
    }

    /// LAN topology (the common single-site deployment).
    pub fn lan() -> Self {
        Self::uniform(LinkSpec::lan())
    }

    /// Override the link for the directed pair `(from, to)`.
    pub fn set_link(&mut self, from: HostId, to: HostId, spec: LinkSpec) -> &mut Self {
        self.links.insert((from, to), spec);
        self
    }

    /// Override the link in both directions.
    pub fn set_link_symmetric(&mut self, a: HostId, b: HostId, spec: LinkSpec) -> &mut Self {
        self.set_link(a, b, spec);
        self.set_link(b, a, spec);
        self
    }

    /// Set the same-host delivery delay.
    pub fn set_local_delay(&mut self, delay: SimDuration) -> &mut Self {
        self.local_delay = delay;
        self
    }

    /// Link spec between two (distinct) hosts.
    pub fn link(&self, from: HostId, to: HostId) -> LinkSpec {
        self.links
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// Same-host delivery delay.
    pub fn local_delay(&self) -> SimDuration {
        self.local_delay
    }

    /// Delivery time for `bytes` from `from` to `to` (handles same-host).
    pub fn delivery_time(&self, from: HostId, to: HostId, bytes: usize) -> SimDuration {
        if from == to {
            self.local_delay
        } else {
            self.link(from, to).transfer_time(bytes)
        }
    }

    /// Loss probability from `from` to `to` (same-host is lossless).
    pub fn loss(&self, from: HostId, to: HostId) -> f64 {
        if from == to {
            0.0
        } else {
            self.link(from, to).loss
        }
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_includes_serialization_delay() {
        let link = LinkSpec {
            latency: SimDuration::from_millis(1),
            bandwidth_bps: 1_000_000, // 1 MB/s
            loss: 0.0,
        };
        // 500 KB at 1 MB/s = 0.5 s
        let t = link.transfer_time(500_000);
        assert_eq!(t.as_micros(), 1_000 + 500_000);
    }

    #[test]
    fn infinite_bandwidth_only_pays_latency() {
        let link = LinkSpec::with_latency(SimDuration::from_millis(5));
        assert_eq!(link.transfer_time(10_000_000), SimDuration::from_millis(5));
    }

    #[test]
    fn topology_override_beats_default() {
        let mut topo = Topology::lan();
        topo.set_link(HostId(1), HostId(2), LinkSpec::wan());
        assert_eq!(topo.link(HostId(1), HostId(2)), LinkSpec::wan());
        // reverse direction still default
        assert_eq!(topo.link(HostId(2), HostId(1)), LinkSpec::lan());
        topo.set_link_symmetric(HostId(1), HostId(2), LinkSpec::wan());
        assert_eq!(topo.link(HostId(2), HostId(1)), LinkSpec::wan());
    }

    #[test]
    fn local_delivery_is_cheap_and_lossless() {
        let mut topo = Topology::uniform(LinkSpec::wan().lossy(0.5));
        topo.set_local_delay(SimDuration::from_micros(2));
        assert_eq!(
            topo.delivery_time(HostId(3), HostId(3), 1_000_000),
            SimDuration(2)
        );
        assert_eq!(topo.loss(HostId(3), HostId(3)), 0.0);
        assert!(topo.loss(HostId(3), HostId(4)) > 0.4);
    }

    #[test]
    fn lossy_clamps_probability() {
        assert_eq!(LinkSpec::lan().lossy(3.0).loss, 1.0);
        assert_eq!(LinkSpec::lan().lossy(-1.0).loss, 0.0);
    }

    #[test]
    fn wan_is_slower_than_lan() {
        let bytes = 10_000;
        assert!(
            LinkSpec::wan().transfer_time(bytes) > LinkSpec::lan().transfer_time(bytes),
            "wan must dominate lan for the same payload"
        );
    }
}
