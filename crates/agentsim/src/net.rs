//! Network topology and link model.
//!
//! Hosts are connected by point-to-point links with latency, bandwidth and
//! an optional loss probability. Transfer time for a payload is
//! `latency + bytes / bandwidth`. The model is intentionally simple — the
//! paper's claims about mobile agents (§1: *"reduce the network load,
//! overcome network latency"*) are about exactly these two parameters, and
//! experiment E8 sweeps them.

use crate::clock::SimDuration;
use crate::ids::HostId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Normalize an unordered host pair so `(a, b)` and `(b, a)` share a key.
fn pair(a: HostId, b: HostId) -> (HostId, HostId) {
    if a.0 <= b.0 {
        (a, b)
    } else {
        (b, a)
    }
}

/// Characteristics of a (directed) link between two hosts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Bytes per second. `0` means infinite bandwidth (no serialization
    /// delay).
    pub bandwidth_bps: u64,
    /// Probability in `[0, 1]` that a transfer is lost.
    pub loss: f64,
}

impl LinkSpec {
    /// A LAN-ish link: 0.2 ms latency, 1 Gbit/s, lossless.
    pub fn lan() -> Self {
        LinkSpec {
            latency: SimDuration::from_micros(200),
            bandwidth_bps: 125_000_000,
            loss: 0.0,
        }
    }

    /// A WAN-ish link: 40 ms latency, 10 Mbit/s, lossless.
    pub fn wan() -> Self {
        LinkSpec {
            latency: SimDuration::from_millis(40),
            bandwidth_bps: 1_250_000,
            loss: 0.0,
        }
    }

    /// A link with the given latency and infinite bandwidth.
    pub fn with_latency(latency: SimDuration) -> Self {
        LinkSpec {
            latency,
            bandwidth_bps: 0,
            loss: 0.0,
        }
    }

    /// Set the loss probability (clamped to `[0, 1]`; `NaN` maps to `0`).
    pub fn lossy(mut self, loss: f64) -> Self {
        self.loss = if loss.is_nan() {
            0.0
        } else {
            loss.clamp(0.0, 1.0)
        };
        self
    }

    /// Time to move `bytes` across this link.
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        if self.bandwidth_bps == 0 {
            return self.latency;
        }
        let serialization_us = (bytes as f64 / self.bandwidth_bps as f64) * 1_000_000.0;
        self.latency + SimDuration::from_micros(serialization_us as u64)
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec::lan()
    }
}

/// World topology: per-pair link specs with a default fallback.
///
/// Local (same-host) delivery uses [`Topology::local_delay`], modelling the
/// in-process message queue rather than a NIC.
#[derive(Debug, Clone)]
pub struct Topology {
    default_link: LinkSpec,
    links: HashMap<(HostId, HostId), LinkSpec>,
    local_delay: SimDuration,
    /// Fault overlay: hard-partitioned unordered pairs (loss forced to 1).
    partitions: HashSet<(HostId, HostId)>,
    /// Fault overlay: extra loss probability per unordered pair.
    fault_loss: HashMap<(HostId, HostId), f64>,
    /// Fault overlay: delivery-time multiplier per unordered pair.
    slowdown: HashMap<(HostId, HostId), f64>,
}

impl Topology {
    /// Topology where every pair uses `default_link`.
    pub fn uniform(default_link: LinkSpec) -> Self {
        Topology {
            default_link,
            links: HashMap::new(),
            local_delay: SimDuration::from_micros(1),
            partitions: HashSet::new(),
            fault_loss: HashMap::new(),
            slowdown: HashMap::new(),
        }
    }

    /// LAN topology (the common single-site deployment).
    pub fn lan() -> Self {
        Self::uniform(LinkSpec::lan())
    }

    /// Override the link for the directed pair `(from, to)`.
    pub fn set_link(&mut self, from: HostId, to: HostId, spec: LinkSpec) -> &mut Self {
        self.links.insert((from, to), spec);
        self
    }

    /// Override the link in both directions.
    pub fn set_link_symmetric(&mut self, a: HostId, b: HostId, spec: LinkSpec) -> &mut Self {
        self.set_link(a, b, spec);
        self.set_link(b, a, spec);
        self
    }

    /// Set the same-host delivery delay.
    pub fn set_local_delay(&mut self, delay: SimDuration) -> &mut Self {
        self.local_delay = delay;
        self
    }

    /// Link spec between two (distinct) hosts.
    pub fn link(&self, from: HostId, to: HostId) -> LinkSpec {
        self.links
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// Same-host delivery delay.
    pub fn local_delay(&self) -> SimDuration {
        self.local_delay
    }

    /// Delivery time for `bytes` from `from` to `to` (handles same-host).
    /// A fault-overlay slowdown on the pair multiplies the link time.
    pub fn delivery_time(&self, from: HostId, to: HostId, bytes: usize) -> SimDuration {
        if from == to {
            return self.local_delay;
        }
        let base = self.link(from, to).transfer_time(bytes);
        match self.slowdown.get(&pair(from, to)) {
            Some(&factor) if factor > 1.0 => {
                SimDuration::from_micros((base.as_micros() as f64 * factor) as u64)
            }
            _ => base,
        }
    }

    /// Loss probability from `from` to `to` (same-host is lossless).
    ///
    /// A partitioned pair reports `1.0` regardless of any per-pair link
    /// override; otherwise the result is the maximum of the link's own
    /// loss and the fault overlay's.
    pub fn loss(&self, from: HostId, to: HostId) -> f64 {
        if from == to {
            return 0.0;
        }
        if self.is_partitioned(from, to) {
            return 1.0;
        }
        let base = self.link(from, to).loss;
        match self.fault_loss.get(&pair(from, to)) {
            Some(&extra) => base.max(extra),
            None => base,
        }
    }

    /// Hard-partition the pair `a`/`b` in both directions: all messages
    /// and migrations between them fail until [`Topology::heal_partition`].
    pub fn partition(&mut self, a: HostId, b: HostId) -> &mut Self {
        self.partitions.insert(pair(a, b));
        self
    }

    /// Remove a partition installed by [`Topology::partition`].
    pub fn heal_partition(&mut self, a: HostId, b: HostId) -> &mut Self {
        self.partitions.remove(&pair(a, b));
        self
    }

    /// Whether the pair `a`/`b` is currently partitioned.
    pub fn is_partitioned(&self, a: HostId, b: HostId) -> bool {
        a != b && self.partitions.contains(&pair(a, b))
    }

    /// Overlay an extra loss probability (clamped to `[0, 1]`) on the
    /// pair `a`/`b` without touching the configured link spec.
    pub fn set_fault_loss(&mut self, a: HostId, b: HostId, loss: f64) -> &mut Self {
        let loss = if loss.is_nan() {
            0.0
        } else {
            loss.clamp(0.0, 1.0)
        };
        self.fault_loss.insert(pair(a, b), loss);
        self
    }

    /// Remove a loss overlay installed by [`Topology::set_fault_loss`].
    pub fn clear_fault_loss(&mut self, a: HostId, b: HostId) -> &mut Self {
        self.fault_loss.remove(&pair(a, b));
        self
    }

    /// Multiply delivery time on the pair `a`/`b` by `factor` (> 1 slows
    /// the link down) without touching the configured link spec.
    pub fn set_slowdown(&mut self, a: HostId, b: HostId, factor: f64) -> &mut Self {
        let factor = if factor.is_nan() {
            1.0
        } else {
            factor.max(1.0)
        };
        self.slowdown.insert(pair(a, b), factor);
        self
    }

    /// Remove a slowdown installed by [`Topology::set_slowdown`].
    pub fn clear_slowdown(&mut self, a: HostId, b: HostId) -> &mut Self {
        self.slowdown.remove(&pair(a, b));
        self
    }

    /// Whether any fault overlay (partition or extra loss) affects the
    /// pair `a`/`b`. Used by the runtimes to attribute drops to chaos.
    pub fn fault_active(&self, a: HostId, b: HostId) -> bool {
        if a == b {
            return false;
        }
        let key = pair(a, b);
        self.partitions.contains(&key) || self.fault_loss.get(&key).is_some_and(|&l| l > 0.0)
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::lan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_includes_serialization_delay() {
        let link = LinkSpec {
            latency: SimDuration::from_millis(1),
            bandwidth_bps: 1_000_000, // 1 MB/s
            loss: 0.0,
        };
        // 500 KB at 1 MB/s = 0.5 s
        let t = link.transfer_time(500_000);
        assert_eq!(t.as_micros(), 1_000 + 500_000);
    }

    #[test]
    fn infinite_bandwidth_only_pays_latency() {
        let link = LinkSpec::with_latency(SimDuration::from_millis(5));
        assert_eq!(link.transfer_time(10_000_000), SimDuration::from_millis(5));
    }

    #[test]
    fn topology_override_beats_default() {
        let mut topo = Topology::lan();
        topo.set_link(HostId(1), HostId(2), LinkSpec::wan());
        assert_eq!(topo.link(HostId(1), HostId(2)), LinkSpec::wan());
        // reverse direction still default
        assert_eq!(topo.link(HostId(2), HostId(1)), LinkSpec::lan());
        topo.set_link_symmetric(HostId(1), HostId(2), LinkSpec::wan());
        assert_eq!(topo.link(HostId(2), HostId(1)), LinkSpec::wan());
    }

    #[test]
    fn local_delivery_is_cheap_and_lossless() {
        let mut topo = Topology::uniform(LinkSpec::wan().lossy(0.5));
        topo.set_local_delay(SimDuration::from_micros(2));
        assert_eq!(
            topo.delivery_time(HostId(3), HostId(3), 1_000_000),
            SimDuration(2)
        );
        assert_eq!(topo.loss(HostId(3), HostId(3)), 0.0);
        assert!(topo.loss(HostId(3), HostId(4)) > 0.4);
    }

    #[test]
    fn lossy_clamps_probability() {
        assert_eq!(LinkSpec::lan().lossy(3.0).loss, 1.0);
        assert_eq!(LinkSpec::lan().lossy(-1.0).loss, 0.0);
        assert_eq!(LinkSpec::lan().lossy(f64::NAN).loss, 0.0);
    }

    #[test]
    fn partitioned_pair_reports_total_loss_regardless_of_override() {
        let mut topo = Topology::lan();
        // per-pair override says "only 10% lossy" — the partition must win
        topo.set_link_symmetric(HostId(1), HostId(2), LinkSpec::lan().lossy(0.1));
        topo.partition(HostId(1), HostId(2));
        assert_eq!(topo.loss(HostId(1), HostId(2)), 1.0);
        assert_eq!(topo.loss(HostId(2), HostId(1)), 1.0, "both directions");
        assert!(topo.is_partitioned(HostId(2), HostId(1)));
        // other pairs unaffected; same-host is never partitioned
        assert_eq!(topo.loss(HostId(1), HostId(3)), 0.0);
        assert_eq!(topo.loss(HostId(1), HostId(1)), 0.0);
        // healing restores the configured override
        topo.heal_partition(HostId(2), HostId(1));
        assert_eq!(topo.loss(HostId(1), HostId(2)), 0.1);
        assert!(!topo.is_partitioned(HostId(1), HostId(2)));
    }

    #[test]
    fn fault_loss_overlays_without_touching_link_spec() {
        let mut topo = Topology::lan();
        topo.set_link(HostId(1), HostId(2), LinkSpec::lan().lossy(0.25));
        topo.set_fault_loss(HostId(1), HostId(2), 0.8);
        assert_eq!(topo.loss(HostId(1), HostId(2)), 0.8, "overlay max wins");
        assert!(topo.fault_active(HostId(2), HostId(1)));
        topo.clear_fault_loss(HostId(2), HostId(1));
        assert_eq!(topo.loss(HostId(1), HostId(2)), 0.25, "link spec intact");
        assert!(!topo.fault_active(HostId(1), HostId(2)));
        // overlay never lowers a link's own loss
        topo.set_fault_loss(HostId(1), HostId(2), 0.05);
        assert_eq!(topo.loss(HostId(1), HostId(2)), 0.25);
    }

    #[test]
    fn slowdown_scales_delivery_time_and_heals() {
        let mut topo = Topology::uniform(LinkSpec::with_latency(SimDuration::from_millis(1)));
        let base = topo.delivery_time(HostId(1), HostId(2), 100);
        topo.set_slowdown(HostId(1), HostId(2), 4.0);
        assert_eq!(
            topo.delivery_time(HostId(1), HostId(2), 100).as_micros(),
            base.as_micros() * 4
        );
        assert_eq!(
            topo.delivery_time(HostId(1), HostId(1), 100),
            topo.local_delay(),
            "local delivery ignores slowdowns"
        );
        topo.clear_slowdown(HostId(2), HostId(1));
        assert_eq!(topo.delivery_time(HostId(1), HostId(2), 100), base);
    }

    #[test]
    fn wan_is_slower_than_lan() {
        let bytes = 10_000;
        assert!(
            LinkSpec::wan().transfer_time(bytes) > LinkSpec::lan().transfer_time(bytes),
            "wan must dominate lan for the same payload"
        );
    }
}
